"""Architecture search space for QDNN design exploration (paper P5).

The paper's structure-design problem (P5) is that every published QDNN uses a
different, usually very shallow, hand-designed structure, and that finding a
good structure for a new task "usually needs to introduce significant design
efforts, such as Network Architecture Search".  This module defines the
search space QuadraLib explores: VGG-style plain networks parameterised by

* the number of pooling stages and convolutions per stage (depth),
* the channel width of each stage,
* the neuron type of the convolutions (first-order or any quadratic design),
* the BatchNorm / activation switches from the paper's design insights.

A point in the space is an :class:`ArchitectureGenome`; the space itself
(:class:`SearchSpace`) can sample, mutate and recombine genomes, which is all
the random-search and evolutionary drivers in this package need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..builder.config import QuadraticModelConfig
from ..nn.module import Module


@dataclass(frozen=True)
class ArchitectureGenome:
    """One candidate architecture: a plain (VGG-style) QDNN description.

    Attributes
    ----------
    stage_depths :
        Number of convolutions in each pooling stage, e.g. ``(2, 2, 3)``.
    stage_widths :
        Output channels of the convolutions in each stage; must have the same
        length as ``stage_depths``.
    neuron_type :
        ``"first_order"`` or any registered quadratic design ("OURS", "T4", …).
    use_batchnorm, use_activation :
        The construction switches of paper Sec. 4.2.
    """

    stage_depths: Tuple[int, ...]
    stage_widths: Tuple[int, ...]
    neuron_type: str = "OURS"
    use_batchnorm: bool = True
    use_activation: bool = True

    def __post_init__(self) -> None:
        if len(self.stage_depths) != len(self.stage_widths):
            raise ValueError(
                f"stage_depths {self.stage_depths} and stage_widths {self.stage_widths} "
                "must have the same length"
            )
        if not self.stage_depths:
            raise ValueError("a genome needs at least one stage")
        if any(d < 1 for d in self.stage_depths):
            raise ValueError(f"every stage needs at least one convolution: {self.stage_depths}")
        if any(w < 1 for w in self.stage_widths):
            raise ValueError(f"stage widths must be positive: {self.stage_widths}")

    # ------------------------------------------------------------------ views
    @property
    def num_stages(self) -> int:
        return len(self.stage_depths)

    @property
    def num_conv_layers(self) -> int:
        return int(sum(self.stage_depths))

    @property
    def is_quadratic(self) -> bool:
        from ..quadratic.neuron_types import is_first_order

        return not is_first_order(self.neuron_type)

    def to_vgg_cfg(self) -> List[Union[int, str]]:
        """The genome as a VGG channel configuration (with ``"M"`` pool markers)."""
        cfg: List[Union[int, str]] = []
        for depth, width in zip(self.stage_depths, self.stage_widths):
            cfg.extend([int(width)] * int(depth))
            cfg.append("M")
        return cfg

    def to_config(self, width_multiplier: float = 1.0,
                  hybrid_bp: bool = False) -> QuadraticModelConfig:
        """The construction switches as a :class:`QuadraticModelConfig`."""
        return QuadraticModelConfig(
            neuron_type=self.neuron_type,
            use_batchnorm=self.use_batchnorm,
            use_activation=self.use_activation,
            width_multiplier=width_multiplier,
            hybrid_bp=hybrid_bp,
        )

    def build(self, num_classes: int, width_multiplier: float = 1.0,
              in_channels: int = 3, hybrid_bp: bool = False) -> Module:
        """Instantiate the candidate as a trainable model."""
        from ..models.vgg import VGG

        return VGG(self.to_vgg_cfg(), num_classes=num_classes,
                   config=self.to_config(width_multiplier, hybrid_bp=hybrid_bp),
                   in_channels=in_channels)

    # ----------------------------------------------------------- serialisation
    def key(self) -> str:
        """A stable identifier used for caching and de-duplication."""
        depths = "-".join(map(str, self.stage_depths))
        widths = "-".join(map(str, self.stage_widths))
        return (f"d{depths}_w{widths}_{self.neuron_type}"
                f"_bn{int(self.use_batchnorm)}_act{int(self.use_activation)}")

    def to_dict(self) -> Dict:
        return {
            "stage_depths": list(self.stage_depths),
            "stage_widths": list(self.stage_widths),
            "neuron_type": self.neuron_type,
            "use_batchnorm": self.use_batchnorm,
            "use_activation": self.use_activation,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ArchitectureGenome":
        return cls(
            stage_depths=tuple(int(d) for d in data["stage_depths"]),
            stage_widths=tuple(int(w) for w in data["stage_widths"]),
            neuron_type=str(data.get("neuron_type", "OURS")),
            use_batchnorm=bool(data.get("use_batchnorm", True)),
            use_activation=bool(data.get("use_activation", True)),
        )

    def with_(self, **changes) -> "ArchitectureGenome":
        """Copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class SearchSpace:
    """The set of genomes the exploration drivers may propose.

    Attributes
    ----------
    min_stages, max_stages :
        Range of pooling stages (inclusive).
    min_convs_per_stage, max_convs_per_stage :
        Range of convolutions per stage (inclusive).
    width_choices :
        Channel widths a stage may use.
    neuron_types :
        Neuron designs a candidate may use; include ``"first_order"`` to let
        the search compare against the linear baseline.
    allow_no_batchnorm, allow_no_activation :
        Whether the corresponding construction switches may be turned off
        (the paper's design insights say BatchNorm should stay on and ReLU is
        optional only for shallow models — the defaults reflect that).
    """

    min_stages: int = 2
    max_stages: int = 4
    min_convs_per_stage: int = 1
    max_convs_per_stage: int = 3
    width_choices: Tuple[int, ...] = (16, 32, 64, 128)
    neuron_types: Tuple[str, ...] = ("first_order", "T4", "T2_4", "OURS")
    allow_no_batchnorm: bool = False
    allow_no_activation: bool = True

    def __post_init__(self) -> None:
        if self.min_stages < 1 or self.max_stages < self.min_stages:
            raise ValueError(f"invalid stage range [{self.min_stages}, {self.max_stages}]")
        if self.min_convs_per_stage < 1 or self.max_convs_per_stage < self.min_convs_per_stage:
            raise ValueError(
                f"invalid convs-per-stage range "
                f"[{self.min_convs_per_stage}, {self.max_convs_per_stage}]"
            )
        if not self.width_choices:
            raise ValueError("width_choices must not be empty")
        if not self.neuron_types:
            raise ValueError("neuron_types must not be empty")

    # ------------------------------------------------------------------- size
    def cardinality(self) -> int:
        """Number of distinct genomes in the space (exact, for reporting)."""
        depth_options = self.max_convs_per_stage - self.min_convs_per_stage + 1
        width_options = len(self.width_choices)
        per_stage = depth_options * width_options
        total = 0
        for stages in range(self.min_stages, self.max_stages + 1):
            total += per_stage ** stages
        total *= len(self.neuron_types)
        total *= 2 if self.allow_no_batchnorm else 1
        total *= 2 if self.allow_no_activation else 1
        return total

    # ------------------------------------------------------------ membership
    def contains(self, genome: ArchitectureGenome) -> bool:
        """Whether a genome lies inside this space."""
        if not (self.min_stages <= genome.num_stages <= self.max_stages):
            return False
        if any(not (self.min_convs_per_stage <= d <= self.max_convs_per_stage)
               for d in genome.stage_depths):
            return False
        if any(w not in self.width_choices for w in genome.stage_widths):
            return False
        if genome.neuron_type not in self.neuron_types:
            return False
        if not genome.use_batchnorm and not self.allow_no_batchnorm:
            return False
        if not genome.use_activation and not self.allow_no_activation:
            return False
        return True

    # --------------------------------------------------------------- sampling
    def sample(self, rng: np.random.Generator) -> ArchitectureGenome:
        """Draw a uniform random genome."""
        stages = int(rng.integers(self.min_stages, self.max_stages + 1))
        depths = tuple(int(rng.integers(self.min_convs_per_stage, self.max_convs_per_stage + 1))
                       for _ in range(stages))
        widths = tuple(int(rng.choice(self.width_choices)) for _ in range(stages))
        neuron = str(rng.choice(list(self.neuron_types)))
        batchnorm = True if not self.allow_no_batchnorm else bool(rng.integers(0, 2))
        activation = True if not self.allow_no_activation else bool(rng.integers(0, 2))
        return ArchitectureGenome(stage_depths=depths, stage_widths=widths, neuron_type=neuron,
                                  use_batchnorm=batchnorm, use_activation=activation)

    # --------------------------------------------------------------- mutation
    def mutate(self, genome: ArchitectureGenome, rng: np.random.Generator,
               rate: float = 0.3) -> ArchitectureGenome:
        """Randomly perturb one or more genes, staying inside the space.

        Each gene (per-stage depth, per-stage width, neuron type, switches) is
        resampled independently with probability ``rate``; if nothing changed,
        one gene is forced to change so mutation never returns the input.
        """
        depths = list(genome.stage_depths)
        widths = list(genome.stage_widths)
        neuron = genome.neuron_type
        batchnorm = genome.use_batchnorm
        activation = genome.use_activation

        def flip() -> bool:
            return bool(rng.random() < rate)

        for i in range(len(depths)):
            if flip():
                depths[i] = int(rng.integers(self.min_convs_per_stage,
                                             self.max_convs_per_stage + 1))
            if flip():
                widths[i] = int(rng.choice(self.width_choices))
        if flip():
            neuron = str(rng.choice(list(self.neuron_types)))
        if self.allow_no_batchnorm and flip():
            batchnorm = not batchnorm
        if self.allow_no_activation and flip():
            activation = not activation
        # Occasionally grow or shrink the number of stages.
        if flip() and self.max_stages > self.min_stages:
            if len(depths) < self.max_stages and (len(depths) == self.min_stages
                                                  or rng.random() < 0.5):
                depths.append(int(rng.integers(self.min_convs_per_stage,
                                               self.max_convs_per_stage + 1)))
                widths.append(int(rng.choice(self.width_choices)))
            elif len(depths) > self.min_stages:
                depths.pop()
                widths.pop()

        mutated = ArchitectureGenome(stage_depths=tuple(depths), stage_widths=tuple(widths),
                                     neuron_type=neuron, use_batchnorm=batchnorm,
                                     use_activation=activation)
        if mutated != genome:
            return mutated

        # Resampling happened to land back on the input: force one gene to change
        # so mutation never returns its argument.
        index = int(rng.integers(0, len(widths)))
        width_choices = [w for w in self.width_choices if w != widths[index]]
        if width_choices:
            widths[index] = int(rng.choice(width_choices))
        elif self.max_convs_per_stage > self.min_convs_per_stage:
            depth_choices = [d for d in range(self.min_convs_per_stage,
                                              self.max_convs_per_stage + 1)
                             if d != depths[index]]
            depths[index] = int(rng.choice(depth_choices))
        elif len(self.neuron_types) > 1:
            neuron = str(rng.choice([t for t in self.neuron_types if t != neuron]))
        elif self.allow_no_activation:
            activation = not activation
        elif self.allow_no_batchnorm:
            batchnorm = not batchnorm
        return ArchitectureGenome(stage_depths=tuple(depths), stage_widths=tuple(widths),
                                  neuron_type=neuron, use_batchnorm=batchnorm,
                                  use_activation=activation)

    # -------------------------------------------------------------- crossover
    def crossover(self, first: ArchitectureGenome, second: ArchitectureGenome,
                  rng: np.random.Generator) -> ArchitectureGenome:
        """Single-point stage crossover plus uniform switch inheritance."""
        stages = int(rng.integers(self.min_stages,
                                  min(self.max_stages, max(first.num_stages,
                                                           second.num_stages)) + 1))
        depths, widths = [], []
        for i in range(stages):
            donor = first if rng.random() < 0.5 else second
            if i >= donor.num_stages:
                donor = first if i < first.num_stages else second
            if i >= donor.num_stages:
                depths.append(int(rng.integers(self.min_convs_per_stage,
                                               self.max_convs_per_stage + 1)))
                widths.append(int(rng.choice(self.width_choices)))
            else:
                depths.append(int(donor.stage_depths[i]))
                widths.append(int(donor.stage_widths[i]))
        neuron = first.neuron_type if rng.random() < 0.5 else second.neuron_type
        batchnorm = first.use_batchnorm if rng.random() < 0.5 else second.use_batchnorm
        activation = first.use_activation if rng.random() < 0.5 else second.use_activation
        return ArchitectureGenome(stage_depths=tuple(depths), stage_widths=tuple(widths),
                                  neuron_type=neuron, use_batchnorm=batchnorm,
                                  use_activation=activation)
