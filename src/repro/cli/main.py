"""Argument parsing and subcommand implementations of the QuadraLib CLI."""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..builder.auto_builder import AutoBuilder
from ..builder.config import QuadraticModelConfig
from ..data.synthetic import SyntheticImageClassification
from ..nn.module import Module
from ..profiler.flops import profile_model
from ..profiler.latency import profile_latency
from ..profiler.memory import estimate_training_memory
from ..quadratic.neuron_types import NEURON_TYPES
from ..utils.logging import format_table
from ..utils.seed import seed_everything

#: Model families the CLI can build, mapped to their factory in ``repro.models``.
MODEL_CHOICES = ("vgg8", "vgg16", "vgg16_quadra", "resnet20", "resnet32", "resnet32_quadra",
                 "mobilenet_v1", "mobilenet_v1_quadra", "lenet")


def _build_model(name: str, neuron_type: str, num_classes: int,
                 width_multiplier: float) -> Module:
    """Instantiate one of the zoo models with the requested neuron type."""
    from .. import models

    factories: Dict[str, Callable[..., Module]] = {
        "vgg8": models.vgg8,
        "vgg16": models.vgg16,
        "vgg16_quadra": models.vgg16_quadra,
        "resnet20": models.resnet20,
        "resnet32": models.resnet32,
        "resnet32_quadra": models.resnet32_quadra,
        "mobilenet_v1": models.mobilenet_v1,
        "mobilenet_v1_quadra": models.mobilenet_v1_quadra,
    }
    if name == "lenet":
        return models.LeNet(num_classes=num_classes)
    if name not in factories:
        raise KeyError(f"unknown model '{name}'; choose from {MODEL_CHOICES}")
    return factories[name](num_classes=num_classes, neuron_type=neuron_type,
                           width_multiplier=width_multiplier)


def _print(text: str, stream=None) -> None:
    print(text, file=stream or sys.stdout)


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #

def cmd_neurons(args: argparse.Namespace) -> int:
    """List the registered quadratic neuron designs (the paper's Table 1)."""
    rows = []
    for spec in NEURON_TYPES.values():
        rows.append([spec.name, spec.formula, spec.time_complexity, spec.space_complexity,
                     ", ".join(spec.issues) if spec.issues else "-", spec.reference])
    _print(format_table(
        ["Type", "Neuron format", "Time", "Space", "Issues", "Reference"], rows,
        title="Registered quadratic neuron designs (paper Table 1)",
    ))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Parameters, MACs, training memory and latency of one model."""
    seed_everything(args.seed)
    model = _build_model(args.model, args.neuron_type, args.num_classes, args.width_multiplier)
    input_shape = (3, args.image_size, args.image_size)
    profile = profile_model(model, input_shape)
    memory = estimate_training_memory(model, input_shape)
    rows = [
        ["parameters", f"{profile.total_parameters:,}"],
        ["MACs (one sample)", f"{profile.total_macs:,}"],
        ["training memory @ batch "
         f"{args.batch_size}", f"{memory.total_bytes(args.batch_size) / 1024 ** 3:.2f} GiB"],
    ]
    if args.latency:
        latency = profile_latency(model, input_shape, batch_size=min(args.batch_size, 8),
                                  num_classes=args.num_classes,
                                  iterations=args.latency_repeats)
        rows.append(["train latency / batch", f"{latency.train_ms_per_batch:.1f} ms"])
        rows.append(["inference latency / batch", f"{latency.inference_ms_per_batch:.1f} ms"])
    _print(format_table(["Metric", "Value"], rows,
                        title=f"{args.model} (neuron type {args.neuron_type})"))
    if args.per_layer:
        layer_rows = [[l.name, l.layer_type, f"{l.parameters:,}", f"{l.macs:,}"]
                      for l in profile.layers]
        _print("")
        _print(format_table(["Layer", "Type", "#Param", "MACs"], layer_rows,
                            title="Per-layer profile"))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """Convert a first-order model to a QDNN with the auto-builder."""
    seed_everything(args.seed)
    model = _build_model(args.model, "first_order", args.num_classes, args.width_multiplier)
    params_before = model.num_parameters()
    builder = AutoBuilder(neuron_type=args.neuron_type, hybrid_bp=args.hybrid_bp,
                          convert_linear=args.convert_linear)
    report = builder.convert(model)
    rows = [
        ["converted layers", report.converted_layers],
        ["parameters before", f"{params_before:,}"],
        ["parameters after", f"{report.parameters_after:,}"],
        ["parameter ratio", f"{report.parameter_ratio:.2f}x"],
    ]
    _print(format_table(["Metric", "Value"], rows,
                        title=f"Auto-builder conversion of {args.model} to {args.neuron_type}"))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train a model on the synthetic classification workload."""
    from ..training.classification import train_classifier

    seed_everything(args.seed)
    train_set = SyntheticImageClassification(num_samples=args.samples,
                                             num_classes=args.num_classes,
                                             image_size=args.image_size, seed=args.seed,
                                             split_seed=0)
    test_set = SyntheticImageClassification(num_samples=max(args.samples // 2, 16),
                                            num_classes=args.num_classes,
                                            image_size=args.image_size, seed=args.seed,
                                            split_seed=1)
    model = _build_model(args.model, args.neuron_type, args.num_classes, args.width_multiplier)
    with np.errstate(all="ignore"):
        history = train_classifier(model, train_set, test_set, epochs=args.epochs,
                                   batch_size=args.batch_size, lr=args.lr,
                                   max_batches_per_epoch=args.max_batches, seed=args.seed)
    rows = [[epoch + 1, round(loss, 4), round(train_acc, 3), round(test_acc, 3)]
            for epoch, (loss, train_acc, test_acc)
            in enumerate(zip(history.train_loss, history.train_accuracy,
                             history.test_accuracy))]
    _print(format_table(["Epoch", "Train loss", "Train acc", "Test acc"], rows,
                        title=f"Training {args.model} ({args.neuron_type}) on synthetic data"))
    return 0


def cmd_ppml(args: argparse.Namespace) -> int:
    """PPML online-cost analysis before/after conversion."""
    from .. import ppml

    seed_everything(args.seed)
    model = _build_model(args.model, "first_order", args.num_classes, args.width_multiplier)
    input_shape = (3, args.image_size, args.image_size)
    converted, report = ppml.to_ppml_friendly(model, strategy=args.strategy, inplace=False)
    savings = ppml.ppml_savings(model, converted, input_shape, protocol=args.protocol)
    rows = [
        ["strategy", args.strategy],
        ["protocol", args.protocol],
        ["activations replaced", report.activations_replaced],
        ["layers quadratized", report.layers_quadratized],
        ["online latency before",
         "not runnable" if not savings.before.runnable
         else f"{savings.before.total.milliseconds:.1f} ms"],
        ["online latency after", f"{savings.after.total.milliseconds:.1f} ms"],
        ["online comm before",
         "not runnable" if not savings.before.runnable
         else f"{savings.before.total.megabytes:.1f} MB"],
        ["online comm after", f"{savings.after.total.megabytes:.1f} MB"],
    ]
    _print(format_table(["Metric", "Value"], rows,
                        title=f"PPML conversion of {args.model} under {args.protocol}"))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Random / evolutionary exploration on the synthetic proxy task."""
    from .. import explore

    seed_everything(args.seed)
    train_set = SyntheticImageClassification(num_samples=args.samples,
                                             num_classes=args.num_classes,
                                             image_size=args.image_size, seed=args.seed,
                                             split_seed=0)
    test_set = SyntheticImageClassification(num_samples=max(args.samples // 2, 16),
                                            num_classes=args.num_classes,
                                            image_size=args.image_size, seed=args.seed,
                                            split_seed=1)
    space = explore.SearchSpace(
        min_stages=2, max_stages=3, min_convs_per_stage=1, max_convs_per_stage=2,
        width_choices=(16, 32, 64), neuron_types=("first_order", "OURS"),
    )
    evaluator = explore.ProxyEvaluator(train_set, test_set, num_classes=args.num_classes,
                                       image_size=args.image_size, epochs=args.epochs,
                                       batch_size=args.batch_size,
                                       max_batches_per_epoch=args.max_batches,
                                       width_multiplier=args.width_multiplier, lr=args.lr,
                                       seed=args.seed)
    with np.errstate(all="ignore"):
        if args.strategy == "random":
            result = explore.random_search(space, evaluator, budget=args.budget, seed=args.seed)
        else:
            config = explore.EvolutionConfig(population_size=max(args.budget // 2, 2),
                                             generations=2, elite_count=1)
            result = explore.evolutionary_search(space, evaluator, config, seed=args.seed)
    rows = [[e.genome.key(), e.genome.neuron_type, e.genome.num_conv_layers,
             f"{e.parameters:,}", round(e.accuracy, 3)] for e in result.top(args.top)]
    _print(format_table(["Candidate", "Neuron", "#Conv", "#Param", "Proxy acc"], rows,
                        title=f"{args.strategy} search over {space.cardinality():,} structures "
                              f"({result.evaluations_used} evaluations)"))
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #

def _add_model_arguments(parser: argparse.ArgumentParser, default_model: str = "vgg8") -> None:
    parser.add_argument("--model", default=default_model, choices=MODEL_CHOICES,
                        help="model family from the zoo")
    parser.add_argument("--neuron-type", default="OURS",
                        help="neuron design (first_order, OURS, T2, T3, T4, fan, ...)")
    parser.add_argument("--num-classes", type=int, default=10)
    parser.add_argument("--width-multiplier", type=float, default=1.0,
                        help="scale every channel count (use <1 on slow machines)")
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)


def _add_training_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--samples", type=int, default=256, help="synthetic training samples")
    parser.add_argument("--max-batches", type=int, default=None,
                        help="cap batches per epoch (for quick smoke runs)")
    parser.add_argument("--lr", type=float, default=0.05)


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QuadraLib reproduction: quadratic neural network tooling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    neurons = subparsers.add_parser("neurons", help="list the quadratic neuron designs (Table 1)")
    neurons.set_defaults(func=cmd_neurons)

    profile = subparsers.add_parser("profile", help="parameters / MACs / memory of a model")
    _add_model_arguments(profile, default_model="vgg16")
    profile.add_argument("--batch-size", type=int, default=256)
    profile.add_argument("--per-layer", action="store_true", help="also print per-layer rows")
    profile.add_argument("--latency", action="store_true", help="measure forward latency")
    profile.add_argument("--latency-repeats", type=int, default=3)
    profile.set_defaults(func=cmd_profile)

    convert = subparsers.add_parser("convert", help="auto-build a QDNN from a first-order model")
    _add_model_arguments(convert, default_model="vgg16")
    convert.add_argument("--hybrid-bp", action="store_true",
                         help="use the memory-efficient symbolic-backward layers")
    convert.add_argument("--convert-linear", action="store_true",
                         help="also convert dense layers")
    convert.set_defaults(func=cmd_convert)

    train = subparsers.add_parser("train", help="train a model on the synthetic workload")
    _add_model_arguments(train)
    _add_training_arguments(train)
    train.set_defaults(func=cmd_train)

    ppml = subparsers.add_parser("ppml", help="PPML online-cost analysis and conversion")
    _add_model_arguments(ppml)
    ppml.add_argument("--strategy", default="quadratic_no_relu",
                      choices=("square", "quadratic", "quadratic_no_relu"))
    ppml.add_argument("--protocol", default="delphi", choices=("delphi", "gazelle", "cryptonets"))
    ppml.set_defaults(func=cmd_ppml)

    explore = subparsers.add_parser("explore", help="architecture search on the proxy task")
    _add_model_arguments(explore)
    _add_training_arguments(explore)
    explore.add_argument("--strategy", default="random", choices=("random", "evolution"))
    explore.add_argument("--budget", type=int, default=8, help="proxy evaluations")
    explore.add_argument("--top", type=int, default=5, help="candidates to print")
    explore.set_defaults(func=cmd_explore)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))
