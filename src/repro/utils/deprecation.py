"""Once-per-process deprecation warnings for the legacy API surfaces.

The :mod:`repro.experiment` redesign keeps every pre-existing entry point
working, but routes users to the new declarative API through a *single*
``DeprecationWarning`` per legacy surface (not one per call, which would
drown training logs).  Tests can reset the bookkeeping via
:func:`reset_deprecation_warnings`.
"""

from __future__ import annotations

import warnings
from typing import Set

_WARNED: Set[str] = set()


def warn_deprecated(key: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit one ``DeprecationWarning`` for ``key``, naming the new-API path.

    Subsequent calls with the same ``key`` are silent until
    :func:`reset_deprecation_warnings` is called.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"{key} is deprecated; use {replacement} instead "
        f"(see repro.experiment for the unified API)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_deprecation_warnings() -> None:
    """Forget which deprecation warnings have fired (test helper)."""
    _WARNED.clear()
