"""``repro.nn`` — the layer library substrate (Module, layers, losses, init).

Mirrors the parts of ``torch.nn`` that QuadraLib builds on: a ``Module``
system with parameter registration and state_dict serialisation, first-order
layers (Linear, Conv2d, BatchNorm, pooling, activations), loss functions,
weight initialisation and spectral normalisation.
"""

from . import functional, init
from .containers import ModuleList, Sequential
from .layers import (
    GELU,
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    DepthwiseSeparableConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Square,
    Tanh,
    UpsampleNearest2d,
    ZeroPad2d,
)
from .losses import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    L1Loss,
    MSELoss,
    NLLLoss,
    SmoothL1Loss,
)
from .module import Module
from .parameter import Parameter
from .spectral_norm import SpectralNorm

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "functional",
    "init",
    "Linear",
    "Conv2d",
    "DepthwiseSeparableConv2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Softmax",
    "Square",
    "Identity",
    "Dropout",
    "Flatten",
    "UpsampleNearest2d",
    "ZeroPad2d",
    "SpectralNorm",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "L1Loss",
    "SmoothL1Loss",
    "BCEWithLogitsLoss",
]
