"""``repro.ppml`` — privacy-preserving machine-learning cost analysis.

The paper's introduction motivates quadratic layers as a drop-in replacement
for ReLU in PPML protocols (CryptoNets, Delphi, Gazelle): every ReLU needs a
garbled-circuit comparison online, while a quadratic layer only needs secure
multiplications.  This package quantifies that trade-off:

* :mod:`repro.ppml.protocols` — per-operation cost models of the protocols,
* :mod:`repro.ppml.cost` — operation counting and cost estimation for models,
* :mod:`repro.ppml.convert` — ReLU→square / first-order→quadratic conversion.

Example
-------
>>> from repro import models, ppml
>>> model = models.vgg8(num_classes=10, width_multiplier=0.25)
>>> report = ppml.analyse_model(model, (3, 32, 32), protocol="delphi")
>>> friendly, _ = ppml.to_ppml_friendly(model, strategy="quadratic_no_relu", inplace=False)
>>> savings = ppml.ppml_savings(model, friendly, (3, 32, 32), protocol="delphi")
"""

from .convert import (
    PPMLConversionReport,
    PPMLSavings,
    RELU_LIKE,
    count_relu_modules,
    ppml_savings,
    remove_activations,
    replace_activations,
    replace_maxpool_with_avgpool,
    replace_relu_with_square,
    to_ppml_friendly,
)
from .cost import (
    CostReport,
    LayerCost,
    LayerOperations,
    analyse_model,
    compare_protocols,
    count_operations,
    estimate_cost,
    format_cost_report,
)
from .protocols import (
    CRYPTONETS,
    DELPHI,
    GAZELLE,
    PROTOCOLS,
    OperationCosts,
    Protocol,
    ProtocolCost,
    available_protocols,
    resolve_protocol,
)

__all__ = [
    "Protocol",
    "OperationCosts",
    "ProtocolCost",
    "PROTOCOLS",
    "DELPHI",
    "GAZELLE",
    "CRYPTONETS",
    "resolve_protocol",
    "available_protocols",
    "LayerOperations",
    "LayerCost",
    "CostReport",
    "count_operations",
    "estimate_cost",
    "analyse_model",
    "compare_protocols",
    "format_cost_report",
    "RELU_LIKE",
    "count_relu_modules",
    "replace_activations",
    "replace_relu_with_square",
    "replace_maxpool_with_avgpool",
    "remove_activations",
    "to_ppml_friendly",
    "PPMLConversionReport",
    "ppml_savings",
    "PPMLSavings",
]
