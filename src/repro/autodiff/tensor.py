"""The :class:`Tensor` — a NumPy array with a gradient tape.

This is the substrate equivalent of ``torch.Tensor``: every arithmetic
operation dispatches to a :class:`~repro.autodiff.function.Function` which
records itself on a dynamic graph, and :meth:`Tensor.backward` replays the
graph in reverse to populate ``.grad`` on leaves.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from . import engine
from .function import Function
from .grad_mode import is_grad_enabled, no_grad
from .ops import conv as conv_ops
from .ops import elementwise as ew
from .ops import matmul as mm
from .ops import reduce as red
from .ops import shape as sh

DEFAULT_DTYPE = np.float32

Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]


class Tensor:
    """A multi-dimensional array that supports reverse-mode differentiation.

    Parameters
    ----------
    data : array-like
        Initial values.  Floating point data defaults to ``float32``.
    requires_grad : bool
        Whether operations on this tensor should be recorded so that
        :meth:`backward` can compute ``.grad``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_ctx", "_retain_grad", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = "",
                 _copy: bool = True) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype == np.float64:
            arr = arr.astype(DEFAULT_DTYPE)
        elif arr.dtype.kind not in "fiub":
            arr = arr.astype(DEFAULT_DTYPE)
        if _copy and isinstance(data, np.ndarray) and arr is data:
            arr = arr.copy()
        self.data: np.ndarray = arr
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._ctx = None
        self._retain_grad = False
        self.name = name

    # ------------------------------------------------------------------ basic
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    @property
    def is_leaf(self) -> bool:
        return self._ctx is None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_part})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a copy, detached from the graph)."""
        return self.data.copy()

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, _copy=False)

    def clone(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad, _copy=False)
        return out

    def retain_grad(self) -> "Tensor":
        """Ask the engine to keep ``.grad`` on this non-leaf tensor."""
        self._retain_grad = True
        return self

    def zero_grad(self) -> None:
        self.grad = None

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False, _copy=False)

    # ------------------------------------------------------------- autograd
    def backward(self, grad: Optional[np.ndarray] = None, retain_graph: bool = False) -> None:
        """Back-propagate from this tensor (see :func:`repro.autodiff.engine.backward`)."""
        engine.backward(self, grad=grad, retain_graph=retain_graph)

    # ------------------------------------------------------------ arithmetic
    def _coerce(self, other: TensorLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype), _copy=False)

    def __add__(self, other: TensorLike) -> "Tensor":
        return ew.Add.apply(self, self._coerce(other))

    def __radd__(self, other: TensorLike) -> "Tensor":
        return ew.Add.apply(self._coerce(other), self)

    def __sub__(self, other: TensorLike) -> "Tensor":
        return ew.Sub.apply(self, self._coerce(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return ew.Sub.apply(self._coerce(other), self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        return ew.Mul.apply(self, self._coerce(other))

    def __rmul__(self, other: TensorLike) -> "Tensor":
        return ew.Mul.apply(self._coerce(other), self)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        return ew.Div.apply(self, self._coerce(other))

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return ew.Div.apply(self._coerce(other), self)

    def __neg__(self) -> "Tensor":
        return ew.Neg.apply(self)

    def __pow__(self, exponent: Scalar) -> "Tensor":
        return ew.Pow.apply(self, float(exponent))

    def __matmul__(self, other: TensorLike) -> "Tensor":
        return mm.MatMul.apply(self, self._coerce(other))

    def __rmatmul__(self, other: TensorLike) -> "Tensor":
        return mm.MatMul.apply(self._coerce(other), self)

    # Comparisons return detached boolean tensors (no gradient flows).
    def __gt__(self, other): return Tensor(self.data > self._coerce(other).data, _copy=False)
    def __lt__(self, other): return Tensor(self.data < self._coerce(other).data, _copy=False)
    def __ge__(self, other): return Tensor(self.data >= self._coerce(other).data, _copy=False)
    def __le__(self, other): return Tensor(self.data <= self._coerce(other).data, _copy=False)

    __hash__ = object.__hash__

    def __eq__(self, other):  # element-wise, detached
        if isinstance(other, (Tensor, np.ndarray, int, float)):
            return Tensor(self.data == self._coerce(other).data, _copy=False)
        return NotImplemented

    # ----------------------------------------------------------- pointwise
    def exp(self) -> "Tensor":
        return ew.Exp.apply(self)

    def log(self) -> "Tensor":
        return ew.Log.apply(self)

    def sqrt(self) -> "Tensor":
        return ew.Sqrt.apply(self)

    def abs(self) -> "Tensor":
        return ew.Abs.apply(self)

    def relu(self) -> "Tensor":
        return ew.ReLU.apply(self)

    def sigmoid(self) -> "Tensor":
        return ew.Sigmoid.apply(self)

    def tanh(self) -> "Tensor":
        return ew.Tanh.apply(self)

    def clip(self, low: float, high: float) -> "Tensor":
        return ew.Clip.apply(self, float(low), float(high))

    def square(self) -> "Tensor":
        return ew.Pow.apply(self, 2.0)

    def maximum(self, other: TensorLike) -> "Tensor":
        return ew.Maximum.apply(self, self._coerce(other))

    def minimum(self, other: TensorLike) -> "Tensor":
        return ew.Minimum.apply(self, self._coerce(other))

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return red.Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return red.Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return red.Max.apply(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return red.Min.apply(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False, ddof: int = 0) -> "Tensor":
        """Variance computed from differentiable primitives."""
        mean = self.mean(axis=axis, keepdims=True)
        sq = (self - mean).square()
        count = self.size if axis is None else _axis_count(self.shape, axis)
        denom = max(count - ddof, 1)
        return sq.sum(axis=axis, keepdims=keepdims) / float(denom)

    def std(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        return (self.var(axis=axis, keepdims=keepdims) + eps).sqrt()

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        return red.LogSumExp.apply(self, axis=axis, keepdims=keepdims)

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def argmin(self, axis=None) -> np.ndarray:
        return self.data.argmin(axis=axis)

    # -------------------------------------------------------------- shapes
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return sh.Reshape.apply(self, shape)

    view = reshape

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return sh.Transpose.apply(self, axes)

    permute = transpose

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def squeeze(self, axis: int) -> "Tensor":
        return sh.Squeeze.apply(self, axis)

    def unsqueeze(self, axis: int) -> "Tensor":
        return sh.Unsqueeze.apply(self, axis)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        return sh.BroadcastTo.apply(self, tuple(shape))

    def flip(self, axes) -> "Tensor":
        if isinstance(axes, int):
            axes = (axes,)
        return sh.Flip.apply(self, tuple(axes))

    def pad2d(self, padding: Tuple[int, int, int, int], value: float = 0.0) -> "Tensor":
        """Pad the last two axes (left, right, top, bottom) of an NCHW tensor."""
        left, right, top, bottom = padding
        pad_width = [(0, 0)] * (self.ndim - 2) + [(top, bottom), (left, right)]
        return sh.Pad.apply(self, pad_width, value)

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        elif isinstance(index, tuple):
            index = tuple(i.data if isinstance(i, Tensor) else i for i in index)
        return sh.GetItem.apply(self, index)

    # ------------------------------------------------------------ conv ops
    def conv2d(self, weight: "Tensor", bias: Optional["Tensor"] = None, stride=1,
               padding=0, groups: int = 1) -> "Tensor":
        args = (self, weight) if bias is None else (self, weight, bias)
        return conv_ops.Conv2d.apply(*args, stride=stride, padding=padding, groups=groups)

    def max_pool2d(self, kernel_size=2, stride=None, padding=0) -> "Tensor":
        return conv_ops.MaxPool2d.apply(self, kernel_size=kernel_size, stride=stride,
                                        padding=padding)

    def avg_pool2d(self, kernel_size=2, stride=None, padding=0) -> "Tensor":
        return conv_ops.AvgPool2d.apply(self, kernel_size=kernel_size, stride=stride,
                                        padding=padding)

    def upsample_nearest2d(self, scale_factor: int = 2) -> "Tensor":
        return conv_ops.UpsampleNearest2d.apply(self, scale_factor=scale_factor)


def _axis_count(shape: Tuple[int, ...], axis) -> int:
    if isinstance(axis, (int, np.integer)):
        axis = (int(axis),)
    return int(np.prod([shape[a] for a in axis]))


# --------------------------------------------------------------------------- #
# Creation helpers (module-level, PyTorch-flavoured)
# --------------------------------------------------------------------------- #

def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad, _copy=False)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad, _copy=False)


def full(shape, value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, value, dtype=DEFAULT_DTYPE), requires_grad=requires_grad, _copy=False)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad, _copy=False)


def ones_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones_like(t.data), requires_grad=requires_grad, _copy=False)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=DEFAULT_DTYPE), requires_grad=requires_grad, _copy=False)


def randn(*shape, requires_grad: bool = False, generator: Optional[np.random.Generator] = None) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    rng = generator if generator is not None else np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(DEFAULT_DTYPE),
                  requires_grad=requires_grad, _copy=False)


def rand(*shape, requires_grad: bool = False, generator: Optional[np.random.Generator] = None) -> Tensor:
    shape = shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    rng = generator if generator is not None else np.random.default_rng()
    return Tensor(rng.random(shape).astype(DEFAULT_DTYPE),
                  requires_grad=requires_grad, _copy=False)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    return sh.Concat.apply(*tensors, axis=axis)


cat = concatenate


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    return sh.Stack.apply(*tensors, axis=axis)


def where(cond: TensorLike, a: TensorLike, b: TensorLike) -> Tensor:
    """Differentiable ternary select."""
    cond_t = cond if isinstance(cond, Tensor) else Tensor(np.asarray(cond), _copy=False)
    a_t = a if isinstance(a, Tensor) else Tensor(np.asarray(a, dtype=DEFAULT_DTYPE), _copy=False)
    b_t = b if isinstance(b, Tensor) else Tensor(np.asarray(b, dtype=DEFAULT_DTYPE), _copy=False)
    return ew.Where.apply(cond_t, a_t, b_t)


def einsum(subscripts: str, a: Tensor, b: Tensor) -> Tensor:
    """Two-operand differentiable einsum."""
    return mm.Einsum.apply(subscripts, a, b)
