"""``repro.ppml`` — privacy-preserving machine learning: analysis and execution.

The paper's introduction motivates quadratic layers as a drop-in replacement
for ReLU in PPML protocols (CryptoNets, Delphi, Gazelle): every ReLU needs a
garbled-circuit comparison online, while a quadratic layer only needs secure
multiplications.  This package quantifies that trade-off *and executes it*:

* :mod:`repro.ppml.protocols` — per-operation cost models of the protocols,
* :mod:`repro.ppml.cost` — operation counting and cost estimation for models,
* :mod:`repro.ppml.convert` — ReLU→square / first-order→quadratic conversion,
* :mod:`repro.ppml.fixedpoint` — the fixed-point number format protocols
  compute in (encode / decode / nearest + stochastic truncation),
* :mod:`repro.ppml.runtime` — the secure-inference runtime: run any compiled
  model under hybrid-protocol semantics and record what it actually did,
* :mod:`repro.ppml.offline` — the precompute phase behind secure serving:
  trace-sized Beaver-triple / garbled-label pools with background producers
  and per-request consumption accounting,
* :mod:`repro.ppml.trace` — executed protocol traces and their conversion
  into online latency / communication.

Example
-------
>>> from repro import models, ppml
>>> model = models.vgg8(num_classes=10, width_multiplier=0.25)
>>> report = ppml.analyse_model(model, (3, 32, 32), protocol="delphi")
>>> friendly, _ = ppml.to_ppml_friendly(model, strategy="quadratic_no_relu", inplace=False)
>>> savings = ppml.ppml_savings(model, friendly, (3, 32, 32), protocol="delphi",
...                             measured=True)   # executes both models
>>> assert savings.measured_matches and savings.after_trace.garbled_free
"""

from .convert import (
    PPMLConversionReport,
    PPMLSavings,
    RELU_LIKE,
    count_relu_modules,
    ppml_savings,
    remove_activations,
    replace_activations,
    replace_maxpool_with_avgpool,
    replace_relu_with_square,
    to_ppml_friendly,
)
from .cost import (
    CostReport,
    LayerCost,
    LayerOperations,
    analyse_model,
    compare_protocols,
    count_operations,
    estimate_cost,
    format_cost_report,
)
from .fixedpoint import (
    TRUNCATION_MODES,
    FixedPointFormat,
    decode,
    encode,
    fixed_mul,
    truncate,
)
from .offline import (
    OfflineBudget,
    OfflinePhase,
    TriplePool,
    pool_key,
)
from .protocols import (
    CRYPTONETS,
    DELPHI,
    GAZELLE,
    PROTOCOLS,
    OperationCosts,
    Protocol,
    ProtocolCost,
    available_protocols,
    resolve_protocol,
)
from .runtime import (
    SecureCompiledModel,
    SecureConfig,
    SecureExecutionError,
    SecurePredictor,
    SecureStats,
    register_secure_rule,
    secure_compile,
)
from .trace import (
    LayerTrace,
    ProtocolTrace,
    SecureCostEstimate,
    format_trace,
)

__all__ = [
    "Protocol",
    "OperationCosts",
    "ProtocolCost",
    "PROTOCOLS",
    "DELPHI",
    "GAZELLE",
    "CRYPTONETS",
    "resolve_protocol",
    "available_protocols",
    "LayerOperations",
    "LayerCost",
    "CostReport",
    "count_operations",
    "estimate_cost",
    "analyse_model",
    "compare_protocols",
    "format_cost_report",
    "RELU_LIKE",
    "count_relu_modules",
    "replace_activations",
    "replace_relu_with_square",
    "replace_maxpool_with_avgpool",
    "remove_activations",
    "to_ppml_friendly",
    "PPMLConversionReport",
    "ppml_savings",
    "PPMLSavings",
    "FixedPointFormat",
    "TRUNCATION_MODES",
    "encode",
    "decode",
    "truncate",
    "fixed_mul",
    "LayerTrace",
    "ProtocolTrace",
    "SecureCostEstimate",
    "format_trace",
    "SecureConfig",
    "SecureCompiledModel",
    "SecurePredictor",
    "SecureStats",
    "SecureExecutionError",
    "secure_compile",
    "register_secure_rule",
    "OfflineBudget",
    "OfflinePhase",
    "TriplePool",
    "pool_key",
]
