"""Fault injection for the zero-copy data plane.

The claim under test (ISSUE 7 tentpole): a SIGKILLed worker can neither leak
nor corrupt a shared-memory segment — its leased slots are reclaimed, its
orphaned requests are retried on the respawned worker, and every answer the
caller finally sees is bit-identical to the single-process reference (and to
the pickle-everything ``pipe`` transport, which is kept around precisely to
be this test's control group).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import ServeConfig, WorkerPool
from repro.serve.shm import ShmRing


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestKillWithLeasedSlots:
    def test_sigkill_mid_batch_reclaims_slots_and_retries_requests(self, smoke):
        config = ServeConfig(workers=1, transport="shm", max_retries=1,
                             startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            rings = pool._rings[0]
            # Park the worker on a sleep, then pile a batch behind it: the
            # batch frame is written into a leased request-ring slot that the
            # sleeping worker will never release on its own.
            blocker = pool.submit_sleep(1.0)
            futures = [pool.submit(sample) for sample in smoke.samples[:4]]
            assert wait_until(lambda: rings.request.leased_slots()), \
                "batch frame should be parked in a leased slot"
            pool._workers[0].process.kill()

            # Every orphan resolves through the respawned worker, bit-exact.
            assert blocker.result(timeout=120.0) is None
            outputs = [future.result(timeout=120.0) for future in futures]
            for out, expected in zip(outputs, smoke.expected[:4]):
                assert np.array_equal(out, expected)

            stats = pool.stats()
            assert stats["respawns"] >= 1
            assert stats["retried"] >= 1
            # The dead generation's slots were reclaimed, not leaked: the
            # ring drains back to empty once the retries complete.
            assert wait_until(lambda: not rings.request.leased_slots())
            assert wait_until(lambda: not rings.response.leased_slots())
            assert rings.request.stats()["reclaimed"] >= 1

    def test_rings_survive_respawn_without_reallocation(self, smoke):
        config = ServeConfig(workers=1, transport="shm", startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            names_before = (pool._rings[0].request.name,
                            pool._rings[0].response.name)
            first = pool.predict(smoke.samples[0], timeout=60.0)
            pool._workers[0].process.kill()
            assert wait_until(lambda: pool.stats()["respawns"] >= 1)
            assert wait_until(lambda: pool.alive_workers() == 1)
            again = pool.predict(smoke.samples[0], timeout=60.0)
            assert np.array_equal(first, again)
            # Same segments, new worker generation: a crash costs a header
            # scan, not two segment allocations.
            assert (pool._rings[0].request.name,
                    pool._rings[0].response.name) == names_before

    def test_close_unlinks_every_segment(self, smoke):
        config = ServeConfig(workers=1, transport="shm", startup_timeout=120.0)
        pool = WorkerPool(smoke.spec, state=smoke.state, config=config).start()
        names = [pool._rings[0].request.name, pool._rings[0].response.name]
        pool.predict(smoke.samples[0], timeout=60.0)
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                ShmRing(2, 1024, name=name, create=False, unregister=False)


class TestTransportEquivalence:
    """shm and pipe must be indistinguishable to callers, bit for bit."""

    @pytest.fixture(scope="class", params=["shm", "pipe"])
    def transport_outputs(self, request, smoke):
        config = ServeConfig(workers=2, transport=request.param,
                             startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            # Submit everything at once so the continuous batcher actually
            # coalesces — the adversarial case for bit-identity.
            futures = [pool.submit(sample) for sample in smoke.samples]
            outputs = [future.result(timeout=120.0) for future in futures]
            stats = pool.stats()
        return request.param, outputs, stats

    def test_outputs_match_the_batch_of_1_reference(self, transport_outputs, smoke):
        transport, outputs, _ = transport_outputs
        for out, expected in zip(outputs, smoke.expected):
            assert np.array_equal(out, expected), \
                f"{transport} transport drifted from the reference"

    def test_transport_stats_reflect_the_configured_path(self, transport_outputs):
        transport, _, stats = transport_outputs
        assert stats["transport"]["kind"] == transport
        if transport == "shm":
            ring_stats = stats["transport"]["rings"]
            assert ring_stats is not None
            total_leases = sum(worker["request"]["leases"]
                               for worker in ring_stats.values())
            assert total_leases >= 1             # tensors really took the rings
        else:
            assert stats["transport"]["rings"] is None


class TestFusedBatching:
    def test_fused_mode_is_close_but_fast_path_is_exact(self, smoke):
        config = ServeConfig(workers=1, fused_batching=True,
                             startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            futures = [pool.submit(sample) for sample in smoke.samples]
            outputs = [future.result(timeout=120.0) for future in futures]
        # Fused batches trade bit-identity for one big forward: answers are
        # allclose (BLAS associativity), not guaranteed bit-equal.
        for out, expected in zip(outputs, smoke.expected):
            np.testing.assert_allclose(out, expected, rtol=1e-5)
