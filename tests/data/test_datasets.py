"""Tests of datasets, loaders, transforms and the synthetic generators."""

import numpy as np
import pytest

from repro.data import ConcatDataset, DataLoader, Subset, TensorDataset, random_split, transforms
from repro.data.synthetic import (
    SyntheticDetectionDataset,
    SyntheticGenerationDataset,
    SyntheticImageClassification,
    circle_dataset,
    detection_collate,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_tiny_imagenet,
    two_spirals,
    xor_dataset,
)


class TestDatasetContainers:
    def test_tensor_dataset_len_and_getitem(self):
        x = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        ds = TensorDataset(x, y)
        assert len(ds) == 10
        xi, yi = ds[3]
        assert np.allclose(xi, [6, 7]) and yi == 3

    def test_tensor_dataset_single_array(self):
        ds = TensorDataset(np.arange(5))
        assert ds[2] == 2

    def test_tensor_dataset_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            TensorDataset(np.zeros(3), np.zeros(4))

    def test_subset(self):
        ds = TensorDataset(np.arange(10))
        sub = Subset(ds, [2, 4, 6])
        assert len(sub) == 3 and sub[1] == 4

    def test_random_split_partitions(self):
        ds = TensorDataset(np.arange(10))
        a, b = random_split(ds, [7, 3], rng=np.random.default_rng(0))
        assert len(a) == 7 and len(b) == 3
        combined = sorted([a[i] for i in range(7)] + [b[i] for i in range(3)])
        assert combined == list(range(10))

    def test_random_split_wrong_lengths_raises(self):
        with pytest.raises(ValueError):
            random_split(TensorDataset(np.arange(10)), [5, 3])

    def test_concat_dataset(self):
        a = TensorDataset(np.arange(3))
        b = TensorDataset(np.arange(10, 14))
        ds = ConcatDataset([a, b])
        assert len(ds) == 7
        assert ds[0] == 0 and ds[3] == 10 and ds[6] == 13


class TestDataLoader:
    def test_batching_shapes(self):
        ds = TensorDataset(np.zeros((20, 3, 8, 8), dtype=np.float32), np.zeros(20, dtype=np.int64))
        loader = DataLoader(ds, batch_size=8)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (8, 3, 8, 8)
        assert batches[-1][0].shape == (4, 3, 8, 8)

    def test_drop_last(self):
        ds = TensorDataset(np.zeros((20, 2)), np.zeros(20))
        loader = DataLoader(ds, batch_size=8, drop_last=True)
        assert len(loader) == 2
        assert len(list(loader)) == 2

    def test_shuffle_changes_order_but_not_content(self):
        ds = TensorDataset(np.arange(50), np.arange(50))
        loader = DataLoader(ds, batch_size=50, shuffle=True, seed=1)
        (x1, _), = list(loader)
        assert not np.all(x1 == np.arange(50))
        assert sorted(x1.tolist()) == list(range(50))

    def test_shuffle_differs_across_epochs(self):
        ds = TensorDataset(np.arange(30), np.arange(30))
        loader = DataLoader(ds, batch_size=30, shuffle=True, seed=2)
        first = list(loader)[0][0].copy()
        second = list(loader)[0][0].copy()
        assert not np.all(first == second)

    def test_labels_collated_as_int64(self):
        ds = TensorDataset(np.zeros((4, 2), dtype=np.float32), np.arange(4, dtype=np.int64))
        _, labels = next(iter(DataLoader(ds, batch_size=4)))
        assert labels.dtype == np.int64

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(TensorDataset(np.zeros(4)), batch_size=0)

    def test_detection_collate_keeps_targets_as_list(self):
        ds = SyntheticDetectionDataset(num_samples=6, image_size=32, num_classes=3)
        loader = DataLoader(ds, batch_size=3, collate_fn=detection_collate)
        images, targets = next(iter(loader))
        assert images.shape == (3, 3, 32, 32)
        assert isinstance(targets, list) and len(targets) == 3
        assert "boxes" in targets[0]


class TestTransforms:
    def test_normalize(self):
        t = transforms.Normalize(mean=[1.0, 1.0, 1.0], std=[2.0, 2.0, 2.0])
        img = np.ones((3, 4, 4), dtype=np.float32) * 3.0
        assert np.allclose(t(img), 1.0)

    def test_random_crop_preserves_shape(self):
        t = transforms.RandomCrop(8, padding=2, seed=0)
        img = np.random.default_rng(0).normal(size=(3, 8, 8)).astype(np.float32)
        assert t(img).shape == (3, 8, 8)

    def test_horizontal_flip_probability_one(self):
        t = transforms.RandomHorizontalFlip(p=1.1, seed=0)
        img = np.arange(12, dtype=np.float32).reshape(1, 3, 4)
        assert np.allclose(t(img), img[:, :, ::-1])

    def test_compose_applies_in_order(self):
        pipeline = transforms.Compose([
            transforms.Normalize([0.0], [2.0]),
            transforms.Normalize([1.0], [1.0]),
        ])
        img = np.full((1, 2, 2), 4.0, dtype=np.float32)
        assert np.allclose(pipeline(img), 1.0)

    def test_to_float_converts_uint8(self):
        img = (np.ones((3, 2, 2)) * 255).astype(np.uint8)
        out = transforms.ToFloat()(img)
        assert out.dtype == np.float32 and np.allclose(out, 1.0)

    def test_gaussian_noise_changes_values(self):
        t = transforms.GaussianNoise(std=0.5, seed=0)
        img = np.zeros((1, 8, 8), dtype=np.float32)
        assert np.abs(t(img)).sum() > 0


class TestSyntheticClassification:
    def test_shapes_and_types(self):
        ds = SyntheticImageClassification(num_samples=32, num_classes=5, image_size=16)
        image, label = ds[0]
        assert image.shape == (3, 16, 16) and image.dtype == np.float32
        assert 0 <= label < 5

    def test_all_classes_present(self):
        ds = SyntheticImageClassification(num_samples=300, num_classes=10)
        assert (ds.class_counts > 0).all()

    def test_same_seed_same_data(self):
        a = SyntheticImageClassification(num_samples=8, seed=3)
        b = SyntheticImageClassification(num_samples=8, seed=3)
        assert np.allclose(a.images, b.images)

    def test_different_split_seed_different_samples_same_recipes(self):
        train = SyntheticImageClassification(num_samples=8, seed=3, split_seed=0)
        test = SyntheticImageClassification(num_samples=8, seed=3, split_seed=1)
        assert not np.allclose(train.images, test.images)

    def test_cifar_factories(self):
        assert synthetic_cifar10(num_samples=4).num_classes == 10
        assert synthetic_cifar100(num_samples=4).num_classes == 100
        tiny = synthetic_tiny_imagenet(num_samples=4, num_classes=20)
        assert tiny[0][0].shape == (3, 64, 64)

    def test_classes_are_statistically_distinct(self):
        ds = SyntheticImageClassification(num_samples=200, num_classes=2, image_size=16, seed=1)
        means = [ds.images[ds.labels == c].mean(axis=0).ravel() for c in range(2)]
        # Per-class mean images should differ noticeably.
        assert np.abs(means[0] - means[1]).mean() > 0.01

    def test_transform_applied(self):
        ds = SyntheticImageClassification(num_samples=4, transform=lambda img: img * 0.0)
        image, _ = ds[0]
        assert np.allclose(image, 0.0)

    def test_too_few_classes_raises(self):
        with pytest.raises(ValueError):
            SyntheticImageClassification(num_classes=1)


class TestSyntheticDetection:
    def test_target_format(self):
        ds = SyntheticDetectionDataset(num_samples=10, image_size=32, num_classes=5)
        image, target = ds[0]
        assert image.shape == (3, 32, 32)
        assert target["boxes"].shape[1] == 4
        assert len(target["boxes"]) == len(target["labels"])

    def test_boxes_are_normalised(self):
        ds = SyntheticDetectionDataset(num_samples=20, num_classes=5)
        for _, target in (ds[i] for i in range(len(ds))):
            assert np.all(target["boxes"] >= -1e-6) and np.all(target["boxes"] <= 1 + 1e-6)
            assert np.all(target["boxes"][:, 2:] > target["boxes"][:, :2])

    def test_labels_in_range(self):
        ds = SyntheticDetectionDataset(num_samples=20, num_classes=4)
        for _, target in (ds[i] for i in range(len(ds))):
            assert np.all(target["labels"] >= 0) and np.all(target["labels"] < 4)

    def test_object_pixels_brighter_than_background(self):
        ds = SyntheticDetectionDataset(num_samples=5, image_size=64, num_classes=3, seed=1)
        image, target = ds[0]
        box = target["boxes"][0]
        x0, y0, x1, y1 = (box * 64).astype(int)
        inside = image[:, y0:y1, x0:x1].mean()
        overall = image.mean()
        assert inside > overall

    def test_too_many_classes_raises(self):
        with pytest.raises(ValueError):
            SyntheticDetectionDataset(num_classes=99)


class TestSyntheticGenerationAndToy:
    def test_generation_dataset_shapes(self):
        ds = SyntheticGenerationDataset(num_samples=16, image_size=16)
        assert ds[0].shape == (3, 16, 16)
        assert ds.sample(5).shape == (5, 3, 16, 16)

    def test_generation_modes_cover(self):
        ds = SyntheticGenerationDataset(num_samples=200, num_modes=4)
        assert len(np.unique(ds.modes)) == 4

    def test_xor_is_not_linearly_separable(self):
        x, y = xor_dataset(500, noise=0.0)
        # A linear classifier on raw coordinates cannot beat ~60% on XOR;
        # check by fitting a least-squares separator.
        w = np.linalg.lstsq(np.c_[x, np.ones(len(x))], 2.0 * y - 1.0, rcond=None)[0]
        predictions = (np.c_[x, np.ones(len(x))] @ w > 0).astype(int)
        assert (predictions == y).mean() < 0.7
        # ...but the product feature separates it perfectly.
        assert ((x[:, 0] * x[:, 1] < 0).astype(int) == y).mean() > 0.95

    def test_circle_labels_match_radius(self):
        x, y = circle_dataset(200, noise=0.0)
        inside = (x ** 2).sum(axis=1) < 0.7 ** 2
        assert (inside.astype(int) == y).mean() > 0.95

    def test_two_spirals_balanced(self):
        _, y = two_spirals(200)
        assert abs(y.mean() - 0.5) < 0.1
