"""Global hooks used by the profiler to observe autograd memory traffic.

The memory profiler (``repro.profiler.memory``) needs to know how many bytes
of intermediate activations the autodiff engine keeps alive between the
forward and backward pass — that is the quantity the paper plots in Fig. 5 and
Fig. 8.  Rather than coupling the engine to the profiler, the engine emits
events through this tiny observer registry and the profiler subscribes while
it is active.
"""

from __future__ import annotations

from typing import Callable, List

# Each observer is called as observer(event, nbytes, tag) where event is one
# of "save" (bytes cached for backward) or "release" (bytes freed after the
# node's backward ran).
_observers: List[Callable[[str, int, str], None]] = []


def register_observer(observer: Callable[[str, int, str], None]) -> None:
    """Register a saved-tensor observer (used by the memory profiler)."""
    _observers.append(observer)


def unregister_observer(observer: Callable[[str, int, str], None]) -> None:
    """Remove a previously registered observer; missing observers are ignored."""
    try:
        _observers.remove(observer)
    except ValueError:
        pass


def has_observers() -> bool:
    """Return True when at least one observer is attached (fast path check)."""
    return bool(_observers)


def notify(event: str, nbytes: int, tag: str = "") -> None:
    """Broadcast an allocation event to all observers."""
    for observer in _observers:
        observer(event, nbytes, tag)
