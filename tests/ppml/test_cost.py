"""Tests for PPML operation counting and cost estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.ppml import (
    analyse_model,
    compare_protocols,
    count_operations,
    estimate_cost,
    format_cost_report,
)
from repro.quadratic import typenew


def small_relu_net(channels: int = 8) -> nn.Sequential:
    return nn.Sequential(
        nn.Conv2d(3, channels, 3, padding=1),
        nn.BatchNorm2d(channels),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(channels, channels, 3, padding=1),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(channels, 4),
    )


def small_quadratic_net(channels: int = 8) -> nn.Sequential:
    return nn.Sequential(
        typenew(3, channels, kernel_size=3, padding=1),
        nn.BatchNorm2d(channels),
        nn.AvgPool2d(2),
        typenew(channels, channels, kernel_size=3, padding=1),
        nn.GlobalAvgPool2d(),
        nn.Linear(channels, 4),
    )


def test_count_operations_relu_net():
    ops = count_operations(small_relu_net(), (3, 16, 16))
    by_type = {}
    for op in ops:
        by_type.setdefault(op.layer_type, []).append(op)

    assert "Conv2d" in by_type and "ReLU" in by_type and "Linear" in by_type
    # First ReLU acts on an 8x16x16 map.
    first_relu = by_type["ReLU"][0]
    assert first_relu.relu_ops == 8 * 16 * 16
    assert first_relu.macs == 0 and first_relu.mult_ops == 0
    # First conv: 8 filters, 3x3x3 kernel over 16x16 positions.
    first_conv = by_type["Conv2d"][0]
    assert first_conv.macs == 8 * 3 * 3 * 3 * 16 * 16
    assert first_conv.relu_ops == 0
    # MaxPool counts comparisons, not MACs.
    pool = by_type["MaxPool2d"][0]
    assert pool.relu_ops > 0 and pool.macs == 0


def test_count_operations_quadratic_net_has_no_relu_ops():
    ops = count_operations(small_quadratic_net(), (3, 16, 16))
    assert sum(op.relu_ops for op in ops) == 0
    assert sum(op.mult_ops for op in ops) > 0
    # The OURS quadratic conv owns three weight sets, so it costs three times
    # the MACs of the equivalent first-order conv.
    qconv = next(op for op in ops if op.layer_type == "QuadraticConv2d")
    assert qconv.macs == 3 * 8 * 3 * 3 * 3 * 16 * 16


def test_count_operations_batch_size_scales_elementwise_counts():
    ops1 = count_operations(small_relu_net(), (3, 16, 16), batch_size=1)
    ops4 = count_operations(small_relu_net(), (3, 16, 16), batch_size=4)
    relu1 = sum(op.relu_ops for op in ops1)
    relu4 = sum(op.relu_ops for op in ops4)
    assert relu4 == 4 * relu1


def test_relu_dominates_delphi_cost_for_relu_net():
    report = analyse_model(small_relu_net(), (3, 16, 16), protocol="delphi")
    assert report.runnable
    assert report.relu_share() > 0.9


def test_quadratic_net_is_cheaper_under_delphi():
    relu_report = analyse_model(small_relu_net(), (3, 16, 16), protocol="delphi")
    quad_report = analyse_model(small_quadratic_net(), (3, 16, 16), protocol="delphi")
    assert quad_report.total.microseconds < relu_report.total.microseconds
    assert quad_report.total.bytes < relu_report.total.bytes
    assert quad_report.relu_count == 0


def test_relu_net_not_runnable_under_cryptonets():
    report = analyse_model(small_relu_net(), (3, 16, 16), protocol="cryptonets")
    assert not report.runnable
    assert not report.total.finite()


def test_quadratic_net_runnable_under_cryptonets():
    report = analyse_model(small_quadratic_net(), (3, 16, 16), protocol="cryptonets")
    assert report.runnable
    assert report.multiplicative_depth <= report.protocol.multiplicative_depth_limit


def test_compare_protocols_counts_once_and_covers_all():
    reports = compare_protocols(small_quadratic_net(), (3, 16, 16))
    assert set(reports) == {"delphi", "gazelle", "cryptonets"}
    mults = {name: rep.mult_count for name, rep in reports.items()}
    # The operation counts are protocol independent.
    assert len(set(mults.values())) == 1


def test_estimate_cost_empty_operations():
    report = estimate_cost([], "delphi")
    assert report.total.bytes == 0 and report.total.microseconds == 0
    assert report.runnable
    assert report.relu_share() == 0.0


def test_format_cost_report_renders_totals_and_layers():
    report = analyse_model(small_relu_net(), (3, 16, 16), protocol="delphi")
    short = format_cost_report(report)
    assert "TOTAL" in short and "delphi" in short
    detailed = format_cost_report(report, per_layer=True)
    assert detailed.count("\n") > short.count("\n")
    assert "ReLU" in detailed


def test_format_cost_report_marks_unrunnable():
    report = analyse_model(small_relu_net(), (3, 16, 16), protocol="cryptonets")
    text = format_cost_report(report)
    assert "not runnable" in text
