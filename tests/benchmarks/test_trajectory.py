"""The benchmark trajectory: atomic history, tolerant loads, regression bands.

``benchmarks/results/trajectory.jsonl`` is the append-only perf history the
CI gate (``benchmarks/check_trajectory.py``) derives its tolerance bands
from, so its invariants get their own suite: appends are atomic and
validated, loads survive torn or corrupt lines, and the trajectory-relative
check flags a genuine 2x slowdown while passing an ordinary run — the
acceptance bar for the gate itself.

All filesystem tests redirect ``common.RESULTS_DIR`` into ``tmp_path``; the
real history is never touched.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

import check_trajectory  # noqa: E402
import common  # noqa: E402
from common import (MIN_TRAJECTORY_HISTORY, TRAJECTORY_REL_FLOOR,  # noqa: E402
                    append_trajectory, check_against_trajectory,
                    load_trajectory, trajectory_band,
                    validate_trajectory_record)


@pytest.fixture()
def results_dir(tmp_path, monkeypatch):
    """Point every trajectory helper at a throwaway results directory."""
    monkeypatch.setattr(common, "RESULTS_DIR", str(tmp_path))
    return tmp_path


def trajectory_path(results_dir) -> Path:
    return results_dir / "trajectory.jsonl"


class TestAppendTrajectory:
    def test_round_trips_through_load(self, results_dir):
        append_trajectory("bench", {"qps": 120.5, "cpus": 4})
        append_trajectory("bench", {"qps": 130.0, "cpus": 4})
        records = load_trajectory("bench")
        assert [r["qps"] for r in records] == [120.5, 130.0]
        assert all(r["benchmark"] == "bench" for r in records)
        assert all(isinstance(r["timestamp"], float) for r in records)

    def test_leaves_no_temp_files_and_a_newline_terminated_history(self, results_dir):
        append_trajectory("bench", {"qps": 1.0})
        leftovers = [p.name for p in results_dir.iterdir()
                     if p.name != "trajectory.jsonl"]
        assert leftovers == []
        assert trajectory_path(results_dir).read_bytes().endswith(b"\n")

    def test_rejects_invalid_records_without_touching_the_file(self, results_dir):
        append_trajectory("bench", {"qps": 1.0})
        before = trajectory_path(results_dir).read_bytes()
        with pytest.raises(ValueError):
            append_trajectory("bench", {"qps": [1.0, 2.0]})  # non-scalar
        assert trajectory_path(results_dir).read_bytes() == before

    def test_seals_a_torn_trailing_line_from_a_crashed_writer(self, results_dir):
        good = json.dumps({"benchmark": "bench", "timestamp": 1.0, "qps": 9.0})
        with open(trajectory_path(results_dir), "w") as handle:
            handle.write(good + "\n")
            handle.write('{"benchmark": "bench", "timestamp": 2.0, "qp')  # torn
        append_trajectory("bench", {"qps": 11.0})
        lines = trajectory_path(results_dir).read_text().splitlines()
        # The torn bytes are preserved (sealed with a newline), not rewritten.
        assert lines[1].startswith('{"benchmark": "bench", "timestamp": 2.0')
        records = load_trajectory("bench")
        assert [r["qps"] for r in records] == [9.0, 11.0]


class TestLoadTrajectory:
    def test_missing_file_is_an_empty_history(self, results_dir):
        assert load_trajectory() == []

    def test_skips_corrupt_and_schema_invalid_lines(self, results_dir):
        lines = [
            json.dumps({"benchmark": "bench", "timestamp": 1.0, "qps": 5.0}),
            "not json at all {{{",
            json.dumps({"timestamp": 2.0, "qps": 6.0}),           # no benchmark
            json.dumps({"benchmark": "bench", "timestamp": True}),  # bool ts
            json.dumps({"benchmark": "bench", "timestamp": 3.0,
                        "nested": {"a": 1}}),                      # non-scalar
            json.dumps({"benchmark": "bench", "timestamp": 4.0, "qps": 8.0}),
        ]
        trajectory_path(results_dir).write_text("\n".join(lines) + "\n")
        records = load_trajectory("bench")
        assert [r["qps"] for r in records] == [5.0, 8.0]

    def test_filters_by_benchmark_name(self, results_dir):
        append_trajectory("alpha", {"qps": 1.0})
        append_trajectory("beta", {"qps": 2.0})
        assert [r["benchmark"] for r in load_trajectory("alpha")] == ["alpha"]
        assert len(load_trajectory()) == 2


class TestValidateTrajectoryRecord:
    @pytest.mark.parametrize("bad", [
        "a string", 42, [1, 2], None,
        {},                                               # no benchmark
        {"benchmark": "", "timestamp": 1.0},              # empty benchmark
        {"benchmark": "b"},                               # no timestamp
        {"benchmark": "b", "timestamp": "now"},           # non-numeric ts
        {"benchmark": "b", "timestamp": True},            # bool masquerading
        {"benchmark": "b", "timestamp": 1.0, "v": [1]},   # non-scalar value
        {"benchmark": "b", "timestamp": 1.0, "v": {}},    # nested object
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_trajectory_record(bad)

    def test_accepts_a_flat_scalar_record(self):
        record = {"benchmark": "b", "timestamp": 1.5, "qps": 10, "ok": True,
                  "note": "quick", "skipped": None}
        assert validate_trajectory_record(record) is record


def history(metric: str, values, **context) -> list:
    return [{"benchmark": "bench", "timestamp": float(i), metric: v, **context}
            for i, v in enumerate(values)]


class TestRegressionBands:
    #: a realistic quiet p99 history (ms) — spread well inside the 35% floor.
    P99S = [10.0, 10.4, 9.8, 10.1, 10.2]

    def test_flags_an_injected_2x_slowdown(self, results_dir):
        findings = check_against_trajectory(
            "bench", {"p99": 20.2}, {"p99": "lower"},
            history=history("p99", self.P99S))
        assert [f["status"] for f in findings] == ["regression"]

    def test_passes_a_run_near_the_historical_median(self, results_dir):
        findings = check_against_trajectory(
            "bench", {"p99": 10.3}, {"p99": "lower"},
            history=history("p99", self.P99S))
        assert [f["status"] for f in findings] == ["ok"]

    def test_checks_are_one_sided_a_2x_speedup_always_passes(self, results_dir):
        findings = check_against_trajectory(
            "bench", {"p99": 5.0}, {"p99": "lower"},
            history=history("p99", self.P99S))
        assert [f["status"] for f in findings] == ["ok"]

    def test_higher_is_better_metrics_flag_throughput_halving(self, results_dir):
        qps = [1000.0, 980.0, 1010.0, 995.0]
        flagged = check_against_trajectory(
            "bench", {"qps": 500.0}, {"qps": "higher"},
            history=history("qps", qps))
        passed = check_against_trajectory(
            "bench", {"qps": 990.0}, {"qps": "higher"},
            history=history("qps", qps))
        assert [f["status"] for f in flagged] == ["regression"]
        assert [f["status"] for f in passed] == ["ok"]

    def test_insufficient_history_is_a_pass_with_a_note(self, results_dir):
        findings = check_against_trajectory(
            "bench", {"p99": 99.0}, {"p99": "lower"},
            history=history("p99", self.P99S[:MIN_TRAJECTORY_HISTORY - 1]))
        assert [f["status"] for f in findings] == ["insufficient-history"]

    def test_missing_field_is_reported_not_failed(self, results_dir):
        findings = check_against_trajectory(
            "bench", {"other": 1.0}, {"p99": "lower"},
            history=history("p99", self.P99S))
        assert [f["status"] for f in findings] == ["missing"]

    def test_history_is_restricted_to_comparable_context(self, results_dir):
        # Five 8-core records are not comparable history for a 2-core run.
        findings = check_against_trajectory(
            "bench", {"p99": 40.0, "cpus": 2}, {"p99": "lower"},
            history=history("p99", self.P99S, cpus=8))
        assert [f["status"] for f in findings] == ["insufficient-history"]

    def test_noisy_history_earns_a_wider_band_via_mad(self):
        quiet = trajectory_band([100.0, 100.0, 100.0, 100.0, 100.0])
        noisy = trajectory_band([60.0, 140.0, 100.0, 150.0, 55.0])
        assert quiet[1] == pytest.approx(TRAJECTORY_REL_FLOOR * 100.0)
        assert noisy[1] > quiet[1]


class TestGateScript:
    """The standalone CI gate over a real on-disk history."""

    def seed(self, values, latest):
        for v in values:
            append_trajectory("serving_scaleout",
                              {"open_loop_p99_ms": v, "cpus": 4,
                               "quick_mode": True})
        append_trajectory("serving_scaleout",
                          {"open_loop_p99_ms": latest, "cpus": 4,
                           "quick_mode": True})

    def test_gate_fails_on_an_injected_2x_slowdown(self, results_dir, capsys):
        self.seed([10.0, 10.4, 9.8, 10.1], latest=20.5)
        assert check_trajectory.main() == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "open_loop_p99_ms" in out

    def test_gate_passes_an_ordinary_run(self, results_dir, capsys):
        self.seed([10.0, 10.4, 9.8, 10.1], latest=10.2)
        assert check_trajectory.main() == 0
        assert "trajectory gate: PASS" in capsys.readouterr().out

    def test_gate_passes_a_fresh_checkout_with_no_history(self, results_dir, capsys):
        assert check_trajectory.main() == 0
        assert "no records — skipped" in capsys.readouterr().out

    def test_gate_covers_both_serving_benches(self):
        assert set(check_trajectory.DIRECTIONS) == {"serving_scaleout",
                                                    "secure_serving"}
