"""Normalisation layers.

The paper's design insight 2 (Sec. 4.2) stresses that batch normalisation is
*critical* for QDNNs because the second-order term produces extreme activation
values; every quadratic construction function in ``repro.builder`` therefore
inserts BatchNorm after each quadratic layer by default, and the ablation
benchmark ``bench_ablation_design_insights`` measures what happens without it.
"""

from __future__ import annotations

import numpy as np

from ...autodiff.tensor import Tensor
from .. import functional as F
from .. import init
from ..module import Module
from ..parameter import Parameter


class _BatchNorm(Module):
    """Shared implementation of 1-D/2-D batch normalisation."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True, track_running_stats: bool = True) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.affine = affine
        self.track_running_stats = track_running_stats
        if affine:
            self.weight = Parameter(init.ones((num_features,)))
            self.bias = Parameter(init.zeros((num_features,)))
        if track_running_stats:
            self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
            self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
            self.register_buffer("num_batches_tracked", np.zeros(1, dtype=np.int64))

    def _stat_axes(self, x: Tensor):
        raise NotImplementedError

    def _reshape_stat(self, value, ndim: int):
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._stat_axes(x)
        if self.training or not self.track_running_stats:
            mean = x.mean(axis=axes, keepdims=True)
            var = ((x - mean) * (x - mean)).mean(axis=axes, keepdims=True)
            if self.track_running_stats:
                m = self.momentum
                batch_mean = mean.data.reshape(self.num_features)
                batch_var = var.data.reshape(self.num_features)
                # Unbiased variance for the running estimate, like PyTorch.
                count = x.size / self.num_features
                unbiased = batch_var * count / max(count - 1, 1)
                self.running_mean[...] = (1 - m) * self.running_mean + m * batch_mean
                self.running_var[...] = (1 - m) * self.running_var + m * unbiased
                self.num_batches_tracked[...] += 1
        else:
            mean = Tensor(self._reshape_stat(self.running_mean, x.ndim))
            var = Tensor(self._reshape_stat(self.running_var, x.ndim))

        if self.affine:
            weight = self.weight.reshape(self._stat_shape(x.ndim))
            bias = self.bias.reshape(self._stat_shape(x.ndim))
        else:
            weight = Tensor(np.ones(self._stat_shape(x.ndim), dtype=np.float32))
            bias = Tensor(np.zeros(self._stat_shape(x.ndim), dtype=np.float32))
        return F.batch_norm(x, weight, bias, mean, var, eps=self.eps)

    def _stat_shape(self, ndim: int):
        shape = [1] * ndim
        shape[1] = self.num_features
        return tuple(shape)

    def _reshape_stat(self, value: np.ndarray, ndim: int) -> np.ndarray:
        return value.reshape(self._stat_shape(ndim))

    def extra_repr(self) -> str:
        return (f"{self.num_features}, eps={self.eps}, momentum={self.momentum}, "
                f"affine={self.affine}")


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over (N, H, W) for each channel of an NCHW tensor."""

    def _stat_axes(self, x: Tensor):
        return (0, 2, 3)


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over the batch axis of (N, C) or (N, C, L) tensors."""

    def _stat_axes(self, x: Tensor):
        return (0,) if x.ndim == 2 else (0, 2)


class LayerNorm(Module):
    """Layer normalisation over the trailing ``normalized_shape`` dimensions."""

    def __init__(self, normalized_shape, eps: float = 1e-5) -> None:
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = float(eps)
        self.weight = Parameter(init.ones(self.normalized_shape))
        self.bias = Parameter(init.zeros(self.normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        var = ((x - mean) * (x - mean)).mean(axis=axes, keepdims=True)
        normed = (x - mean) * ((var + self.eps) ** -0.5)
        return normed * self.weight + self.bias

    def extra_repr(self) -> str:
        return f"normalized_shape={self.normalized_shape}, eps={self.eps}"
