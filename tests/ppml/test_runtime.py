"""Tests for the secure-inference runtime (fixed-point execution + traces).

The headline property (the issue's acceptance bar): for **every** zoo model,
the operation counts of an *executed* protocol trace equal the static
``ppml.analyse_model`` counts exactly — MACs, garbled-circuit comparisons
and Beaver-triple multiplications, all three.  The static cost tables and
the runtime measure the same thing through entirely different code paths, so
agreement is evidence both are right.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn, ppml
from repro.experiment import MODELS, Experiment, ModelSpec, get_preset
from repro.inference import compile_model
from repro.ppml import (
    ProtocolTrace,
    SecureConfig,
    SecureExecutionError,
    SecurePredictor,
    secure_compile,
)
from repro.utils.seed import seed_everything

#: probe input shape per zoo model (the MLP takes 16-dim vectors).
_INPUT_SHAPES = {"mlp": (16,)}
DEFAULT_SHAPE = (3, 32, 32)


def zoo_model(name: str, neuron_type: str = "OURS"):
    seed_everything(0)
    spec = ModelSpec(name=name, neuron_type=neuron_type, num_classes=4,
                     width_multiplier=0.125)
    model = spec.build()
    model.eval()
    return model, _INPUT_SHAPES.get(name, DEFAULT_SHAPE)


def static_operations(model, input_shape):
    return [layer.operations
            for layer in ppml.analyse_model(model, input_shape, protocol="delphi").layers]


# --------------------------------------------------------------------------- #
# The zoo property: measured == static, on every registered model
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", MODELS.names())
def test_executed_trace_matches_static_counts_on_every_zoo_model(name):
    model, input_shape = zoo_model(name)
    secure = secure_compile(model, SecureConfig(frac_bits=12))
    probe = np.random.default_rng(0).standard_normal(
        (1,) + tuple(input_shape)).astype(np.float32)
    _, trace = secure.run(probe)
    diff = trace.count_diff(static_operations(model, input_shape))
    assert diff == {}, f"measured vs static counts disagree on {name}: {diff}"


@pytest.mark.parametrize("name", ["vgg8", "resnet8", "mobilenet_v1"])
def test_executed_trace_matches_static_counts_first_order(name):
    model, input_shape = zoo_model(name, neuron_type="first_order")
    secure = secure_compile(model)
    probe = np.zeros((1,) + tuple(input_shape), dtype=np.float32)
    _, trace = secure.run(probe)
    assert trace.count_diff(static_operations(model, input_shape)) == {}
    # A first-order ReLU model pays garbled circuits, never Beaver triples.
    assert trace.total_relu_ops > 0 and trace.total_mult_ops == 0


def test_quadratic_no_relu_conversion_executes_garbled_free():
    """The paper's claim, executed: the converted model runs with zero
    garbled-circuit operations (and still matches its static analysis)."""
    model, input_shape = zoo_model("vgg8", neuron_type="first_order")
    converted, _ = ppml.to_ppml_friendly(model, strategy="quadratic_no_relu",
                                         inplace=False)
    secure = secure_compile(converted)
    _, trace = secure.run(np.zeros((1,) + input_shape, dtype=np.float32))
    assert trace.garbled_free
    assert trace.total_mult_ops > 0
    assert trace.count_diff(static_operations(converted, input_shape)) == {}


def test_trace_counts_scale_with_batch_size():
    model, input_shape = zoo_model("small_convnet")
    secure = secure_compile(model)
    _, trace1 = secure.run(np.zeros((1,) + input_shape, dtype=np.float32))
    _, trace3 = secure.run(np.zeros((3,) + input_shape, dtype=np.float32))
    assert trace3.total_mult_ops == 3 * trace1.total_mult_ops
    assert trace3.total_macs == 3 * trace1.total_macs


@pytest.mark.parametrize("neuron_type", ["T2", "T3", "T4", "T4_ID", "T2_4", "OURS"])
def test_executed_trace_matches_static_counts_for_every_composable_design(neuron_type):
    """Including the squared-input designs (T2, T2_4), whose X² projection
    costs one Beaver triple per input element in both static and measured."""
    from repro.quadratic import quadratic_layer
    from repro.quadratic.functional import REQUIRED_RESPONSES

    seed_everything(0)
    flat = 3 * 8 * 8
    model = nn.Sequential(
        quadratic_layer(neuron_type, 3, 3, kernel_size=3, padding=1),
        nn.Flatten(),
        # T4_ID adds the raw input, so its dense layer must preserve width.
        quadratic_layer(neuron_type, flat, flat if neuron_type == "T4_ID" else 4),
    )
    model.eval()
    _, trace = secure_compile(model).run(np.zeros((1, 3, 8, 8), dtype=np.float32))
    assert trace.count_diff(static_operations(model, (3, 8, 8))) == {}
    assert trace.total_mult_ops > 0
    if "sq" in REQUIRED_RESPONSES[neuron_type]:
        # The squared-input projection adds one triple per input element.
        assert trace.total_mult_ops >= 3 * 8 * 8


def test_measured_savings_match_at_batch_sizes_above_one():
    """Static conv MACs scale with the probe batch, like the runtime's."""
    model, input_shape = zoo_model("lenet", neuron_type="first_order")
    converted, _ = ppml.to_ppml_friendly(model, strategy="quadratic_no_relu",
                                         inplace=False)
    savings = ppml.ppml_savings(model, converted, input_shape, protocol="delphi",
                                batch_size=2, measured=True)
    assert savings.measured_matches is True


# --------------------------------------------------------------------------- #
# Numerics: fixed point vs the float compiled path
# --------------------------------------------------------------------------- #

def test_drift_shrinks_with_more_fractional_bits():
    model, input_shape = zoo_model("small_convnet")
    x = np.random.default_rng(1).standard_normal((2,) + input_shape).astype(np.float32)
    reference = compile_model(model)(x)
    drifts = []
    for frac_bits in (8, 12, 16):
        out, _ = secure_compile(model, SecureConfig(frac_bits=frac_bits)).run(x)
        drifts.append(float(np.max(np.abs(out - reference))))
    assert drifts[0] > drifts[1] > drifts[2]
    scale = max(float(np.max(np.abs(reference))), 1.0)
    assert drifts[2] / scale < 1e-3        # 16 bits: well under 0.1% relative


def test_nearest_truncation_is_reproducible_across_compiles():
    model, input_shape = zoo_model("lenet")
    x = np.random.default_rng(2).standard_normal((1,) + input_shape).astype(np.float32)
    out_a, _ = secure_compile(model, SecureConfig(seed=7)).run(x)
    out_b, _ = secure_compile(model, SecureConfig(seed=7)).run(x)
    assert np.array_equal(out_a, out_b)


def test_stochastic_truncation_is_seeded_per_call():
    model, input_shape = zoo_model("lenet")
    cfg = SecureConfig(truncation="stochastic", seed=3)
    x = np.random.default_rng(3).standard_normal((1,) + input_shape).astype(np.float32)
    first_model = secure_compile(model, cfg)
    out_call0, _ = first_model.run(x)
    out_call1, _ = first_model.run(x)
    # Fresh noise per call, but call k is reproducible across executions.
    assert not np.array_equal(out_call0, out_call1)
    assert np.array_equal(out_call0, secure_compile(model, cfg)(x))


def test_relu_and_maxpool_are_exact_on_the_fixed_point_grid():
    """Comparisons cost garbled circuits but introduce no numeric error."""
    seed_everything(0)
    model = nn.Sequential(nn.ReLU(), nn.MaxPool2d(2))
    model.eval()
    x = ppml.decode(ppml.encode(
        np.random.default_rng(4).standard_normal((1, 2, 8, 8)).astype(np.float32), 12), 12)
    out, trace = secure_compile(model).run(x)
    expected = np.maximum(x, 0.0).reshape(1, 2, 4, 2, 4, 2).max(axis=(3, 5))
    assert np.array_equal(out, expected)
    assert trace.total_relu_ops == 2 * 8 * 8 + 2 * 4 * 4 * 3


# --------------------------------------------------------------------------- #
# Trace costing
# --------------------------------------------------------------------------- #

def test_estimate_adds_one_round_trip_per_round():
    model, input_shape = zoo_model("lenet", neuron_type="first_order")
    secure = secure_compile(model, SecureConfig(protocol="delphi"))
    _, trace = secure.run(np.zeros((1,) + input_shape, dtype=np.float32))
    estimate = trace.estimate()
    assert trace.total_rounds > 0
    expected = trace.cost("delphi").total.microseconds \
        + trace.total_rounds * estimate.protocol.round_trip_us
    assert estimate.online_microseconds == pytest.approx(expected)


def test_relu_trace_not_runnable_under_cryptonets():
    model, input_shape = zoo_model("lenet", neuron_type="first_order")
    _, trace = secure_compile(model).run(np.zeros((1,) + input_shape, dtype=np.float32))
    assert not trace.estimate("cryptonets").runnable
    assert trace.estimate("delphi").runnable


def test_trace_round_trips_to_dict():
    model, input_shape = zoo_model("small_convnet")
    _, trace = secure_compile(model).run(np.zeros((1,) + input_shape, dtype=np.float32))
    data = trace.to_dict()
    assert data["protocol"] == "delphi"
    assert data["totals"]["mult_ops"] == trace.total_mult_ops
    assert len(data["layers"]) == len(trace.layers)
    assert isinstance(ProtocolTrace(frac_bits=data["frac_bits"]), ProtocolTrace)


# --------------------------------------------------------------------------- #
# Refusals: the secure path never silently falls back to float
# --------------------------------------------------------------------------- #

def test_layernorm_is_refused():
    model = nn.Sequential(nn.Linear(4, 4), nn.LayerNorm((4,)))
    with pytest.raises(SecureExecutionError, match="LayerNorm"):
        secure_compile(model)


def test_full_rank_t1_is_refused():
    from repro.quadratic import type1

    model = nn.Sequential(type1(4, 4))
    with pytest.raises(SecureExecutionError, match="T1"):
        secure_compile(model)


def test_batchnorm_without_running_stats_is_refused():
    model = nn.Sequential(nn.BatchNorm2d(4, track_running_stats=False))
    with pytest.raises(SecureExecutionError, match="running statistics"):
        secure_compile(model)


def test_unknown_module_is_refused_with_the_layer_name():
    class Exotic(nn.Module):
        def forward(self, x):
            return x

    model = nn.Sequential(nn.ReLU(), Exotic())
    with pytest.raises(SecureExecutionError, match="Exotic"):
        secure_compile(model)


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #

def test_compile_model_ppml_mode_returns_secure_model():
    model, input_shape = zoo_model("small_convnet")
    secure = compile_model(model, mode="ppml", frac_bits=10, protocol="gazelle")
    assert isinstance(secure, ppml.SecureCompiledModel)
    assert secure.fmt.frac_bits == 10
    assert secure.protocol.name == "gazelle"
    out = secure(np.zeros((1,) + input_shape, dtype=np.float32))
    assert out.shape == (1, 4)
    assert secure.last_trace is not None


def test_compile_model_rejects_bad_modes_and_stray_options():
    model, _ = zoo_model("small_convnet")
    with pytest.raises(ValueError, match="compile mode"):
        compile_model(model, mode="int8")
    with pytest.raises(TypeError, match="ppml"):
        compile_model(model, frac_bits=10)


def test_secure_predictor_answers_single_queries():
    model, input_shape = zoo_model("small_convnet")
    predictor = SecurePredictor(model, protocol="delphi", frac_bits=12)
    out = predictor.predict(np.zeros(input_shape, dtype=np.float32))
    assert out.shape == (4,)
    assert predictor.last_trace is not None
    assert predictor.estimate().online_microseconds > 0


def test_experiment_secure_predictor_serves_the_converted_model():
    experiment = Experiment(get_preset("smoke"))
    predictor = experiment.secure_predictor(frac_bits=12)
    sample = np.zeros(experiment.spec.data.input_shape, dtype=np.float32)
    out = predictor.predict(sample)
    assert out.shape == (experiment.spec.model.num_classes,)
    # smoke's spec strategy is quadratic_no_relu: the executed trace is GC-free.
    assert predictor.last_trace.garbled_free
    assert experiment.results["secure"]["strategy"] == "quadratic_no_relu"
    unconverted = experiment.secure_predictor(convert=False)
    unconverted.predict(sample)
    assert not unconverted.last_trace.garbled_free


def test_ppml_savings_measured_validates_the_static_counts():
    model, input_shape = zoo_model("vgg8", neuron_type="first_order")
    converted, _ = ppml.to_ppml_friendly(model, strategy="quadratic_no_relu",
                                         inplace=False)
    savings = ppml.ppml_savings(model, converted, input_shape, protocol="delphi",
                                measured=True)
    assert savings.measured
    assert savings.measured_matches is True
    assert savings.after_trace.garbled_free
    assert savings.latency_ratio < 1.0
    unmeasured = ppml.ppml_savings(model, converted, input_shape)
    assert not unmeasured.measured and unmeasured.measured_matches is None
