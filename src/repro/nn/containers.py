"""Module containers: Sequential and ModuleList.

The paper's construction functions (Sec. 4.2) build QDNNs as flat layer
sequences — ``nn.Sequential(layers)`` — in which quadratic layer modules can
be freely interleaved with first-order ones.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Union

from .module import Module


class Sequential(Module):
    """Run child modules in order, feeding each output into the next."""

    def __init__(self, *modules: Union[Module, Iterable[Module]]) -> None:
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], (list, tuple)):
            modules = tuple(modules[0])
        for idx, module in enumerate(modules):
            self.register_module(str(idx), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: Union[int, slice]) -> Union[Module, "Sequential"]:
        items = list(self._modules.values())
        if isinstance(index, slice):
            return Sequential(*items[index])
        return items[index]

    def append(self, module: Module) -> "Sequential":
        self.register_module(str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """A list of modules whose parameters are registered but whose forward is user-defined."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        for idx, module in enumerate(modules):
            self.register_module(str(idx), module)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._modules)), module)
        return self

    def extend(self, modules: Iterable[Module]) -> "ModuleList":
        for module in modules:
            self.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers have no forward
        raise NotImplementedError("ModuleList has no forward(); index into it instead")
