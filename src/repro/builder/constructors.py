"""Model construction functions (paper Sec. 4.2, "Manual QDNN Model Construction").

Each constructor takes a structure configuration plus a
:class:`~repro.builder.config.QuadraticModelConfig` and returns a ready model.
The neuron type is a parameter, so the *same* construction function produces
the first-order baseline, the published QDNN designs (Fan et al., Bu &
Karpatne) and the paper's QuadraNN — mirroring the paper's code example::

    for v in cfg:
        layers += [qua.type1(in_channels, v), nn.ReLU()]
        in_channels = v
    return nn.Sequential(layers)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .. import nn
from ..nn.module import Module
from ..quadratic.factory import quadratic_layer
from .config import QuadraticModelConfig


def make_conv(config: QuadraticModelConfig, in_channels: int, out_channels: int,
              kernel_size: int = 3, stride: int = 1, padding: int = 1,
              groups: int = 1) -> Module:
    """Create one convolution layer honouring the configured neuron type."""
    if config.is_first_order:
        return nn.Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                         padding=padding, groups=groups, bias=not config.use_batchnorm)
    return quadratic_layer(config.neuron_type, in_channels, out_channels,
                           kernel_size=kernel_size, stride=stride, padding=padding,
                           groups=groups, bias=not config.use_batchnorm,
                           hybrid_bp=config.hybrid_bp)


def make_linear(config: QuadraticModelConfig, in_features: int, out_features: int,
                quadratic_head: bool = False) -> Module:
    """Create a dense layer; classifier heads stay first-order unless requested."""
    if config.is_first_order or not quadratic_head:
        return nn.Linear(in_features, out_features)
    return quadratic_layer(config.neuron_type, in_features, out_features,
                           hybrid_bp=config.hybrid_bp)


def conv_block(config: QuadraticModelConfig, in_channels: int, out_channels: int,
               kernel_size: int = 3, stride: int = 1, padding: int = 1,
               groups: int = 1) -> List[Module]:
    """Conv (+BatchNorm) (+activation) honouring the paper's design insights."""
    layers: List[Module] = [
        make_conv(config, in_channels, out_channels, kernel_size, stride, padding, groups)
    ]
    if config.use_batchnorm:
        layers.append(nn.BatchNorm2d(out_channels))
    if config.use_activation:
        layers.append(nn.ReLU())
    return layers


def build_plain_convnet(cfg: Sequence[Union[int, str]], config: QuadraticModelConfig,
                        in_channels: int = 3) -> Tuple[nn.Sequential, int]:
    """Build a VGG-style plain feature extractor from a channel configuration.

    Returns the feature module and the number of output channels.
    """
    layers: List[Module] = []
    channels = in_channels
    for item in cfg:
        if item == "M":
            layers.append(nn.MaxPool2d(2))
            continue
        out_channels = config.scaled(int(item))
        layers.extend(conv_block(config, channels, out_channels))
        channels = out_channels
    return nn.Sequential(*layers), channels


def build_classifier_head(in_features: int, num_classes: int, hidden: Optional[int] = None,
                          dropout: float = 0.0) -> nn.Sequential:
    """Standard classification head applied after global average pooling."""
    layers: List[Module] = [nn.GlobalAvgPool2d()]
    if hidden:
        layers.extend([nn.Linear(in_features, hidden), nn.ReLU()])
        if dropout:
            layers.append(nn.Dropout(dropout))
        layers.append(nn.Linear(hidden, num_classes))
    else:
        layers.append(nn.Linear(in_features, num_classes))
    return nn.Sequential(*layers)


def build_mlp(layer_sizes: Sequence[int], config: QuadraticModelConfig,
              quadratic_hidden: bool = True, activation: bool = True) -> nn.Sequential:
    """Build a multi-layer perceptron whose hidden layers may be quadratic.

    Used by the toy examples (XOR / spirals) where a *single* quadratic layer
    solves what a single linear layer cannot.
    """
    layers: List[Module] = []
    for i in range(len(layer_sizes) - 1):
        is_last = i == len(layer_sizes) - 2
        if config.is_first_order or is_last or not quadratic_hidden:
            layers.append(nn.Linear(layer_sizes[i], layer_sizes[i + 1]))
        else:
            layers.append(quadratic_layer(config.neuron_type, layer_sizes[i],
                                          layer_sizes[i + 1], hybrid_bp=config.hybrid_bp))
        if not is_last and activation:
            layers.append(nn.ReLU())
    return nn.Sequential(*layers)
