"""Measured per-kernel throughput of a compute backend, cached per host.

The capacity model (:mod:`repro.capacity`) predicts serving throughput and
latency from *first principles*: per-layer work counts priced by what this
host's kernels actually sustain.  The work counts come from the model
(:func:`repro.profiler.profile_model` over ``inference_plan()``); the rates
come from here — short micro-probes of the three kernel classes every
compiled model is built from, plus two serving-overhead probes:

``gemm_macs_per_s``
    dense projections (``Backend.gemm``): one square-ish float32 matmul,
    sized to live in cache but dominate its own dispatch cost.
``conv_macs_per_s``
    convolutions: a three-stage *pyramid* of quadratic conv steps (shared
    ``Backend.im2col`` lowering, three ``Backend.conv_project`` weight
    sets, fused combine) whose spatial extent shrinks stage by stage the
    way the backbones' does.  Pricing the pyramid instead of one wide
    tile matters: most of a backbone's MACs live in late layers whose
    tiny matrices run far below peak BLAS efficiency, so a single
    cache-friendly tile would overstate the sustainable rate ~2x.
``elementwise_ops_per_s``
    the element-wise glue (frozen BatchNorm, bias adds, activations): a
    broadcast scale+shift over one layer-sized activation map, so the
    rate carries the per-call and striding overheads the real glue pays.
``pool_window_elems_per_s``
    windowed reductions (``Backend.maxpool``): output elements x window
    per second over the same shrinking pyramid of shapes.  Pooling moves
    almost no FLOPs but its strided window views defeat vectorization —
    on small backbones it rivals the convolutions for wall clock, which
    is exactly why it gets its own probe instead of the element-wise rate
    (two orders of magnitude too optimistic).
``dispatch_us``
    per-call fixed overhead of one tiny kernel dispatch — the floor a
    compiled step pays regardless of its arithmetic.
``ipc_us``
    one queue round trip between two threads (``SimpleQueue`` put + get of
    a small control tuple) — the unit of parent↔worker control traffic.
``copy_bytes_per_s``
    large-array ``np.copyto`` bandwidth — what moving a request payload
    into (and a response out of) a shared-memory ring slot costs.

Probes are deliberately small (default budget ~60 ms each) because a rate
is a *slope*, not a benchmark: medians over repeated timed calls are stable
enough for capacity planning at the ±35 % band the benches validate.

Measuring even ~0.4 s per backend adds up across tests and CLI calls, so
results are cached twice: in-process per ``(backend, host)`` and on disk in
``~/.cache/repro/kernel_rates.json`` (override with ``REPRO_RATES_CACHE``;
set it to ``off`` to disable the disk layer).  The host key folds in the
platform, CPU count and NumPy version, so a cache file copied between
machines — or a container resized under the same image — never serves
stale slopes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: schema version of the on-disk cache; bump when probe definitions change.
CACHE_VERSION = 2

#: in-process cache: (backend name, host key) -> KernelRates.
_MEMORY_CACHE: Dict[Tuple[str, str], "KernelRates"] = {}


def host_key() -> str:
    """One string identifying the hardware/software the rates were measured on."""
    return "|".join([
        platform.machine(),
        platform.system(),
        f"cpus={os.cpu_count() or 1}",
        f"numpy={np.__version__}",
        f"py={platform.python_version_tuple()[0]}.{platform.python_version_tuple()[1]}",
    ])


@dataclass(frozen=True)
class KernelRates:
    """Measured sustained rates of one backend on one host."""

    backend: str
    host: str
    gemm_macs_per_s: float
    conv_macs_per_s: float
    elementwise_ops_per_s: float
    pool_window_elems_per_s: float
    dispatch_us: float
    ipc_us: float
    copy_bytes_per_s: float
    measured_at: float = 0.0

    def validate(self) -> None:
        for name in ("gemm_macs_per_s", "conv_macs_per_s",
                     "elementwise_ops_per_s", "pool_window_elems_per_s",
                     "copy_bytes_per_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        for name in ("dispatch_us", "ipc_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelRates":
        known = {field.name for field in dataclasses.fields(cls)}
        rates = cls(**{key: value for key, value in data.items() if key in known})
        rates.validate()
        return rates


# --------------------------------------------------------------------------- #
# Probes
# --------------------------------------------------------------------------- #

def _median_seconds(fn, budget_s: float, min_repeats: int = 3) -> float:
    """Median wall-clock seconds of repeated ``fn()`` calls within a budget."""
    timings = []
    deadline = time.perf_counter() + budget_s
    while len(timings) < min_repeats or time.perf_counter() < deadline:
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
        if len(timings) >= 64:          # plenty for a median
            break
    timings.sort()
    return timings[len(timings) // 2]


def _probe_gemm(backend, budget_s: float) -> float:
    rng = np.random.default_rng(0)
    x = rng.standard_normal((96, 192)).astype(np.float32)
    w = rng.standard_normal((192, 192)).astype(np.float32)
    out = np.empty((96, 192), dtype=np.float32)
    macs = x.shape[0] * x.shape[1] * w.shape[1]
    seconds = _median_seconds(lambda: backend.gemm(x, w, out=out), budget_s)
    return macs / seconds


def _probe_conv(backend, budget_s: float) -> float:
    """Sustained MAC rate of a quadratic conv *pyramid* (see module docs).

    Each stage mirrors the compiled ``quadratic_conv_step``: one im2col
    lowering shared by three projection weight sets, then a fused
    element-wise combine — and the stages shrink spatially (16² → 8² → 4²)
    with growing channel counts, like a backbone after pooling.  The probe
    runs at **batch 1** because that is what serving executes: the pool's
    default is exact mode (every request is its own batch-of-1 forward),
    so the sustained rate must include the per-step overheads a single
    sample cannot amortize.  MACs are counted exactly as
    :func:`repro.profiler.profile_model` counts a quadratic conv
    (``n_sets x f x patch + 2f`` per output position), so a capacity plan
    priced by this rate is consistent with the profile it multiplies.
    """
    rng = np.random.default_rng(1)
    n, kh, kw = 1, 3, 3
    n_sets = 3                          # the paper neuron's (a, b, c) responses
    stages = []
    macs = 0
    # Stem (3-channel, patch too small for BLAS efficiency), two mid stages
    # (where most MACs live), and a skinny head (wide weights over a 2x2
    # map: memory-bound on the weight stream) — the efficiency *mix* of a
    # pooled backbone, not just its best-behaved middle.
    for c, h, f in ((3, 16, 16), (16, 8, 32), (32, 4, 64), (64, 2, 64)):
        patch = c * kh * kw
        x = rng.standard_normal((n, c, h, h)).astype(np.float32)
        wmats = [rng.standard_normal((1, f, patch)).astype(np.float32)
                 for _ in range(n_sets)]
        outs = [np.empty((n, 1, f, h * h), dtype=np.float32)
                for _ in range(n_sets)]
        combined = np.empty((n, 1, f, h * h), dtype=np.float32)
        stages.append((x, patch, h, wmats, outs, combined))
        macs += n * (n_sets * f * patch + 2 * f) * h * h
    cache: dict = {}

    def step() -> None:
        for x, patch, h, wmats, outs, combined in stages:
            cols = backend.im2col(x, kh, kw, (1, 1), (1, 1))
            cols = cols.reshape(n, 1, patch, h * h)
            for wmat, out in zip(wmats, outs):
                backend.conv_project(cols, wmat, out, cache)
            backend.multiply(outs[0], outs[1], out=combined)
            backend.add(combined, outs[2], out=combined)

    step()                              # resolve the dispatch probe up front
    seconds = _median_seconds(step, budget_s)
    return macs / seconds


def _probe_elementwise(backend, budget_s: float) -> float:
    """Element-wise rate at *layer-shaped* operands (broadcast scale+shift).

    The glue work a capacity plan prices (frozen BatchNorm, biases,
    activations) runs over one layer's activation map with broadcast
    ``(1, C, 1, 1)`` parameters — a few thousand elements per call, where
    per-call overhead and strided broadcasting dominate.  A probe over one
    large contiguous buffer would overstate this rate ~30x.
    """
    rng = np.random.default_rng(2)
    x = rng.standard_normal((1, 16, 16, 16)).astype(np.float32)
    scale = rng.standard_normal((1, 16, 1, 1)).astype(np.float32)
    shift = rng.standard_normal((1, 16, 1, 1)).astype(np.float32)
    out = np.empty_like(x)
    ops = 2 * x.size                    # one multiply + one add per element

    def step() -> None:
        backend.multiply(x, scale, out=out)
        backend.add(out, shift, out=out)

    seconds = _median_seconds(step, budget_s)
    return ops / seconds


def _probe_pool(backend, budget_s: float) -> float:
    """Windowed-reduction rate over the same pyramid the conv probe walks."""
    rng = np.random.default_rng(3)
    n, k = 1, 2
    stages = []
    window_elems = 0
    for c, h in ((16, 16), (32, 8), (64, 4)):
        x = rng.standard_normal((n, c, h, h)).astype(np.float32)
        stages.append(x)
        window_elems += n * c * (h // k) * (h // k) * k * k

    def step() -> None:
        for x in stages:
            backend.maxpool(x, (k, k), (k, k), (0, 0))

    step()
    seconds = _median_seconds(step, budget_s)
    return window_elems / seconds


def _probe_dispatch(backend, budget_s: float) -> float:
    x = np.ones((1, 8), dtype=np.float32)
    w = np.ones((8, 8), dtype=np.float32)
    out = np.empty((1, 8), dtype=np.float32)
    seconds = _median_seconds(lambda: backend.gemm(x, w, out=out), budget_s)
    return seconds * 1e6


def _probe_ipc(budget_s: float) -> float:
    import queue

    channel: "queue.SimpleQueue" = queue.SimpleQueue()
    frame = (0, 1, (8, 3, 16, 16), "float32")

    def step() -> None:
        channel.put(frame)
        channel.get()

    return _median_seconds(step, budget_s) * 1e6


def _probe_copy(budget_s: float) -> float:
    src = np.ones(1 << 20, dtype=np.float32)
    dst = np.empty_like(src)
    seconds = _median_seconds(lambda: np.copyto(dst, src), budget_s)
    return src.nbytes / seconds


# --------------------------------------------------------------------------- #
# Measurement + the two cache layers
# --------------------------------------------------------------------------- #

def cache_path() -> Optional[str]:
    """Disk-cache location, or None when disabled via ``REPRO_RATES_CACHE=off``."""
    override = os.environ.get("REPRO_RATES_CACHE", "")
    if override.lower() in ("off", "0", "none"):
        return None
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "kernel_rates.json")


def _load_disk_cache(path: str) -> Dict[str, dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != CACHE_VERSION:
            return {}
        entries = payload.get("rates", {})
        return entries if isinstance(entries, dict) else {}
    except (OSError, ValueError):
        return {}


def _store_disk_cache(path: str, entries: Dict[str, dict]) -> None:
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"version": CACHE_VERSION, "rates": entries}, handle,
                      indent=2, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        pass                            # a cold cache next run, never a failure


def measure_backend_rates(backend, budget_ms: float = 60.0,
                          refresh: bool = False) -> KernelRates:
    """Measure (or recall) one backend's :class:`KernelRates` on this host.

    ``budget_ms`` bounds each probe's measurement loop; ``refresh=True``
    bypasses both cache layers and re-measures (the new numbers replace the
    cached entry).  Thread-safety note: probes are pure compute, so a
    concurrent duplicate measurement is wasteful, never wrong.
    """
    if budget_ms <= 0:
        raise ValueError(f"budget_ms must be > 0, got {budget_ms}")
    host = host_key()
    memory_key = (backend.name, host)
    if not refresh and memory_key in _MEMORY_CACHE:
        return _MEMORY_CACHE[memory_key]

    path = cache_path()
    disk_key = f"{backend.name}@{host}"
    if not refresh and path is not None:
        entry = _load_disk_cache(path).get(disk_key)
        if entry is not None:
            try:
                rates = KernelRates.from_dict(entry)
            except (TypeError, ValueError):
                rates = None            # corrupt entry: fall through, re-measure
            if rates is not None and rates.host == host \
                    and rates.backend == backend.name:
                _MEMORY_CACHE[memory_key] = rates
                return rates

    budget_s = budget_ms / 1000.0
    rates = KernelRates(
        backend=backend.name,
        host=host,
        gemm_macs_per_s=_probe_gemm(backend, budget_s),
        conv_macs_per_s=_probe_conv(backend, budget_s),
        elementwise_ops_per_s=_probe_elementwise(backend, budget_s),
        pool_window_elems_per_s=_probe_pool(backend, budget_s),
        dispatch_us=_probe_dispatch(backend, budget_s),
        ipc_us=_probe_ipc(budget_s),
        copy_bytes_per_s=_probe_copy(budget_s),
        measured_at=time.time(),
    )
    rates.validate()
    _MEMORY_CACHE[memory_key] = rates
    if path is not None:
        entries = _load_disk_cache(path)
        entries[disk_key] = rates.to_dict()
        _store_disk_cache(path, entries)
    return rates


def clear_memory_cache() -> None:
    """Forget in-process measurements (tests use this to force re-probing)."""
    _MEMORY_CACHE.clear()
