"""The parent-process side of the serving pool: dispatch, respawn, drain.

:class:`WorkerPool` owns N worker processes (see :mod:`repro.serve.worker`),
one bounded request queue per worker, and one shared response queue.  A
dispatcher thread in the parent resolves responses into caller-held
:class:`PoolFuture` handles and doubles as the supervisor: whenever a worker
process dies it respawns a replacement and either retries the requests the
dead worker had in flight (up to ``max_retries`` attempts) or rejects them
with :class:`WorkerCrashed`.

Admission control is explicit and two-layered:

* a **watermark** on total requests in flight across the pool — beyond it
  :meth:`WorkerPool.submit` raises :class:`PoolSaturated` (the HTTP front
  door turns that into ``503``), and
* the **bounded per-worker queues** — even a confused caller that ignores
  :class:`PoolSaturated` cannot buffer unboundedly.

Dispatch is least-loaded with round-robin tie-breaking: each submission goes
to the alive worker with the fewest requests in flight, so a worker stuck on
a slow request stops receiving new ones.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..experiment import ExperimentSpec
from .config import ServeConfig
from .worker import worker_main


class PoolSaturated(RuntimeError):
    """The pool is at its admission watermark — shed this request."""


class WorkerCrashed(RuntimeError):
    """A worker died with this request in flight and no retries remained."""


class PoolClosed(RuntimeError):
    """The pool is draining or closed and accepts no new requests."""


class PoolFuture:
    """Handle for one request travelling through the pool."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = 30.0):
        if not self._event.wait(timeout):
            raise TimeoutError(f"pool response not ready after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value


class _Request:
    """Parent-side bookkeeping for one in-flight request."""

    __slots__ = ("request_id", "kind", "payload", "future", "attempts", "worker_id")

    def __init__(self, request_id: int, kind: str, payload) -> None:
        self.request_id = request_id
        self.kind = kind
        self.payload = payload
        self.future = PoolFuture()
        self.attempts = 0
        self.worker_id: Optional[int] = None


class _WorkerHandle:
    """One worker process plus its queues and in-flight set.

    Every worker gets a *private* pair of queues.  Sharing one response queue
    across the pool would be simpler, but a worker SIGKILLed while its feeder
    thread holds the shared queue's write lock poisons that queue for every
    other worker (this is why ``concurrent.futures`` declares a whole
    ProcessPoolExecutor broken on one crash).  With per-worker channels, a
    crash can only corrupt queues that die with the worker.
    """

    def __init__(self, worker_id: int, generation: int, process, request_queue,
                 response_queue) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.process = process
        self.request_queue = request_queue
        self.response_queue = response_queue
        self.in_flight: Dict[int, _Request] = {}
        self.ready = threading.Event()
        self.served = 0
        self.last_used = 0
        self.stopping = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def describe(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "generation": self.generation,
            "pid": self.process.pid,
            "alive": self.alive,
            "ready": self.ready.is_set(),
            "served": self.served,
            "in_flight": len(self.in_flight),
        }


#: Consecutive died-before-ready crashes after which a worker slot is given
#: up on instead of respawned — a deterministic startup crash (bad config,
#: corrupt weights) must not become an infinite spawn storm.
MAX_EARLY_CRASHES = 3


class WorkerPool:
    """Shard compiled-model inference across a pool of worker processes.

    Parameters
    ----------
    spec : ExperimentSpec or dict
        The experiment whose model the workers serve.  Serialized to a plain
        dict for IPC; each worker rebuilds and compiles the model itself.
    state : dict, optional
        Trained weights (``model.state_dict()``) shipped to every worker so
        all of them answer with identical bits.  ``None`` serves the freshly
        built (seeded) model.
    config : ServeConfig

    Example
    -------
    >>> pool = WorkerPool(spec, state=model.state_dict(),
    ...                   config=ServeConfig(workers=2))
    >>> with pool:                       # starts workers, waits for ready
    ...     out = pool.predict(sample)   # or submit() for a future
    """

    def __init__(self, spec, state: Optional[Dict[str, np.ndarray]] = None,
                 config: Optional[ServeConfig] = None) -> None:
        if isinstance(spec, ExperimentSpec):
            spec = spec.to_dict()
        self.spec_dict = dict(spec)
        self.state = dict(state) if state else {}
        self.config = config or ServeConfig()
        self._ctx = None
        self._workers: Dict[int, _WorkerHandle] = {}
        self._requests: Dict[int, _Request] = {}
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._rr = itertools.count()            # round-robin tie breaker
        self._dispatcher: Optional[threading.Thread] = None
        #: per-slot count of consecutive crashes before reporting ready
        self._early_crashes: Dict[int, int] = {}
        self._started = False
        self._accepting = False
        self._closed = False
        # counters (all mutated under the lock)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.respawns = 0
        self.rejected_saturated = 0

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "WorkerPool":
        """Spawn the workers and block until every one reports ready."""
        with self._lock:
            if self._closed:
                raise PoolClosed("this pool has been closed; create a new WorkerPool")
            if self._started:
                return self
            self._started = True
            self._accepting = True
            import multiprocessing

            self._ctx = multiprocessing.get_context(self.config.start_method)
            for worker_id in range(self.config.workers):
                self._workers[worker_id] = self._spawn(worker_id, generation=0)
        self._dispatcher = threading.Thread(target=self._dispatch_loop, daemon=True,
                                            name="repro-pool-dispatcher")
        self._dispatcher.start()
        deadline = time.monotonic() + self.config.startup_timeout
        for worker_id in range(self.config.workers):
            # Poll the *current* handle: the supervisor may have respawned the
            # slot behind our back, and a slot that keeps crashing before
            # ready fails fast instead of burning the whole startup timeout.
            while True:
                with self._lock:
                    handle = self._workers.get(worker_id)
                    gave_up = self._early_crashes.get(worker_id, 0) >= MAX_EARLY_CRASHES
                if handle is not None and handle.ready.wait(0.05):
                    break
                dead = handle is None or not handle.alive
                if (dead and gave_up) or time.monotonic() >= deadline:
                    reason = ("keeps crashing during startup "
                              f"({MAX_EARLY_CRASHES} consecutive attempts)" if gave_up
                              else f"did not become ready within "
                                   f"{self.config.startup_timeout}s")
                    self.close(timeout=1.0)
                    raise RuntimeError(
                        f"worker {worker_id} {reason}; check the spec/weights "
                        f"and the serve configuration")
        return self

    def _spawn(self, worker_id: int, generation: int) -> _WorkerHandle:
        """Create one worker process (caller holds the lock)."""
        request_queue = self._ctx.Queue(maxsize=self.config.queue_depth)
        response_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.spec_dict, self.state, self.config.max_batch_size,
                  self.config.max_wait, self.config.request_timeout,
                  request_queue, response_queue, self.config.backend),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        process.start()
        return _WorkerHandle(worker_id, generation, process, request_queue, response_queue)

    def stop_accepting(self) -> None:
        """Refuse new submissions while letting in-flight work finish."""
        with self._lock:
            self._accepting = False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting requests; wait for the in-flight set to empty.

        Returns True when everything in flight completed within ``timeout``
        (default: the config's ``drain_timeout``).
        """
        with self._lock:
            self._accepting = False
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.config.drain_timeout)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._requests:
                    return True
            time.sleep(0.01)
        with self._lock:
            return not self._requests

    def close(self, timeout: float = 10.0) -> None:
        """Drain, stop the workers, reject anything still unresolved (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._accepting = False
            started = self._started
        if not started:
            return
        self.drain(timeout=min(timeout, self.config.drain_timeout))
        with self._lock:
            handles = list(self._workers.values())
            for handle in handles:
                handle.stopping = True
                try:
                    handle.request_queue.put_nowait(None)
                except queue_module.Full:
                    pass
        for handle in handles:
            handle.process.join(timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
        with self._lock:
            leftovers = list(self._requests.values())
            self._requests.clear()
            for handle in self._workers.values():
                handle.in_flight.clear()
        for request in leftovers:
            request.future._reject(PoolClosed(
                "pool closed before this request was answered"))
        if self._dispatcher is not None and self._dispatcher.is_alive():
            self._dispatcher.join(timeout=2.0)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ serving
    def submit(self, sample: np.ndarray) -> PoolFuture:
        """Dispatch one sample to the least-loaded worker; returns a future.

        Raises :class:`PoolSaturated` once the pool-wide in-flight count
        reaches the watermark (or the chosen worker's queue is full), and
        :class:`PoolClosed` when the pool is draining or closed.
        """
        return self._submit("predict", np.asarray(sample, dtype=np.float32))

    def submit_sleep(self, seconds: float) -> PoolFuture:
        """Occupy one worker for ``seconds`` (drain/failure testing, warm-up)."""
        return self._submit("sleep", float(seconds))

    def predict(self, sample: np.ndarray, timeout: Optional[float] = None):
        """Blocking convenience wrapper around :meth:`submit`."""
        effective = timeout if timeout is not None else self.config.request_timeout
        return self.submit(sample).result(timeout=effective)

    def _submit(self, kind: str, payload) -> PoolFuture:
        with self._lock:
            if not self._started:
                raise PoolClosed("pool not started; call start() or use it as a "
                                 "context manager")
            if self._closed or not self._accepting:
                raise PoolClosed("pool is draining/closed and accepts no new requests")
            if len(self._requests) >= self.config.effective_watermark:
                self.rejected_saturated += 1
                raise PoolSaturated(
                    f"{len(self._requests)} requests in flight >= watermark "
                    f"{self.config.effective_watermark}; retry later")
            request = _Request(next(self._request_ids), kind, payload)
            self._dispatch(request)
            self.submitted += 1
        return request.future

    def _dispatch(self, request: _Request) -> None:
        """Enqueue ``request`` on the best worker (caller holds the lock)."""
        candidates = [handle for handle in self._workers.values()
                      if handle.alive and not handle.stopping]
        if not candidates:
            respawnable = (not self._closed and any(
                self._early_crashes.get(worker_id, 0) < MAX_EARLY_CRASHES
                for worker_id in self._workers))
            if respawnable:
                # The supervisor is (about to be) respawning — transient, so
                # shed rather than fail: callers can retry, HTTP says 503.
                self.rejected_saturated += 1
                raise PoolSaturated(
                    "no alive workers right now (respawn in progress); retry later")
            self.failed += 1
            request.future._reject(WorkerCrashed("no alive workers in the pool"))
            return
        # Least-loaded first; equal loads rotate round-robin so sequential
        # traffic still spreads across the pool.
        candidates.sort(key=lambda handle: (len(handle.in_flight), handle.last_used))
        request.attempts += 1
        for handle in candidates:
            try:
                handle.request_queue.put_nowait(
                    (request.request_id, request.kind, request.payload))
            except queue_module.Full:
                continue
            request.worker_id = handle.worker_id
            handle.in_flight[request.request_id] = request
            handle.last_used = next(self._rr)
            self._requests[request.request_id] = request
            return
        # Every queue is full — that is backpressure too.
        self.rejected_saturated += 1
        raise PoolSaturated("every worker queue is full; retry later")

    # --------------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        """Resolve responses and supervise worker processes."""
        last_liveness_check = 0.0
        while True:
            with self._lock:
                if self._closed and not self._requests:
                    break
                handles = list(self._workers.values())
            got_any = False
            for handle in handles:
                got_any |= self._drain_responses(handle)
            now = time.monotonic()
            if now - last_liveness_check >= 0.1:
                last_liveness_check = now
                self._reap_dead_workers()
            if not got_any:
                time.sleep(0.002)

    def _drain_responses(self, handle: _WorkerHandle, limit: int = 64) -> bool:
        """Process everything currently readable on one worker's channel."""
        got_any = False
        for _ in range(limit):
            try:
                message = handle.response_queue.get_nowait()
            except (queue_module.Empty, EOFError, OSError):
                break
            got_any = True
            self._handle_message(message)
        return got_any

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "ready":
            _, worker_id, _pid = message
            with self._lock:
                handle = self._workers.get(worker_id)
                self._early_crashes[worker_id] = 0    # the slot proved viable
            if handle is not None:
                handle.ready.set()
            return
        if kind == "bye":
            return
        _, request_id, payload = message
        with self._lock:
            request = self._requests.pop(request_id, None)
            if request is None:
                return  # already rejected (e.g. its worker was declared dead)
            handle = self._workers.get(request.worker_id)
            if handle is not None:
                handle.in_flight.pop(request_id, None)
                handle.served += 1
            if kind == "ok":
                self.completed += 1
            else:
                self.failed += 1
        if kind == "ok":
            request.future._resolve(payload)
        else:
            request.future._reject(RuntimeError(f"worker error: {payload}"))

    def _reap_dead_workers(self) -> None:
        """Respawn crashed workers; retry or reject their orphaned requests."""
        with self._lock:
            dead = [handle for handle in self._workers.values()
                    if not handle.alive and not handle.stopping]
        if not dead:
            return
        # Collect any answers a worker managed to send before dying, so those
        # requests resolve normally instead of being retried (done outside
        # the lock — _handle_message locks per message).
        for handle in dead:
            self._drain_responses(handle)
        # Charge never-ready deaths against the slot's crash budget, then
        # spawn replacements OUTSIDE the lock — a spawn re-imports the
        # library and pickles the weights (~1 s), and holding the lock that
        # long would stall every submit and response in the pool.  Only this
        # (dispatcher) thread reaps, so there is no double-spawn race.
        with self._lock:
            closed = self._closed
            for handle in dead:
                if (self._workers.get(handle.worker_id) is handle
                        and not handle.ready.is_set()):
                    self._early_crashes[handle.worker_id] = \
                        self._early_crashes.get(handle.worker_id, 0) + 1
            budgets = dict(self._early_crashes)
        replacements: Dict[int, _WorkerHandle] = {}
        if not closed:
            for handle in dead:
                if budgets.get(handle.worker_id, 0) >= MAX_EARLY_CRASHES:
                    continue  # deterministic startup crash: give the slot up
                replacements[handle.worker_id] = self._spawn(
                    handle.worker_id, generation=handle.generation + 1)
        to_retry: List[_Request] = []
        to_reject: List[_Request] = []
        with self._lock:
            for handle in dead:
                if self._workers.get(handle.worker_id) is not handle:
                    continue  # already replaced by an earlier reap
                orphans = list(handle.in_flight.values())
                handle.in_flight.clear()
                replacement = replacements.get(handle.worker_id)
                if replacement is not None and not self._closed:
                    self._workers[handle.worker_id] = replacement
                    self.respawns += 1
                else:
                    # Slot given up (crash budget spent) or pool closing:
                    # stop re-reaping this dead handle every supervisor tick.
                    handle.stopping = True
                for request in orphans:
                    self._requests.pop(request.request_id, None)
                    if request.attempts <= self.config.max_retries and not self._closed:
                        to_retry.append(request)
                    else:
                        to_reject.append(request)
            for request in to_retry:
                self.retried += 1
                try:
                    self._dispatch(request)
                except PoolSaturated:
                    to_reject.append(request)
            for request in to_reject:
                self.failed += 1
        # A replacement that lost the install race (pool closed mid-spawn)
        # must not leak as an orphan process.
        for worker_id, replacement in replacements.items():
            with self._lock:
                installed = self._workers.get(worker_id) is replacement
            if not installed:
                replacement.process.terminate()
        for request in to_reject:
            request.future._reject(WorkerCrashed(
                f"worker {request.worker_id} died with this request in flight "
                f"(attempt {request.attempts}/{1 + self.config.max_retries})"))

    # -------------------------------------------------------------------- state
    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._started and self._accepting and not self._closed

    def in_flight(self) -> int:
        with self._lock:
            return len(self._requests)

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for handle in self._workers.values() if handle.alive)

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the pool (for ``GET /stats``)."""
        with self._lock:
            return {
                "workers": [handle.describe() for handle in self._workers.values()],
                "accepting": self._started and self._accepting and not self._closed,
                "in_flight": len(self._requests),
                "watermark": self.config.effective_watermark,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "retried": self.retried,
                "respawns": self.respawns,
                "rejected_saturated": self.rejected_saturated,
            }

    def __repr__(self) -> str:
        return (f"WorkerPool(workers={self.config.workers}, "
                f"alive={self.alive_workers()}, in_flight={self.in_flight()})")
