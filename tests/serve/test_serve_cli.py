"""The ``repro serve`` subcommand and the CLI hardening satellites."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.cli import main


class TestServeSelfTest:
    def test_serve_smoke_answers_bit_identical_over_http(self, capsys):
        # The acceptance check for the subsystem: a 2-worker CLI deployment
        # answers POST /predict with the same bits as Experiment.predictor().
        exit_code = main(["serve", "smoke", "--workers", "2", "--port", "0",
                          "--self-test", "4"])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "serving 'smoke' on http://127.0.0.1:" in out
        assert "bit-identical to Experiment.predictor()" in out
        row = next(line for line in out.splitlines()
                   if "bit-identical to Experiment.predictor()" in line)
        assert row.split("|")[-1].strip() == "yes"

    def test_serve_self_test_json_output(self, capsys):
        exit_code = main(["serve", "smoke", "--workers", "1", "--port", "0",
                          "--self-test", "2", "--json", "--cache-size", "8"])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        payload = json.loads(out[out.index("{"):])
        assert payload["bit_identical"] is True
        assert payload["cache_hit_identical"] is True
        assert payload["workers_alive"] == 1

    def test_serve_self_test_with_cache_disabled_skips_the_cache_check(self, capsys):
        exit_code = main(["serve", "smoke", "--workers", "1", "--port", "0",
                          "--self-test", "2", "--cache-size", "0"])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "skipped (cache disabled)" in out

    def test_serve_rejects_bad_flags_without_traceback(self, capsys):
        exit_code = main(["serve", "smoke", "--workers", "0", "--self-test", "1"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert err.startswith("error:") and "workers" in err

    def test_serve_rejects_zero_self_test_requests(self, capsys):
        exit_code = main(["serve", "smoke", "--self-test", "0"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert err.startswith("error:") and "at least 1 request" in err


class TestCLIHardening:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_malformed_spec_json_is_a_readable_error(self, tmp_path, capsys):
        bad = tmp_path / "bad_spec.json"
        bad.write_text('{"model": {"name": "vgg8",')        # truncated JSON
        exit_code = main(["run", str(bad)])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert err.startswith("error: could not parse spec file")
        assert "Traceback" not in err

    def test_structurally_wrong_spec_is_a_readable_error(self, tmp_path, capsys):
        bad = tmp_path / "wrong_spec.json"
        bad.write_text(json.dumps({"model": ["not", "a", "section"]}))
        exit_code = main(["run", str(bad)])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert err.startswith("error:") and "Traceback" not in err

    def test_serve_rejects_malformed_spec_too(self, tmp_path, capsys):
        bad = tmp_path / "bad_spec.json"
        bad.write_text("]]]")
        exit_code = main(["serve", str(bad), "--self-test", "1"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert err.startswith("error: could not parse spec file")
