"""Declarative configuration for the scale-out serving subsystem.

One :class:`ServeConfig` value describes everything about a deployment that
is *not* the model: how many worker processes to run, how deep their request
queues may grow, when the front door starts shedding load, and how the HTTP
endpoint binds.  Like the experiment specs, it is a plain dataclass that
round-trips through dicts so the CLI, :meth:`repro.experiment.Experiment.serve`
and the tests all configure the same machinery the same way.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

#: Start methods the pool accepts.  ``spawn`` is the default everywhere: it
#: never inherits the parent's threads (the parent may be running predictor
#: worker threads or HTTP handler threads, which make ``fork`` unsafe), at the
#: cost of re-importing the library in each worker (~0.5 s).
START_METHODS = ("spawn", "fork", "forkserver")

#: Tensor transports between the pool and its workers.  ``shm`` moves tensor
#: bytes through per-worker shared-memory rings (zero-copy on the consumer
#: side; pickle only for small control frames) and is the default; ``pipe``
#: pickles tensors through the queues and is kept as the bit-identical
#: reference path every shm behavior is tested against.
TRANSPORTS = ("shm", "pipe")


@dataclass
class ServeConfig:
    """Knobs of the worker pool and its HTTP front door.

    Parameters
    ----------
    workers : int
        Worker processes in the pool.  Each runs its own compiled model and
        micro-batching predictor, so throughput scales with cores.
    max_batch_size, max_wait :
        Forwarded to each worker's :class:`~repro.inference.BatchedPredictor`.
    queue_depth : int
        Bound of each worker's request queue.  A full queue is backpressure:
        the dispatcher refuses the request instead of buffering unboundedly.
    watermark : int
        Load-shedding threshold on requests in flight across the whole pool.
        Once reached, new submissions raise :class:`~repro.serve.PoolSaturated`
        (the HTTP layer answers ``503``).  ``0`` picks the default
        ``workers * queue_depth``.
    max_retries : int
        How many times a request orphaned by a worker crash is retried on a
        respawned/other worker before the error is surfaced to the caller.
    request_timeout, startup_timeout, drain_timeout : float
        Seconds to wait for (respectively) one prediction, all workers to
        report ready, and in-flight requests to finish during shutdown.
    start_method : str
        ``multiprocessing`` start method; see :data:`START_METHODS`.
    host, port :
        HTTP bind address.  ``port=0`` asks the OS for a free port (the bound
        port is available as ``ServingServer.port``).
    cache_size : int
        Entries in the front door's LRU response cache (``0`` disables it).
    backend : str
        Compute backend each worker compiles its model with (a
        :mod:`repro.backends` registry name: ``numpy``, ``threaded``,
        ``int8``).  The default is the reference engine; ``threaded`` makes
        each worker use every core, so pair it with a small ``workers``.
    transport : str
        How tensors reach the workers: ``shm`` (zero-copy shared-memory
        rings, the default) or ``pipe`` (pickled over the queues — the
        reference path; see :data:`TRANSPORTS`).
    latency_budget_ms : float
        Admission-control budget: reject a request (HTTP ``429`` with
        ``Retry-After``) when its estimated queue wait exceeds this many
        milliseconds.  ``0`` disables admission control.
    fused_batching : bool
        ``False`` (default) executes each request of a coalesced batch as
        its own batch-of-1 forward — bit-identical to
        ``Experiment.predictor(max_batch_size=1)`` under any load.  ``True``
        fuses the whole batch into one forward for maximum throughput, at
        the cost of BLAS float-associativity drift between batch sizes.
    shm_slots, shm_slot_bytes : int
        Geometry of each worker's shared-memory rings.  ``0`` (default)
        sizes them automatically: enough slots for the dispatch pipeline,
        slots big enough for one ``max_batch_size`` input batch.
    secure : bool
        Serve int64 fixed-point inference under hybrid-protocol semantics
        (:mod:`repro.ppml.runtime`) instead of the float path.  Workers
        host a :class:`~repro.ppml.SecurePredictor`, a warm-up traced
        forward sizes the offline triple pools, and every request debits
        them.  Incompatible with ``fused_batching``: secure serving answers
        per-sample client queries by protocol convention.
    protocol : str
        Hybrid protocol the secure trace is costed under (``delphi``,
        ``gazelle``, ``cryptonets``).  ``""`` (default) defers to the
        experiment spec's ``ppml.protocol``.
    frac_bits : int
        Fixed-point fractional bits of the secure runtime
        (1..\\ :data:`repro.ppml.fixedpoint.MAX_FRAC_BITS`).
    truncation : str
        Post-multiplication rescaling mode — one of
        :data:`repro.ppml.fixedpoint.TRUNCATION_MODES`.  ``nearest`` (the
        default) is deterministic, so served answers stay bit-identical to
        the single-process :meth:`~repro.experiment.Experiment.secure_predictor`.
    strategy : str
        PPML-friendly conversion applied before secure compilation
        (``square``, ``quadratic``, ``quadratic_no_relu``); ``""`` defers
        to the spec's ``ppml.strategy`` and ``none`` serves the model
        unconverted (ReLUs run as garbled comparisons).
    triple_pool_depth : int
        Target depth of each offline pool in *request quanta* (one quantum
        = all the Beaver triples and garbled labels one request consumes).
        ``0`` (default) auto-sizes to cover the dispatch pipeline at its
        maximum adaptive depth:
        ``workers * effective_max_pipeline_depth * max_batch_size``.
    pipeline_depth : int
        Batches in flight per worker.  ``0`` (default) lets each worker's
        :class:`~repro.serve.batching.PipelineController` adapt the depth
        within [:data:`~repro.serve.batching.MIN_PIPELINE_DEPTH`,
        :data:`~repro.serve.batching.MAX_PIPELINE_DEPTH`] from measured
        stage percentiles; a non-zero value pins it.
    producer_workers : int
        Offline-phase producer *processes* per triple pool (secure serving
        only).  ``0`` (default) keeps the in-process producer thread —
        fine until refill is CPU-bound on the GIL; ``N >= 1`` spawns N
        generator processes per pool.
    """

    workers: int = 2
    max_batch_size: int = 8
    max_wait: float = 0.002
    queue_depth: int = 32
    watermark: int = 0
    max_retries: int = 1
    request_timeout: float = 30.0
    startup_timeout: float = 60.0
    drain_timeout: float = 30.0
    start_method: str = "spawn"
    host: str = "127.0.0.1"
    port: int = 8100
    cache_size: int = 256
    backend: str = "numpy"
    transport: str = "shm"
    latency_budget_ms: float = 0.0
    fused_batching: bool = False
    shm_slots: int = 0
    shm_slot_bytes: int = 0
    secure: bool = False
    protocol: str = ""
    frac_bits: int = 12
    truncation: str = "nearest"
    strategy: str = ""
    triple_pool_depth: int = 0
    pipeline_depth: int = 0
    producer_workers: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        for name in ("request_timeout", "startup_timeout", "drain_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        if self.watermark < 0:
            raise ValueError(f"watermark must be >= 0 (0 = auto), got {self.watermark}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.start_method not in START_METHODS:
            raise ValueError(
                f"start_method must be one of {START_METHODS}, got '{self.start_method}'")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got '{self.transport}'")
        if self.latency_budget_ms < 0:
            raise ValueError(f"latency_budget_ms must be >= 0 (0 = disabled), "
                             f"got {self.latency_budget_ms}")
        for name in ("shm_slots", "shm_slot_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0 (0 = auto), "
                                 f"got {getattr(self, name)}")
        from ..backends import backend_names  # lazy: keep config import-light

        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend '{self.backend}'; registered backends: "
                f"{', '.join(backend_names())}")

        # Secure knobs mirror the PPML spec's validation so one ServeConfig
        # is the single source of truth for `repro serve --secure`.
        from ..ppml.fixedpoint import MAX_FRAC_BITS, TRUNCATION_MODES  # lazy
        from ..ppml.protocols import available_protocols  # lazy

        if not 1 <= self.frac_bits <= MAX_FRAC_BITS:
            raise ValueError(
                f"frac_bits must be in 1..{MAX_FRAC_BITS}, got {self.frac_bits}")
        if self.truncation not in TRUNCATION_MODES:
            raise ValueError(
                f"truncation must be one of {TRUNCATION_MODES}, got '{self.truncation}'")
        if self.protocol and self.protocol not in available_protocols():
            raise ValueError(
                f"unknown protocol '{self.protocol}'; available: "
                f"{', '.join(available_protocols())}")
        valid_strategies = ("", "none", "square", "quadratic", "quadratic_no_relu")
        if self.strategy not in valid_strategies:
            raise ValueError(
                f"strategy must be one of {valid_strategies[1:]} (or '' = spec "
                f"default), got '{self.strategy}'")
        if self.triple_pool_depth < 0:
            raise ValueError(f"triple_pool_depth must be >= 0 (0 = auto), "
                             f"got {self.triple_pool_depth}")
        from .batching import MAX_PIPELINE_DEPTH, MIN_PIPELINE_DEPTH  # lazy

        if self.pipeline_depth and not (
                MIN_PIPELINE_DEPTH <= self.pipeline_depth <= MAX_PIPELINE_DEPTH):
            raise ValueError(
                f"pipeline_depth must be 0 (adaptive) or in "
                f"{MIN_PIPELINE_DEPTH}..{MAX_PIPELINE_DEPTH}, "
                f"got {self.pipeline_depth}")
        if self.pipeline_depth < 0:
            raise ValueError(f"pipeline_depth must be >= 0 (0 = adaptive), "
                             f"got {self.pipeline_depth}")
        if self.producer_workers < 0:
            raise ValueError(f"producer_workers must be >= 0 (0 = thread), "
                             f"got {self.producer_workers}")
        if self.secure and self.fused_batching:
            raise ValueError(
                "secure serving is incompatible with fused_batching: PPML "
                "protocols answer per-sample client queries (which is also the "
                "trace accounting convention)")

    @property
    def effective_watermark(self) -> int:
        """The in-flight ceiling actually enforced (resolves ``watermark=0``)."""
        return self.watermark if self.watermark > 0 else self.workers * self.queue_depth

    @property
    def effective_max_pipeline_depth(self) -> int:
        """The deepest per-worker pipeline this deployment can reach — the
        pinned ``pipeline_depth`` when set, else the adaptive ceiling.  Ring
        and triple-pool sizing must cover this, not the default depth."""
        if self.pipeline_depth > 0:
            return self.pipeline_depth
        from .batching import MAX_PIPELINE_DEPTH  # lazy: avoid an import cycle

        return MAX_PIPELINE_DEPTH

    @property
    def effective_triple_pool_depth(self) -> int:
        """The offline pool depth actually targeted (resolves ``0`` = auto to
        one request quantum per slot of the dispatch pipeline at its maximum
        reachable depth)."""
        if self.triple_pool_depth > 0:
            return self.triple_pool_depth
        return self.workers * self.effective_max_pipeline_depth * self.max_batch_size

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown ServeConfig field(s) {unknown}; valid: {sorted(known)}")
        return cls(**data)

    def with_(self, **changes: Any) -> "ServeConfig":
        return dataclasses.replace(self, **changes)
