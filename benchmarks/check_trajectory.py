"""CI gate: compare the latest benchmark run against its own trajectory.

The quick-mode benches append one headline record per run to
``results/trajectory.jsonl``.  This script re-reads that history and, for
each benchmark it knows about, checks the *most recent* record against the
records that preceded it using :func:`common.check_against_trajectory` —
the same trajectory-relative bands the benches apply inline, but runnable
as a standalone CI step after all benches have finished (so one workflow
step owns the regression verdict and the uploaded artifact always matches
what was gated).

Tolerance bands come from the history's own dispersion
(``max(rel_floor x |median|, mad_k x MAD)``), checks are one-sided in the
benchmark's declared "better" direction, and fewer than
``MIN_TRAJECTORY_HISTORY`` comparable records is a pass with a note —
fresh checkouts, where ``benchmarks/results/`` starts empty, can never
fail this gate.

Exit status: 0 on pass (including insufficient history), 1 on any
trajectory-relative regression.
"""

from __future__ import annotations

import sys

from common import (check_against_trajectory, format_trajectory_findings,
                    load_trajectory)

#: Per-benchmark headline fields and which direction is *better*.  A
#: benchmark absent from this registry is reported but never gated; a field
#: absent from a record yields a ``missing`` finding (also never a failure,
#: so the registry can grow ahead of the benches).
DIRECTIONS = {
    "serving_scaleout": {
        "baseline_samples_per_s": "higher",
        "best_pool_samples_per_s": "higher",
        "best_vs_baseline": "higher",
        "open_loop_p99_ms": "lower",
        "heap_bytes_per_batch": "lower",
        "tensor_sized_allocations": "lower",
    },
    "secure_serving": {
        "online_ratio": "higher",
        "baseline_qps": "higher",
        "converted_qps": "higher",
        "converted_online_ms": "lower",
    },
}


def check_benchmark(name: str, directions: dict) -> list:
    """Findings for one benchmark's latest record vs. its prior history."""
    history = load_trajectory(name)
    if not history:
        print(f"trajectory check [{name}]: no records — skipped")
        return []
    latest, prior = history[-1], history[:-1]
    findings = check_against_trajectory(name, latest, directions, history=prior)
    print(format_trajectory_findings(name, findings))
    return findings


def main() -> int:
    regressions = []
    for name, directions in sorted(DIRECTIONS.items()):
        regressions.extend(f for f in check_benchmark(name, directions)
                           if f["status"] == "regression")
    if regressions:
        print(f"\nFAIL: {len(regressions)} trajectory-relative regression(s):")
        for f in regressions:
            print(f"  {f['field']} = {f['value']:.4g} vs history median "
                  f"{f['median']:.4g} ± {f['tolerance']:.4g} "
                  f"over {f['history']} runs")
        return 1
    print("\ntrajectory gate: PASS (no regression against history)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
