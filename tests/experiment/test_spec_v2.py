"""Spec schema v2: engine fields on TrainSpec, backward-compatible loading."""

from __future__ import annotations

import pytest

from repro.experiment import SPEC_VERSION, ExperimentSpec, TrainSpec


class TestEngineFields:
    def test_round_trip_preserves_engine_fields(self):
        spec = ExperimentSpec(
            train=TrainSpec(epochs=3, checkpoint_dir="ckpts", checkpoint_every=2,
                            resume_from="ckpts/latest.npz", stop_after_epoch=2,
                            prefetch=True, prefetch_depth=4))
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.train.checkpoint_dir == "ckpts"
        assert restored.train.checkpoint_every == 2
        assert restored.train.resume_from == "ckpts/latest.npz"
        assert restored.train.stop_after_epoch == 2
        assert restored.train.prefetch is True
        assert restored.train.prefetch_depth == 4

    def test_current_version_is_2(self):
        assert SPEC_VERSION == 2
        assert ExperimentSpec().to_dict()["version"] == 2

    def test_v1_spec_dict_still_loads(self):
        """A file written before the engine fields existed loads with defaults."""
        v1 = {
            "name": "old-run",
            "version": 1,
            "seed": 3,
            "model": {"name": "vgg8", "neuron_type": "OURS"},
            "train": {"trainer": "classifier", "epochs": 2, "batch_size": 16},
            "steps": ["build", "fit"],
        }
        spec = ExperimentSpec.from_dict(v1)
        spec.validate()
        assert spec.version == 1
        assert spec.train.checkpoint_dir is None
        assert spec.train.resume_from is None
        assert spec.train.stop_after_epoch is None
        assert spec.train.prefetch is False
        assert spec.train.checkpoint_every == 1

    @pytest.mark.parametrize("field,value,match", [
        ("checkpoint_every", 0, "checkpoint_every"),
        ("stop_after_epoch", 0, "stop_after_epoch"),
        ("prefetch_depth", 0, "prefetch_depth"),
    ])
    def test_engine_field_validation(self, field, value, match):
        spec = ExperimentSpec(train=TrainSpec(**{field: value}))
        with pytest.raises(ValueError, match=match):
            spec.validate()


class TestLegacyTrainerSignature:
    def test_old_style_registered_trainer_still_works(self):
        """Experiment.fit withholds the engine extras from trainers that were
        registered against the PR 1 contract (no callbacks/experiment_spec)."""
        from repro.experiment import TRAINERS, Experiment
        from repro.training.classification import TrainingHistory

        name = "legacy-signature-trainer"
        seen = {}

        def old_style(model, train_set, test_set, spec, optimizer_factory=None):
            seen["called"] = True
            return TrainingHistory(train_loss=[1.0])

        TRAINERS.register(name, old_style)
        try:
            spec = ExperimentSpec(train=TrainSpec(trainer=name, epochs=1))
            history = Experiment(spec).fit()
            assert seen["called"] and history.train_loss == [1.0]
        finally:
            TRAINERS._entries.pop(name.lower(), None)
            TRAINERS._display.pop(name.lower(), None)


class TestHistoryCompat:
    def test_training_history_tolerates_missing_and_none_fields(self):
        from repro.training.classification import TrainingHistory

        restored = TrainingHistory.from_dict({"train_loss": [1.0], "test_accuracy": None})
        assert restored.train_loss == [1.0]
        assert restored.test_accuracy == []
        assert TrainingHistory.from_dict(None).train_loss == []
        assert TrainingHistory.from_dict({}).gradient_norms == {}

    def test_training_history_ignores_unknown_keys(self):
        from repro.training.classification import TrainingHistory

        restored = TrainingHistory.from_dict({"train_loss": [0.5],
                                              "a_future_field": [1, 2, 3]})
        assert restored.train_loss == [0.5]

    def test_gan_history_round_trips_and_tolerates_gaps(self):
        from repro.training.gan import GANTrainingHistory

        history = GANTrainingHistory(generator_loss=[0.1], discriminator_loss=[0.2])
        restored = GANTrainingHistory.from_dict(history.to_dict())
        assert restored.generator_loss == [0.1]
        assert restored.discriminator_loss == [0.2]
        assert GANTrainingHistory.from_dict({"generator_loss": None}).generator_loss == []
        assert GANTrainingHistory.from_dict(None).discriminator_loss == []

    def test_detection_history_round_trips_and_tolerates_gaps(self):
        from repro.training.detection import DetectionTrainingHistory

        history = DetectionTrainingHistory(loss=[2.0, 1.0])
        restored = DetectionTrainingHistory.from_dict(history.to_dict())
        assert restored.loss == [2.0, 1.0]
        assert DetectionTrainingHistory.from_dict({}).loss == []
        import math

        assert math.isnan(DetectionTrainingHistory.from_dict(None).final_loss)
