"""Typed callback/hook system of the unified training engine.

A :class:`Callback` observes (and may steer) a :class:`~repro.engine.Trainer`
run through a fixed set of hooks:

========================  ====================================================
hook                      fired
========================  ====================================================
``on_train_begin``        once, before the first epoch (or the resumed epoch)
``on_epoch_begin``        before each epoch's batch loop
``on_batch_begin``        before each training step
``on_batch_end``          after each training step, with the step metrics
``on_eval``               after the adapter's epoch-end work (evaluation,
                          history bookkeeping), with the epoch metrics
``on_epoch_end``          after ``on_eval`` — checkpointing hangs off this
``on_checkpoint``         after a checkpoint file has been written
``on_train_end``          once, after the loop exits (even on divergence)
========================  ====================================================

Callbacks may set ``trainer.should_stop = True`` from any hook to end the run
gracefully after the current epoch (:class:`EarlyStopping` does exactly
that).  The built-in callbacks are registered by name in the ``CALLBACKS``
registry (``repro list callbacks``).
"""

from __future__ import annotations

import os
import shutil
from typing import Any, Callable, Dict, Optional


class Callback:
    """Base class: override any subset of the hooks (all default to no-ops).

    Stateful callbacks (e.g. :class:`EarlyStopping`'s best/patience counters)
    should also override :meth:`state_dict` / :meth:`load_state_dict` so
    checkpoints capture them — the trainer saves callback state positionally
    and restores it on resume, keeping resumed runs bit-identical even when a
    callback influences when training stops.
    """

    def state_dict(self) -> Dict[str, Any]:
        """Serializable state a checkpoint should capture (default: none)."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` (default: no-op)."""

    def on_train_begin(self, trainer) -> None:
        pass

    def on_train_end(self, trainer, history) -> None:
        pass

    def on_epoch_begin(self, trainer, epoch: int) -> None:
        pass

    def on_epoch_end(self, trainer, epoch: int, metrics: Dict[str, Any]) -> None:
        pass

    def on_batch_begin(self, trainer, epoch: int, batch_index: int) -> None:
        pass

    def on_batch_end(self, trainer, epoch: int, batch_index: int,
                     metrics: Dict[str, Any]) -> None:
        pass

    def on_eval(self, trainer, epoch: int, metrics: Dict[str, Any]) -> None:
        pass

    def on_checkpoint(self, trainer, epoch: int, path: str) -> None:
        pass


class CallbackList(Callback):
    """Dispatch every hook to a list of callbacks, in order."""

    def __init__(self, callbacks=()) -> None:
        self.callbacks = [_coerce_callback(cb) for cb in callbacks]

    def append(self, callback: Callback) -> None:
        self.callbacks.append(_coerce_callback(callback))

    def __iter__(self):
        return iter(self.callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    def on_train_begin(self, trainer) -> None:
        for cb in self.callbacks:
            cb.on_train_begin(trainer)

    def on_train_end(self, trainer, history) -> None:
        for cb in self.callbacks:
            cb.on_train_end(trainer, history)

    def on_epoch_begin(self, trainer, epoch: int) -> None:
        for cb in self.callbacks:
            cb.on_epoch_begin(trainer, epoch)

    def on_epoch_end(self, trainer, epoch: int, metrics: Dict[str, Any]) -> None:
        for cb in self.callbacks:
            cb.on_epoch_end(trainer, epoch, metrics)

    def on_batch_begin(self, trainer, epoch: int, batch_index: int) -> None:
        for cb in self.callbacks:
            cb.on_batch_begin(trainer, epoch, batch_index)

    def on_batch_end(self, trainer, epoch: int, batch_index: int,
                     metrics: Dict[str, Any]) -> None:
        for cb in self.callbacks:
            cb.on_batch_end(trainer, epoch, batch_index, metrics)

    def on_eval(self, trainer, epoch: int, metrics: Dict[str, Any]) -> None:
        for cb in self.callbacks:
            cb.on_eval(trainer, epoch, metrics)

    def on_checkpoint(self, trainer, epoch: int, path: str) -> None:
        for cb in self.callbacks:
            cb.on_checkpoint(trainer, epoch, path)


def _coerce_callback(candidate) -> Callback:
    if isinstance(candidate, Callback):
        return candidate
    raise TypeError(
        f"callbacks must be repro.engine.Callback instances, got "
        f"{type(candidate).__name__}")


class LambdaCallback(Callback):
    """Build a callback from plain functions (quick experiments, tests).

    >>> cb = LambdaCallback(on_epoch_end=lambda trainer, epoch, metrics: print(epoch))
    """

    def __init__(self, **hooks: Callable) -> None:
        valid = {name for name in dir(Callback) if name.startswith("on_")}
        unknown = sorted(set(hooks) - valid)
        if unknown:
            raise ValueError(f"unknown callback hook(s) {unknown}; valid: {sorted(valid)}")
        for name, fn in hooks.items():
            setattr(self, name, fn)


class ProgressCallback(Callback):
    """Print one line of metrics per epoch (the engine's training log)."""

    def __init__(self, printer: Callable[[str], None] = print) -> None:
        self.printer = printer

    def on_epoch_end(self, trainer, epoch: int, metrics: Dict[str, Any]) -> None:
        rendered = "  ".join(
            f"{key}={value:.4f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in metrics.items())
        self.printer(f"epoch {epoch + 1}/{trainer.adapter.num_epochs}  {rendered}")


class EarlyStopping(Callback):
    """Stop training when a monitored epoch metric stops improving.

    Parameters
    ----------
    monitor : str
        Key in the epoch metrics dict (e.g. ``"test_accuracy"``,
        ``"train_loss"``).  Epochs that do not report the key are ignored.
    mode : str
        ``"max"`` (higher is better) or ``"min"``.
    patience : int
        Epochs without improvement tolerated before requesting a stop.
    min_delta : float
        Smallest change that counts as an improvement.
    """

    def __init__(self, monitor: str = "test_accuracy", mode: str = "max",
                 patience: int = 3, min_delta: float = 0.0) -> None:
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        if patience < 1:
            raise ValueError(f"patience must be at least 1, got {patience}")
        self.monitor = monitor
        self.mode = mode
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self.stale = 0

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "max":
            return value > self.best + self.min_delta
        return value < self.best - self.min_delta

    def state_dict(self) -> Dict[str, Any]:
        return {"best": self.best, "stale": self.stale}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        best = state.get("best")
        self.best = None if best is None else float(best)
        self.stale = int(state.get("stale", 0))

    def on_epoch_end(self, trainer, epoch: int, metrics: Dict[str, Any]) -> None:
        value = metrics.get(self.monitor)
        if value is None:
            return
        value = float(value)
        if self._improved(value):
            self.best = value
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self.patience:
                trainer.should_stop = True


class CheckpointCallback(Callback):
    """Write a full training checkpoint every ``every`` completed epochs.

    Files are named ``epoch_<k>.npz`` (``k`` = completed epochs) inside
    ``directory``; the newest checkpoint is also mirrored atomically to
    ``latest.npz`` so resume commands never have to guess a filename.  With
    ``keep`` set, older ``epoch_*.npz`` files beyond the newest ``keep`` are
    pruned.
    """

    LATEST = "latest.npz"

    def __init__(self, directory: str, every: int = 1,
                 keep: Optional[int] = None) -> None:
        if every < 1:
            raise ValueError(f"checkpoint interval must be at least 1, got {every}")
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be at least 1 (or None), got {keep}")
        self.directory = directory
        self.every = int(every)
        self.keep = keep

    def on_epoch_end(self, trainer, epoch: int, metrics: Dict[str, Any]) -> None:
        completed = epoch + 1
        last_epoch = completed >= trainer.adapter.num_epochs
        if completed % self.every and not last_epoch:
            return
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"epoch_{completed:03d}.npz")
        trainer.save_checkpoint(path)
        # Mirror to latest.npz atomically (copy to temp, then rename over).
        latest = os.path.join(self.directory, self.LATEST)
        tmp = latest + ".tmp"
        shutil.copyfile(path, tmp)
        os.replace(tmp, latest)
        if self.keep is not None:
            self._prune()

    def _prune(self) -> None:
        def epoch_of(name: str) -> Optional[int]:
            try:
                return int(name[len("epoch_"):-len(".npz")])
            except ValueError:
                return None

        # Sort numerically: past epoch 999 the zero-padding stops aligning
        # with lexicographic order (``epoch_1000`` < ``epoch_101``).
        epochs = sorted(
            (epoch, name) for name in os.listdir(self.directory)
            if name.startswith("epoch_") and name.endswith(".npz")
            and (epoch := epoch_of(name)) is not None)
        for _, name in epochs[:-self.keep]:
            os.remove(os.path.join(self.directory, name))
