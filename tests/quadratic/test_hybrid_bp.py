"""Tests of the hybrid back-propagation layers: correctness and memory savings."""

import numpy as np
import pytest

from repro.autodiff import Tensor, randn
from repro.profiler import MemoryTracker
from repro.quadratic import (
    HybridQuadraticConv2d,
    HybridQuadraticLinear,
    QuadraticConv2d,
    QuadraticLinear,
)


def _copy_weights(source, target, names=("weight_a", "weight_b", "weight_c", "bias")):
    for name in names:
        src = getattr(source, name, None)
        dst = getattr(target, name, None)
        if src is not None and dst is not None:
            dst.data[...] = src.data


class TestHybridConvCorrectness:
    def _pair(self, in_c=3, out_c=5, **kwargs):
        composed = QuadraticConv2d(in_c, out_c, kernel_size=3, padding=1,
                                   neuron_type="OURS", **kwargs)
        hybrid = HybridQuadraticConv2d(in_c, out_c, kernel_size=3, padding=1, **kwargs)
        _copy_weights(composed, hybrid)
        return composed, hybrid

    def test_forward_identical(self):
        composed, hybrid = self._pair()
        x = randn(2, 3, 8, 8)
        assert np.allclose(composed(x).data, hybrid(x).data, atol=1e-5)

    def test_input_gradients_identical(self):
        composed, hybrid = self._pair()
        x1 = randn(2, 3, 7, 7, requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        composed(x1).sum().backward()
        hybrid(x2).sum().backward()
        assert np.allclose(x1.grad, x2.grad, atol=1e-4)

    def test_weight_gradients_identical(self):
        composed, hybrid = self._pair()
        x = randn(2, 3, 7, 7)
        composed(Tensor(x.data)).sum().backward()
        hybrid(Tensor(x.data)).sum().backward()
        for name in ("weight_a", "weight_b", "weight_c", "bias"):
            assert np.allclose(getattr(composed, name).grad, getattr(hybrid, name).grad,
                               atol=1e-4), name

    def test_non_unit_upstream_gradient(self):
        composed, hybrid = self._pair()
        x = randn(1, 3, 6, 6)
        upstream = np.random.default_rng(0).normal(size=(1, 5, 6, 6)).astype(np.float32)
        composed(Tensor(x.data)).backward(upstream)
        hybrid(Tensor(x.data)).backward(upstream)
        assert np.allclose(composed.weight_a.grad, hybrid.weight_a.grad, atol=1e-4)

    def test_strided_and_grouped(self):
        composed = QuadraticConv2d(4, 8, kernel_size=3, stride=2, padding=1, groups=2,
                                   neuron_type="OURS")
        hybrid = HybridQuadraticConv2d(4, 8, kernel_size=3, stride=2, padding=1, groups=2)
        _copy_weights(composed, hybrid)
        x = randn(2, 4, 8, 8)
        assert np.allclose(composed(x).data, hybrid(x).data, atol=1e-5)

    def test_numeric_weight_gradient(self, numgrad):
        hybrid = HybridQuadraticConv2d(2, 3, kernel_size=3, padding=1, bias=False)
        x = randn(1, 2, 5, 5)

        def run():
            return float(hybrid(Tensor(x.data)).sum().data)

        hybrid(Tensor(x.data)).sum().backward()
        expected = numgrad(run, hybrid.weight_b.data)
        assert np.allclose(hybrid.weight_b.grad, expected, atol=5e-2)

    def test_no_bias_variant(self):
        hybrid = HybridQuadraticConv2d(3, 4, kernel_size=3, padding=1, bias=False)
        assert hybrid.bias is None
        out = hybrid(randn(1, 3, 6, 6))
        out.sum().backward()
        assert hybrid.weight_a.grad is not None


class TestHybridLinearCorrectness:
    def _pair(self, in_f=10, out_f=6):
        composed = QuadraticLinear(in_f, out_f, neuron_type="OURS")
        hybrid = HybridQuadraticLinear(in_f, out_f)
        _copy_weights(composed, hybrid)
        return composed, hybrid

    def test_forward_identical(self):
        composed, hybrid = self._pair()
        x = randn(4, 10)
        assert np.allclose(composed(x).data, hybrid(x).data, atol=1e-5)

    def test_gradients_identical(self):
        composed, hybrid = self._pair()
        x1 = randn(4, 10, requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        composed(x1).sum().backward()
        hybrid(x2).sum().backward()
        assert np.allclose(x1.grad, x2.grad, atol=1e-4)
        for name in ("weight_a", "weight_b", "weight_c", "bias"):
            assert np.allclose(getattr(composed, name).grad, getattr(hybrid, name).grad,
                               atol=1e-4), name


class TestHybridMemorySavings:
    """The whole point of hybrid BP (paper Fig. 8): fewer cached intermediates."""

    def test_conv_saves_intermediate_memory(self):
        composed = QuadraticConv2d(8, 16, kernel_size=3, padding=1, neuron_type="OURS")
        hybrid = HybridQuadraticConv2d(8, 16, kernel_size=3, padding=1)
        _copy_weights(composed, hybrid)
        x = randn(4, 8, 16, 16, requires_grad=True)

        with MemoryTracker() as tracker_composed:
            composed(x).sum().backward()
        x.grad = None
        with MemoryTracker() as tracker_hybrid:
            hybrid(x).sum().backward()

        assert tracker_hybrid.peak_bytes < tracker_composed.peak_bytes
        # The Hadamard product alone caches two (N, F, H, W) responses.
        saved = tracker_composed.peak_bytes - tracker_hybrid.peak_bytes
        response_bytes = 4 * 16 * 16 * 16 * 4
        assert saved >= response_bytes

    def test_saving_fraction_in_plausible_range(self):
        # The paper reports ~26.7% on its ConvNet; exact numbers differ on the
        # substrate but the saving should be substantial (10–80%).
        composed = QuadraticConv2d(4, 8, kernel_size=3, padding=1, neuron_type="OURS")
        hybrid = HybridQuadraticConv2d(4, 8, kernel_size=3, padding=1)
        _copy_weights(composed, hybrid)
        x = randn(2, 4, 12, 12)
        with MemoryTracker() as t_composed:
            composed(Tensor(x.data, requires_grad=True)).sum().backward()
        with MemoryTracker() as t_hybrid:
            hybrid(Tensor(x.data, requires_grad=True)).sum().backward()
        saving = 1 - t_hybrid.peak_bytes / t_composed.peak_bytes
        assert 0.1 < saving < 0.9

    def test_memory_released_after_backward(self):
        hybrid = HybridQuadraticConv2d(3, 6, kernel_size=3, padding=1)
        with MemoryTracker() as tracker:
            hybrid(randn(2, 3, 8, 8, requires_grad=True)).sum().backward()
        assert tracker.current_bytes == 0
        assert tracker.peak_bytes > 0

    def test_training_step_updates_weights(self):
        from repro.optim import SGD

        hybrid = HybridQuadraticConv2d(3, 4, kernel_size=3, padding=1)
        opt = SGD(hybrid.parameters(), lr=0.01)
        before = hybrid.weight_a.data.copy()
        out = hybrid(randn(2, 3, 8, 8))
        out.sum().backward()
        opt.step()
        assert not np.allclose(before, hybrid.weight_a.data)
