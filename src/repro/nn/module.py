"""The :class:`Module` base class — the substrate equivalent of ``nn.Module``.

QuadraLib's central implementation-feasibility argument (paper P4/P5) is that
quadratic layers should be *ordinary modules*: they must register parameters,
compose in ``Sequential`` containers, serialise through ``state_dict`` and be
interchangeable with first-order layers inside any construction function.
Everything in ``repro.quadratic.layers`` and ``repro.models`` builds on this
class.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autodiff.tensor import Tensor
from .parameter import Parameter


class Module:
    """Base class for all neural-network modules.

    Subclasses implement :meth:`forward`; parameters, buffers and child
    modules assigned as attributes are registered automatically.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------ registration
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        else:
            # Plain attribute; make sure stale registrations are cleared.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BatchNorm statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under an explicit name."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def register_forward_hook(self, hook: Callable[["Module", Tuple, Any], None]) -> Callable[[], None]:
        """Attach ``hook(module, inputs, output)`` to run after every forward.

        Returns a zero-argument callable that removes the hook — the analysis
        tools (activation attention, memory profiler) use this to observe
        intermediate activations without modifying the model.
        """
        self._forward_hooks.append(hook)

        def remove() -> None:
            try:
                self._forward_hooks.remove(hook)
            except ValueError:
                pass

        return remove

    # ----------------------------------------------------------------- forward
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        if self._forward_hooks:
            for hook in list(self._forward_hooks):
                hook(self, args, out)
        return out

    # --------------------------------------------------------------- traversal
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        yield from self._modules.items()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        """Apply ``fn`` to every module in the tree (post-order like PyTorch)."""
        for child in self.children():
            child.apply(fn)
        fn(self)
        return self

    # ------------------------------------------------------------------- modes
    def train(self, mode: bool = True) -> "Module":
        """Switch the whole tree between training and evaluation behaviour."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.grad = None

    def requires_grad_(self, requires_grad: bool = True) -> "Module":
        """Freeze or unfreeze every parameter (used by the detection trainer)."""
        for p in self.parameters():
            p.requires_grad = requires_grad
        return self

    # ----------------------------------------------------------- serialisation
    def state_dict(self, prefix: str = "") -> "OrderedDict[str, np.ndarray]":
        """Flat name→array mapping of all parameters and buffers."""
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters(prefix):
            state[name] = param.data.copy()
        for name, buf in self.named_buffers(prefix):
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> List[str]:
        """Load a ``state_dict``; returns the list of missing keys.

        With ``strict=False`` keys that are absent from either side are
        ignored — this is how the detector copies a pre-trained classification
        backbone whose head does not match (paper Sec. 5.4).
        """
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing: List[str] = []
        for name, param in own_params.items():
            if name in state:
                value = np.asarray(state[name], dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    if strict:
                        raise ValueError(
                            f"shape mismatch for '{name}': expected {param.data.shape}, "
                            f"got {value.shape}"
                        )
                    missing.append(name)
                    continue
                param.data[...] = value
            else:
                missing.append(name)
        # Buffers are re-registered on the owning module so identity is kept.
        for name, _ in own_buffers.items():
            if name in state:
                self._assign_buffer(name, np.asarray(state[name]))
            else:
                missing.append(name)
        unexpected = [k for k in state if k not in own_params and k not in own_buffers]
        if strict and (missing or unexpected):
            raise ValueError(
                f"load_state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        return missing

    def _assign_buffer(self, dotted_name: str, value: np.ndarray) -> None:
        parts = dotted_name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        module._buffers[parts[-1]] = value
        object.__setattr__(module, parts[-1], value)

    # -------------------------------------------------------------------- info
    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of scalar parameters (the '#Param' column of Table 3)."""
        return sum(
            p.size for p in self.parameters() if p.requires_grad or not trainable_only
        )

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        if len(lines) == 1:
            return lines[0] + ")"
        lines.append(")")
        return "\n".join(lines)
