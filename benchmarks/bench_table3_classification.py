"""Table 3 — image classification: accuracy / parameters / time / memory on CIFAR.

For each backbone family (VGG-16, ResNet-32, MobileNetV1) the paper compares:

* the first-order baseline,
* Fan et al. 2018 (T2&4 design) on the reduced structure,
* Bu & Karpatne 2021 (T4 design) on the reduced structure,
* "QuadraNN (no auto-builder)" — the full-depth structure naively converted, and
* "QuadraNN" — the auto-built (reduced-depth) model with the paper's neuron,

reporting #layers, #parameters, training time/batch, training memory, test
time/batch and accuracy.  The scaled reproduction reports the same columns on
the synthetic CIFAR-10 stand-in; the claims checked are the relative ones the
paper emphasises (naive conversion blows up cost ~3-4×; the auto-built
QuadraNN is competitive with the baseline's accuracy at similar cost).
"""

import numpy as np
import pytest

from common import (
    BATCH_SIZE,
    IMAGE_SIZE,
    MAX_BATCHES,
    NUM_CLASSES,
    WIDTH,
    classification_data,
    fresh_seed,
    mb,
    save_experiment,
)
from repro.builder import MOBILENET_CFGS, QuadraticModelConfig, reduce_mobilenet_cfg
from repro.models import MobileNetV1, ResNet, vgg_from_cfg
from repro.profiler import estimate_training_memory, profile_latency
from repro.training import train_classifier
from repro.utils import print_table

EPOCHS = 2

# Scaled structure configurations: (full-depth cfg, reduced cfg) per family.
VGG_FULL = [16, 16, "M", 32, 32, "M", 64, 64, 64, "M"]
VGG_REDUCED = [16, "M", 32, "M", 64, 64, "M"]
RESNET_FULL = [3, 3, 3]
RESNET_REDUCED = [1, 1, 1]
MOBILE_FULL = MOBILENET_CFGS["MOBILENET13"][:8]
MOBILE_REDUCED = reduce_mobilenet_cfg(MOBILE_FULL, 5)


def _variants(family):
    """(variant name, neuron type, use reduced structure) per Table 3 row."""
    return [
        ("First-order", "first_order", False),
        ("Fan et al. (T2&4)", "T2_4", True),
        ("Bu & Karpatne (T4)", "T4", True),
        ("QuadraNN (no auto-builder)", "OURS", False),
        ("QuadraNN", "OURS", True),
    ]


def _build(family, neuron_type, reduced):
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=WIDTH)
    if family == "VGG-16":
        cfg = VGG_REDUCED if reduced else VGG_FULL
        model = vgg_from_cfg(cfg, num_classes=NUM_CLASSES, config=config)
        depth = sum(1 for c in cfg if c != "M")
        return model, f"{depth} CL"
    if family == "ResNet-32":
        blocks = RESNET_REDUCED if reduced else RESNET_FULL
        return ResNet(blocks, num_classes=NUM_CLASSES, config=config), f"BS:{blocks}"
    cfg = MOBILE_REDUCED if reduced else MOBILE_FULL
    return MobileNetV1(cfg, num_classes=NUM_CLASSES, config=config), f"{len(cfg)} DW"


FAMILIES = ["VGG-16", "ResNet-32", "MobileNetV1"]


@pytest.mark.parametrize("family", FAMILIES)
def test_table3_classification(family, benchmark):
    # Seed from the family's position (not hash()) so the run is reproducible
    # regardless of PYTHONHASHSEED.
    fresh_seed(30 + FAMILIES.index(family))
    train_set, test_set = classification_data()

    rows = []
    results = {}
    for index, (variant, neuron_type, reduced) in enumerate(_variants(family)):
        fresh_seed(300 + index)
        model, structure = _build(family, neuron_type, reduced)
        params = model.num_parameters()
        latency = profile_latency(model, (3, IMAGE_SIZE, IMAGE_SIZE), batch_size=BATCH_SIZE,
                                  num_classes=NUM_CLASSES, warmup=0, iterations=1)
        memory = estimate_training_memory(model, (3, IMAGE_SIZE, IMAGE_SIZE),
                                          num_classes=NUM_CLASSES)
        history = train_classifier(model, train_set, test_set, epochs=EPOCHS,
                                   batch_size=BATCH_SIZE, lr=0.05,
                                   max_batches_per_epoch=MAX_BATCHES, seed=9)
        rows.append([
            variant, structure, params,
            round(latency.train_ms_per_batch, 1),
            round(mb(memory.total_bytes(BATCH_SIZE)), 1),
            round(latency.inference_ms_per_batch, 1),
            round(history.best_test_accuracy, 3),
        ])
        results[variant] = {
            "structure": structure,
            "parameters": params,
            "train_ms_per_batch": latency.train_ms_per_batch,
            "train_memory_mib": mb(memory.total_bytes(BATCH_SIZE)),
            "test_ms_per_batch": latency.inference_ms_per_batch,
            "test_accuracy": history.best_test_accuracy,
            "train_accuracy": history.final_train_accuracy,
        }

    print()
    print_table(
        ["Model", "#Layer/#Block", "#Param", "Train ms/batch", "Train mem (MiB)",
         "Test ms/batch", f"Accuracy (synthetic CIFAR-{NUM_CLASSES})"],
        rows, title=f"Table 3 (reproduced, scaled): {family}",
    )
    save_experiment(f"table3_{family.lower().replace('-', '')}", results)

    naive = results["QuadraNN (no auto-builder)"]
    quadra = results["QuadraNN"]
    baseline = results["First-order"]
    # Naive conversion inflates parameters and cost versus the auto-built model
    # (the paper's ~3-4x parameter saving from the auto-builder).  At the scaled
    # widths the measured ratio is ~1.8x for the VGG family (whose classifier
    # head stays first-order) and >2x for ResNet/MobileNet.
    assert naive["parameters"] > 1.7 * quadra["parameters"]
    assert naive["train_memory_mib"] > quadra["train_memory_mib"]
    # The auto-built QuadraNN stays in the baseline's cost ballpark.
    assert quadra["parameters"] < 4.0 * baseline["parameters"]
    # And its accuracy is not degenerate (above chance).
    assert quadra["test_accuracy"] > 1.0 / NUM_CLASSES

    # Timed kernel: one QuadraNN training step.
    model, _ = _build(family, "OURS", True)
    from repro.autodiff import Tensor
    from repro.nn.losses import CrossEntropyLoss

    images = np.stack([train_set[i][0] for i in range(8)])
    labels = np.array([train_set[i][1] for i in range(8)])
    loss_fn = CrossEntropyLoss()

    def step():
        model.zero_grad()
        loss = loss_fn(model(Tensor(images)), labels)
        loss.backward()
        return loss.item()

    benchmark(step)
