"""Compute-backend benchmark: the engine sweep behind ``compile_model``.

Runs the same compiled model through every registered :mod:`repro.backends`
engine and reports throughput plus numerical agreement against the
reference engine:

1. ``numpy`` — the reference bits (and the throughput denominator),
2. ``threaded`` — must be **bit-identical** to ``numpy`` at any thread
   count (that assertion always runs, even on a 1-core box where the
   threads cannot help), and must reach ``MIN_SPEEDUP`` over the reference
   when the host has parallelism headroom (>= 3 cores; the gate is the CI
   regression bar for the backend subsystem),
3. ``int8`` — approximate by design, so it is held to a *top-1 agreement*
   bar instead of bit equality.

The graph-optimizer report of the compiled plan is printed alongside, so a
rewrite-count regression shows up in the same place as a throughput one.

Run with ``PYTHONPATH=src python benchmarks/bench_backend_throughput.py``;
``--quick`` / ``REPRO_BENCH_QUICK=1`` is the CI mode (smaller batch, fewer
repeats, one model).
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import WIDTH, fresh_seed, quick_mode, save_experiment

from repro.backends import ThreadedBackend, backend_names
from repro.experiment import ModelSpec
from repro.inference import compile_model
from repro.utils.logging import format_table

#: models swept (quick mode keeps the first — the conv-heavy one)
MODEL_NAMES = ("vgg8", "resnet20")
QUICK_MODEL_NAMES = ("vgg8",)
#: forward batch and timing repeats
BATCH, REPEATS = 32, 12
QUICK_BATCH, QUICK_REPEATS = 16, 4

#: the acceptance bars
MIN_SPEEDUP = 2.0        # threaded vs numpy, armed only with >= 3 cores
MIN_TOP1_AGREEMENT = 0.9  # int8 vs numpy argmax agreement


def build(name: str):
    fresh_seed()
    spec = ModelSpec(name=name, neuron_type="OURS", num_classes=4,
                     width_multiplier=WIDTH)
    model = spec.build()
    model.eval()
    return model


def measure(compiled, x: np.ndarray, repeats: int) -> float:
    """Samples/second of one compiled engine (median of ``repeats`` runs)."""
    compiled(x)                      # warm: probes run, buffers allocate
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        compiled(x)
        times.append(time.perf_counter() - start)
    return x.shape[0] / float(np.median(times))


def main() -> None:
    quick = quick_mode()
    model_names = QUICK_MODEL_NAMES if quick else MODEL_NAMES
    batch = QUICK_BATCH if quick else BATCH
    repeats = QUICK_REPEATS if quick else REPEATS
    cores = os.cpu_count() or 1
    # Same arming rule as the serving gate: the speedup needs cores for the
    # worker threads *and* the main thread; exactness is asserted regardless.
    enforce = cores >= 3

    rows, results = [], []
    for name in model_names:
        model = build(name)
        rng = np.random.default_rng(0)
        x = (0.1 * rng.standard_normal((batch, 3, 32, 32))).astype(np.float32)

        engines = {
            "numpy": compile_model(model, backend="numpy"),
            # Thread count pinned >= 4 so the bit-identity assertion below
            # exercises real splits even on a 1-core CI runner.
            "threaded": compile_model(
                model, backend=ThreadedBackend(num_threads=max(4, cores))),
            "int8": compile_model(model, backend="int8"),
        }
        assert set(engines) == set(backend_names()), (
            "benchmark sweep drifted from the backend registry: "
            f"{sorted(engines)} vs {sorted(backend_names())}")

        reference = engines["numpy"](x).copy()
        assert np.isfinite(reference).all()

        # Exactness bars (always asserted, at any core count).
        threaded_out = engines["threaded"](x)
        assert np.array_equal(threaded_out, reference), (
            f"threaded backend diverged from reference bits on {name}")
        int8_out = engines["int8"](x)
        agreement = float(np.mean(int8_out.argmax(axis=-1)
                                  == reference.argmax(axis=-1)))
        assert agreement >= MIN_TOP1_AGREEMENT, (
            f"int8 top-1 agreement on {name} is {agreement:.2f} "
            f"(bar: {MIN_TOP1_AGREEMENT})")

        report = engines["numpy"].optimization
        sweep = {}
        baseline = measure(engines["numpy"], x, repeats)
        for backend in backend_names():
            rate = (baseline if backend == "numpy"
                    else measure(engines[backend], x, repeats))
            speedup = rate / baseline
            sweep[backend] = {"samples_per_s": rate, "vs_numpy": speedup}
            exactness = ("bit-identical" if backend != "int8"
                         else f"top-1 {agreement:.2f}")
            rows.append([name, backend, f"{rate:,.0f}", f"{speedup:.2f}x",
                         exactness])
        results.append({
            "model": name,
            "int8_top1_agreement": agreement,
            "optimizer": report.to_dict(),
            "optimizer_rewrites": report.total_rewrites,
            "backends": sweep,
        })

    note = (f"gate: threaded >= {MIN_SPEEDUP}x" if enforce else
            f"{cores} cpu(s): speedup reported, not asserted")
    print(format_table(
        ["Model", "Backend", "samples / s", "vs numpy", "agreement"], rows,
        title=f"Backend throughput (batch {batch}, {cores} cpus) — {note}"))

    save_experiment("backend_throughput", {
        "quick_mode": quick,
        "cpus": cores,
        "batch": batch,
        "speedup_enforced": enforce,
        "min_speedup": MIN_SPEEDUP,
        "min_top1_agreement": MIN_TOP1_AGREEMENT,
        "models": results,
    })

    if enforce:
        best = max(entry["backends"]["threaded"]["vs_numpy"] for entry in results)
        assert best >= MIN_SPEEDUP, (
            f"threaded backend regression: best speedup is only {best:.2f}x "
            f"the reference engine (gate: {MIN_SPEEDUP}x)")
        print(f"\nbackend gate passed: threaded {best:.2f}x >= {MIN_SPEEDUP}x; "
              "bit-identity and int8 agreement asserted above")
    else:
        print(f"\nspeedup gate skipped: {cores} cpu(s) leave no headroom — "
              "bit-identity and int8 agreement were still asserted")


if __name__ == "__main__":
    main()
