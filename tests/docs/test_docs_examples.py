"""Execute every fenced Python block in README.md and docs/*.md.

Documentation that drifts from the code is worse than no documentation, so
this tier-1 check runs each document's ``python`` code fences top to bottom
in one shared namespace per file (later blocks may use names defined by
earlier ones, like a worked example).  Shell fences (```bash```) and plain
text fences are ignored.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: fenced blocks marked as python; the closing fence must start a line.
_PYTHON_FENCE = re.compile(r"```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def _documents() -> list:
    documents = [REPO_ROOT / "README.md"]
    documents.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in documents if path.exists()]


def _python_blocks(path: Path) -> list:
    return [match.group(1) for match in _PYTHON_FENCE.finditer(path.read_text())]


def test_documentation_exists():
    """The README and the docs set shipped with the inference engine PR."""
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "experiment_api.md").exists()
    assert (REPO_ROOT / "docs" / "architecture.md").exists()


def test_every_document_has_executable_examples():
    for path in _documents():
        assert _python_blocks(path), f"{path.name} has no ```python examples"


@pytest.mark.parametrize("path", _documents(), ids=lambda p: p.name)
def test_python_blocks_execute(path: Path):
    """Each document's python fences run top to bottom without errors."""
    blocks = _python_blocks(path)
    namespace: dict = {"__name__": f"docs_check_{path.stem}"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}#block{index + 1}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} python block {index + 1} failed: "
                f"{type(error).__name__}: {error}\n---\n{block}")
