"""Fig. 5 — training-memory cost of first-order vs. quadratic networks vs. GPU budgets.

The paper profiles VGG-16, ResNet-32 and ResNet-50 with first-order neurons
and with the T2&4 quadratic design (Fan et al.) at batch size 512, and shows
that the quadratic versions approach or exceed the memory of common GPUs.
This benchmark reproduces the same bar chart as a table: modelled training
memory (parameters + gradients + optimizer state + cached activations scaled
to the target batch size) against the three GPU budgets.
"""

import pytest

from common import WIDTH, fresh_seed, gib, save_experiment
from repro.analysis import ascii_bar_chart
from repro.builder import QuadraticModelConfig
from repro.models import ResNet, vgg_from_cfg
from repro.profiler import GPU_MEMORY_BUDGETS, estimate_training_memory
from repro.utils import print_table

BATCH = 512          # the paper's profiling batch size
IMAGE = 16           # probe resolution (paper: 32); activations scale accordingly

# Scaled stand-ins for the three profiled structures.
STRUCTURES = {
    "VGG-16": lambda config: vgg_from_cfg(
        [16, 16, "M", 32, 32, "M", 32, 32, 32, "M"], num_classes=10, config=config),
    "ResNet-32": lambda config: ResNet([3, 3, 3], num_classes=10, config=config),
    "ResNet-50-like": lambda config: ResNet([5, 5, 5], num_classes=10, config=config),
}


def test_fig5_training_memory_vs_gpu_budgets(benchmark):
    fresh_seed(5)
    rows = []
    results = {"batch_size": BATCH, "budgets_gib": {k: gib(v) for k, v in GPU_MEMORY_BUDGETS.items()}}

    for name, builder in STRUCTURES.items():
        first_order = builder(QuadraticModelConfig(neuron_type="first_order",
                                                   width_multiplier=WIDTH))
        quadratic = builder(QuadraticModelConfig(neuron_type="T2_4", width_multiplier=WIDTH))
        est_first = estimate_training_memory(first_order, (3, IMAGE, IMAGE), num_classes=10)
        est_quad = estimate_training_memory(quadratic, (3, IMAGE, IMAGE), num_classes=10)
        ratio = est_quad.total_bytes(BATCH) / est_first.total_bytes(BATCH)
        rows.append([name, round(gib(est_first.total_bytes(BATCH)), 3),
                     round(gib(est_quad.total_bytes(BATCH)), 3), round(ratio, 2)])
        results[name] = {
            "first_order_gib": gib(est_first.total_bytes(BATCH)),
            "quadratic_gib": gib(est_quad.total_bytes(BATCH)),
            "ratio": ratio,
        }

    print()
    print_table(["Structure", "First-order (GiB)", "QDNN T2&4 (GiB)", "QDNN / first-order"],
                rows, title=f"Fig. 5 (reproduced, scaled): training memory at batch {BATCH}")
    budget_rows = [[gpu, round(gib(budget), 1)] for gpu, budget in GPU_MEMORY_BUDGETS.items()]
    print_table(["GPU", "Memory budget (GiB)"], budget_rows)

    # The figure itself: one bar per (structure, neuron family) against the budgets.
    bar_labels, bar_values = [], []
    for name in STRUCTURES:
        bar_labels.extend([f"{name} first-order", f"{name} QDNN (T2&4)"])
        bar_values.extend([results[name]["first_order_gib"], results[name]["quadratic_gib"]])
    print()
    print(ascii_bar_chart(bar_labels, bar_values, width=48,
                          title="Fig. 5 (ASCII): training memory (GiB) vs. GPU budgets",
                          reference_lines={gpu: gib(b) for gpu, b in GPU_MEMORY_BUDGETS.items()}))
    save_experiment("fig5_memory_budgets", results)

    # Shape of the paper's figure: the quadratic model always needs more
    # training memory than the first-order model of the same structure.
    for name in STRUCTURES:
        assert results[name]["ratio"] > 1.2

    # Timed kernel: one memory estimate (profiling pass) of the quadratic VGG.
    quadratic = STRUCTURES["VGG-16"](QuadraticModelConfig(neuron_type="T2_4",
                                                          width_multiplier=WIDTH))
    benchmark(lambda: estimate_training_memory(quadratic, (3, IMAGE, IMAGE), num_classes=10))
