"""Shared machinery for quadratic layer modules.

A quadratic layer of any type is assembled from up to three first-order
*projections* of the input (``Wa X``, ``Wb X``, ``Wc X``), an optional
projection of the squared input (``W X²``), an optional identity path and an
optional full-rank bilinear term, combined by the type's combiner from
:mod:`repro.quadratic.functional`.  This module centralises the bookkeeping:
which projections a type needs, how many parameters that costs, and how to
report it for the complexity model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...autodiff.tensor import Tensor
from ...nn.module import Module
from ..functional import COMBINERS, REQUIRED_RESPONSES
from ..neuron_types import NeuronSpec, resolve_type


class QuadraticLayerBase(Module):
    """Base class for quadratic layers of every neuron type.

    Subclasses provide the projection primitives (dense or convolutional);
    this base class owns the type resolution and the combination step.
    """

    def __init__(self, neuron_type: str = "OURS") -> None:
        super().__init__()
        self.spec: NeuronSpec = resolve_type(neuron_type)
        self.neuron_type = self.spec.name
        if self.neuron_type not in REQUIRED_RESPONSES:
            raise KeyError(f"no response recipe registered for {self.neuron_type}")
        self.required = REQUIRED_RESPONSES[self.neuron_type]
        self.combiner = COMBINERS[self.neuron_type]

    # ------------------------------------------------------------------ hooks
    def project(self, x: Tensor, kind: str) -> Tensor:  # pragma: no cover - abstract
        """Compute one first-order response of ``x`` (``kind`` ∈ a/b/c/sq/id/bilinear)."""
        raise NotImplementedError

    def post_combine(self, out: Tensor) -> Tensor:
        """Hook applied after combination (bias addition by default subclasses)."""
        return out

    # ---------------------------------------------------------------- forward
    def forward(self, x: Tensor) -> Tensor:
        responses = [self.project(x, kind) for kind in self.required]
        out = self.combiner(*responses)
        return self.post_combine(out)

    # ------------------------------------------------------------------- info
    def weight_parameter_names(self) -> List[str]:
        """Names of the weight parameters (excluding bias) this layer owns."""
        return [name for name in self._parameters if name != "bias"]

    def extra_repr(self) -> str:
        return f"type={self.neuron_type}"


def needs(kind: str, required: Tuple[str, ...]) -> bool:
    """Whether a response kind is part of the type's recipe."""
    return kind in required
