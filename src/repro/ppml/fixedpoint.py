"""Fixed-point arithmetic for the secure-inference runtime.

Every deployed PPML protocol — Delphi, Gazelle, CryptoNets, and every
secret-sharing scheme behind them — computes over integers, not floats:
secret shares live in a ring ``Z_{2^k}`` and real values are embedded as
fixed-point numbers with a fixed count of fractional bits.  Two consequences
drive everything in this module:

* **Quantization.**  Encoding a real value ``x`` as ``round(x * 2^f)``
  introduces at most ``2^-f`` of error once, at the protocol boundary.
* **Truncation.**  The product of two scale-``f`` fixed-point numbers
  carries scale ``2f``; after every multiplication the protocol must divide
  by ``2^f`` to restore the scale.  Share-based protocols cannot round
  exactly, so they truncate — either *nearest* (deterministic round-half-up,
  error ``<= 2^-(f+1)`` per multiplication) or *stochastic* (the
  probabilistic truncation of SecureML/Delphi, unbiased with error
  ``< 2^-f`` per multiplication).

The runtime (:mod:`repro.ppml.runtime`) keeps all activations as ``int64``
arrays at scale ``f`` and calls :func:`truncate` after every secure
multiplication, which is exactly the error model a real deployment pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Supported truncation modes after a fixed-point multiplication.
TRUNCATION_MODES: Tuple[str, ...] = ("nearest", "stochastic")

#: Upper bound on fractional bits.  Values and weights of the supported
#: layers stay well under ``2^8`` in magnitude, so a product of two scale-f
#: operands summed over a convolution patch fits ``int64`` comfortably for
#: ``f <= 16``; beyond that the accumulator may wrap silently.
MAX_FRAC_BITS = 16


@dataclass(frozen=True)
class FixedPointFormat:
    """The number format of one secure execution.

    Attributes
    ----------
    frac_bits :
        Fractional bits ``f``; values are stored as ``round(x * 2^f)`` in
        ``int64`` (a 64-bit ring, the common choice of deployed protocols).
    truncation :
        ``"nearest"`` or ``"stochastic"`` — how the scale is restored after
        each multiplication (see the module docstring).
    """

    frac_bits: int = 12
    truncation: str = "nearest"

    def __post_init__(self) -> None:
        if not 1 <= int(self.frac_bits) <= MAX_FRAC_BITS:
            raise ValueError(
                f"frac_bits must be in 1..{MAX_FRAC_BITS} (int64 ring), got {self.frac_bits}"
            )
        if self.truncation not in TRUNCATION_MODES:
            raise ValueError(
                f"unknown truncation mode '{self.truncation}'; choose from {TRUNCATION_MODES}"
            )

    @property
    def scale(self) -> int:
        """The integer scale factor ``2^f``."""
        return 1 << self.frac_bits

    @property
    def resolution(self) -> float:
        """The representable step ``2^-f`` — the per-operation error unit."""
        return 2.0 ** -self.frac_bits


def encode(x: np.ndarray, frac_bits: int) -> np.ndarray:
    """Embed real values as scale-``f`` fixed-point integers (``int64``).

    Uses round-to-nearest, so the representation error is at most
    ``2^-(f+1)`` per element.
    """
    scaled = np.asarray(x, dtype=np.float64) * float(1 << frac_bits)
    return np.rint(scaled).astype(np.int64)


def decode(q: np.ndarray, frac_bits: int) -> np.ndarray:
    """Recover real values from scale-``f`` fixed-point integers."""
    return (np.asarray(q, dtype=np.float64) * 2.0 ** -frac_bits).astype(np.float32)


def truncate(q: np.ndarray, frac_bits: int, mode: str = "nearest",
             rng: Optional[np.random.Generator] = None,
             out: Optional[np.ndarray] = None) -> np.ndarray:
    """Restore scale ``f`` after a fixed-point multiplication (scale ``2f → f``).

    Parameters
    ----------
    q : int64 array
        Product values at scale ``2f`` (or any value needing a ``2^f``
        division).
    mode : str
        ``"nearest"`` divides with round-half-up (deterministic);
        ``"stochastic"`` adds uniform noise in ``[0, 2^f)`` before the
        arithmetic shift, the unbiased probabilistic truncation used by
        secret-sharing protocols.
    rng : np.random.Generator
        Required for ``"stochastic"``.
    out : int64 array, optional
        Destination buffer (may alias ``q``).

    Either way the result differs from the exact quotient by strictly less
    than one unit at scale ``f``, i.e. the decoded error of one truncation is
    bounded by ``2^-f``.
    """
    q = np.asarray(q, dtype=np.int64)
    target = out if out is not None else np.empty_like(q)
    if mode == "nearest":
        shifted = np.add(q, np.int64(1 << (frac_bits - 1)), out=target)
    elif mode == "stochastic":
        if rng is None:
            raise ValueError("stochastic truncation needs a random generator")
        noise = rng.integers(0, 1 << frac_bits, size=q.shape, dtype=np.int64)
        shifted = np.add(q, noise, out=target)
    else:
        raise ValueError(
            f"unknown truncation mode '{mode}'; choose from {TRUNCATION_MODES}"
        )
    # Arithmetic right shift floors toward -inf for negatives, which combined
    # with the additive bias/noise gives round-half-up / unbiased rounding.
    return np.right_shift(shifted, frac_bits, out=shifted)


def fixed_mul(a: np.ndarray, b: np.ndarray, frac_bits: int, mode: str = "nearest",
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """One secure element-wise multiplication: product at ``2f``, truncated to ``f``.

    This is the primitive a Beaver triple implements; its decoded result
    differs from the exact product of the decoded operands by less than
    ``2^-f`` (the property test in ``tests/ppml`` pins this bound).
    """
    return truncate(a * b, frac_bits, mode=mode, rng=rng)
