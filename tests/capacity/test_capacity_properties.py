"""Property tests of the capacity model (:mod:`repro.capacity`).

The planner's value is that its *qualitative* behaviour is trustworthy even
where its absolute numbers carry measurement error: more workers never
predicts less throughput, more load never predicts (meaningfully) less
latency, an idle system's latency is its service time, and the queueing
arithmetic obeys Little's law.  Every test here builds the model from
explicitly constructed :class:`~repro.backends.KernelRates` — no probes run,
so the suite is deterministic on any host.
"""

from __future__ import annotations

import math

import pytest

from repro.backends.rates import KernelRates
from repro.capacity import CapacityModel, MMcQueue, RequestWork, erlang_c

RATES = KernelRates(
    backend="synthetic", host="property-tests",
    gemm_macs_per_s=2.0e10, conv_macs_per_s=4.0e9,
    elementwise_ops_per_s=1.0e9, pool_window_elems_per_s=5.0e7,
    dispatch_us=2.0, ipc_us=50.0, copy_bytes_per_s=8.0e9,
)

WORK = RequestWork(conv_macs=4_000_000, gemm_macs=200_000,
                   elementwise_ops=60_000, input_bytes=12_288,
                   output_bytes=40, layers=12, pool_window_elems=20_000)


def make_model(**kwargs) -> CapacityModel:
    kwargs.setdefault("workers", 2)
    return CapacityModel(WORK, RATES, **kwargs)


class TestThroughputMonotoneInWorkers:
    def test_ceiling_never_drops_when_workers_grow(self):
        model = make_model()
        ceilings = [model.plan(100.0, workers=w).max_throughput_rps
                    for w in range(1, 9)]
        for before, after in zip(ceilings, ceilings[1:]):
            assert after >= before

    def test_capacity_at_offered_load_never_drops_when_workers_grow(self):
        model = make_model()
        capacities = [model.plan(250.0, workers=w).capacity_rps
                      for w in range(1, 9)]
        for before, after in zip(capacities, capacities[1:]):
            assert after >= before

    def test_adding_a_worker_never_increases_latency(self):
        model = make_model()
        p99s = [model.plan(300.0, workers=w).p99_ms for w in range(1, 9)]
        finite = [p for p in p99s if p is not None and math.isfinite(p)]
        for before, after in zip(finite, finite[1:]):
            assert after <= before + 1e-9


class TestLatencyMonotoneInLoad:
    def test_p99_non_decreasing_in_offered_qps(self):
        model = make_model(workers=3)
        # The only batch-amortized service term is the per-batch control
        # traffic (2 IPC round trips), so predicted latency may legally dip
        # by at most that much as coalescing kicks in — everything beyond
        # the slack must be monotone queueing growth.
        slack_ms = 2.0 * RATES.ipc_us / 1e3
        qps_grid = [1, 5, 20, 50, 100, 200, 400, 600, 800]
        p99s = [model.plan(q).p99_ms for q in qps_grid]
        for (q1, before), (q2, after) in zip(zip(qps_grid, p99s),
                                            zip(qps_grid[1:], p99s[1:])):
            if not (math.isfinite(before) and math.isfinite(after)):
                continue        # past saturation: latency is unbounded
            assert after >= before - slack_ms, (
                f"p99 dropped from {before:.4f} to {after:.4f} ms going "
                f"{q1} → {q2} rps (allowed slack {slack_ms:.4f} ms)")

    def test_mean_latency_non_decreasing_in_offered_qps(self):
        model = make_model(workers=2)
        slack_ms = 2.0 * RATES.ipc_us / 1e3
        grid = [0.5, 2, 10, 40, 120, 300, 500]
        means = [model.plan(q).mean_latency_ms for q in grid]
        for before, after in zip(means, means[1:]):
            if not (math.isfinite(before) and math.isfinite(after)):
                continue
            assert after >= before - slack_ms

    def test_unstable_offer_reports_infinite_waits_not_errors(self):
        model = make_model(workers=1)
        plan = model.plan(1e9)
        assert not plan.stable
        assert math.isinf(plan.mean_latency_ms)
        assert plan.to_dict()["predictions"]["mean_latency_ms"] is None


class TestLowLoadConvergesToServiceTime:
    def test_latency_collapses_to_pure_service_time(self):
        model = make_model(workers=2)
        service_ms = model.service_seconds(0.0) * 1e3
        for quantile_ms in ("p50_ms", "p99_ms", "mean_latency_ms"):
            value = getattr(model.plan(1e-6), quantile_ms)
            assert value == pytest.approx(service_ms, rel=1e-6), quantile_ms

    def test_batches_of_one_at_vanishing_load(self):
        model = make_model()
        assert model.expected_batch(0.0) == 1.0
        assert model.plan(1e-9).expected_batch == pytest.approx(1.0)

    def test_wait_probability_vanishes_at_low_load(self):
        assert make_model(workers=2).plan(1e-6).queue.wait_probability < 1e-6


class TestLittlesLaw:
    def test_l_equals_lambda_w_across_a_seeded_sweep(self):
        import numpy as np

        rng = np.random.default_rng(20260808)
        checked = 0
        for _ in range(200):
            workers = int(rng.integers(1, 9))
            service_rps = float(rng.uniform(20.0, 2000.0))
            arrival = float(rng.uniform(0.05, 0.98)) * workers * service_rps
            queue = MMcQueue(servers=workers, arrival_rps=arrival,
                             service_rps=service_rps)
            if not queue.stable:
                continue
            assert queue.mean_in_system == pytest.approx(
                arrival * queue.mean_response_s, rel=1e-9)
            assert queue.mean_in_queue == pytest.approx(
                arrival * queue.mean_wait_s, rel=1e-9, abs=1e-12)
            checked += 1
        assert checked > 150    # the sweep must actually exercise the law

    def test_plan_exposes_the_same_arithmetic(self):
        plan = make_model(workers=3).plan(200.0)
        assert plan.mean_in_system == pytest.approx(
            plan.qps * plan.queue.mean_response_s, rel=1e-9)


class TestErlangC:
    def test_zero_load_never_waits(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturation_always_waits(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_wait_probability_grows_with_load(self):
        probs = [erlang_c(3, a) for a in (0.3, 0.9, 1.5, 2.1, 2.7)]
        for before, after in zip(probs, probs[1:]):
            assert after > before

    def test_more_servers_wait_less_at_equal_utilization(self):
        # Pooling economies: at the same ρ, a larger pool queues less.
        assert erlang_c(8, 4.0) < erlang_c(2, 1.0)


class TestRequiredWorkers:
    def test_sizing_is_monotone_in_target_qps(self):
        model = make_model()
        sizes = [model.required_workers(q) for q in (1, 50, 200, 500, 1000)]
        for before, after in zip(sizes, sizes[1:]):
            assert after >= before

    def test_sized_pool_runs_at_or_under_target_utilization(self):
        from repro.capacity import TARGET_UTILIZATION

        model = make_model()
        for qps in (10.0, 150.0, 900.0):
            workers = model.required_workers(qps)
            plan = model.plan(qps, workers=workers)
            assert plan.utilization <= TARGET_UTILIZATION + 1e-9
