"""Seeded-run parity: the engine reproduces the legacy loops bit for bit.

``legacy_loops.py`` holds the four pre-refactor loop bodies frozen; these
tests run each of them head-to-head against the engine on identical seeded
models and assert *exact* equality of histories (timing columns excluded —
wall-clock is never reproducible) and of every final weight.
"""

from __future__ import annotations

import numpy as np

from legacy_loops import (
    legacy_train_classifier,
    legacy_train_detector,
    legacy_train_sngan,
)
from repro.builder import QuadraticModelConfig
from repro.data.synthetic import (
    SyntheticDetectionDataset,
    SyntheticGenerationDataset,
    SyntheticImageClassification,
)
from repro.engine import run_classification, run_detection, run_gan
from repro.models import SmallConvNet, build_ssd, sngan_pair
from repro.training.pretrain import BackbonePretrainNet, pretrain_backbone
from repro.utils import seed_everything


def assert_states_equal(state_a, state_b):
    assert list(state_a) == list(state_b)
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), f"weight '{name}' differs"


class TestClassificationParity:
    def _datasets(self):
        train = SyntheticImageClassification(num_samples=96, num_classes=4, image_size=16)
        test = SyntheticImageClassification(num_samples=32, num_classes=4, image_size=16,
                                            split_seed=1)
        return train, test

    def _model(self):
        return SmallConvNet(num_classes=4, image_size=16,
                            config=QuadraticModelConfig(width_multiplier=0.5))

    def test_history_and_weights_bit_identical(self):
        train, test = self._datasets()
        kwargs = dict(epochs=3, batch_size=16, lr=0.05, label_smoothing=0.05,
                      grad_probe_layers=["features"], max_batches_per_epoch=3, seed=1)

        seed_everything(3)
        legacy_model = self._model()
        legacy = legacy_train_classifier(legacy_model, train, test, **kwargs)

        seed_everything(3)
        engine_model = self._model()
        engine = run_classification(engine_model, train, test, **kwargs)

        assert engine.train_loss == legacy.train_loss
        assert engine.train_accuracy == legacy.train_accuracy
        assert engine.test_accuracy == legacy.test_accuracy
        assert engine.gradient_norms == legacy.gradient_norms
        assert len(engine.seconds_per_batch) == len(legacy.seconds_per_batch)
        assert_states_equal(engine_model.state_dict(), legacy_model.state_dict())

    def test_uncapped_run_without_eval_matches(self):
        train, _ = self._datasets()
        kwargs = dict(epochs=2, batch_size=32, lr=0.1, scheduler="none", seed=7)

        seed_everything(11)
        legacy_model = self._model()
        legacy = legacy_train_classifier(legacy_model, train, **kwargs)

        seed_everything(11)
        engine_model = self._model()
        engine = run_classification(engine_model, train, **kwargs)

        assert engine.train_loss == legacy.train_loss
        assert engine.test_accuracy == legacy.test_accuracy == []
        assert_states_equal(engine_model.state_dict(), legacy_model.state_dict())


class TestDetectionParity:
    def test_history_and_weights_bit_identical(self):
        dataset = SyntheticDetectionDataset(num_samples=24, image_size=64, num_classes=3,
                                            seed=0)
        kwargs = dict(epochs=2, batch_size=8, lr=5e-3, milestones=(1,), seed=2)

        seed_everything(5)
        legacy_model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        legacy = legacy_train_detector(legacy_model, dataset, **kwargs)

        seed_everything(5)
        engine_model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        engine = run_detection(engine_model, dataset, **kwargs)

        assert engine.loss == legacy.loss
        assert_states_equal(engine_model.state_dict(), legacy_model.state_dict())


class TestGANParity:
    def test_history_and_weights_bit_identical(self):
        dataset = SyntheticGenerationDataset(num_samples=48, image_size=16)
        kwargs = dict(steps=3, batch_size=8, discriminator_steps=2, seed=4)

        seed_everything(9)
        legacy_gen, legacy_disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        legacy = legacy_train_sngan(legacy_gen, legacy_disc, dataset, **kwargs)

        seed_everything(9)
        engine_gen, engine_disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        engine = run_gan(engine_gen, engine_disc, dataset, **kwargs)

        assert engine.generator_loss == legacy.generator_loss
        assert engine.discriminator_loss == legacy.discriminator_loss
        assert_states_equal(engine_gen.state_dict(), legacy_gen.state_dict())
        assert_states_equal(engine_disc.state_dict(), legacy_disc.state_dict())


class TestPretrainParity:
    def test_backbone_state_bit_identical(self):
        config = QuadraticModelConfig(neuron_type="first_order", width_multiplier=0.25)
        dataset = SyntheticImageClassification(num_samples=64, num_classes=5, image_size=32)
        kwargs = dict(epochs=1, batch_size=16, lr=0.05, max_batches_per_epoch=2, seed=0)

        seed_everything(13)
        legacy_model = BackbonePretrainNet(num_classes=dataset.num_classes, config=config)
        legacy = legacy_train_classifier(legacy_model, dataset, **kwargs)
        legacy_state = legacy_model.backbone.state_dict()

        seed_everything(13)
        engine_state, engine = pretrain_backbone(config, dataset, **kwargs)

        assert engine.train_loss == legacy.train_loss
        assert engine.train_accuracy == legacy.train_accuracy
        assert_states_equal(engine_state, legacy_state)
