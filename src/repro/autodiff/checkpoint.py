"""Gradient checkpointing.

``checkpoint(fn, *inputs)`` runs ``fn`` without recording intermediates and
re-executes it during the backward pass, trading compute for memory.  This is
the same mechanism ``torch.utils.checkpoint.checkpoint`` provides and is the
building block QuadraLib's quadratic optimizer uses so that quadratic layers
do not keep their internal Hadamard-product intermediates alive between the
forward and backward pass (paper Sec. 4.3).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .function import Context
from .grad_mode import no_grad
from .tensor import Tensor


class _CheckpointContext(Context):
    """Graph node that recomputes a sub-graph on demand during backward."""

    def __init__(self, fn: Callable, inputs: Tuple[Tensor, ...]) -> None:
        super().__init__(op_name="Checkpoint")
        self.fn = fn
        self.inputs = inputs
        # Only the *inputs* are kept alive, not any intermediate activations.
        self.save_for_backward(*[t.data for t in inputs])

    def backward(self, grad_output: np.ndarray):
        # Re-run the wrapped function with gradients enabled on detached
        # copies of the original inputs, then backpropagate through the
        # freshly recorded sub-graph.
        detached = []
        for t in self.inputs:
            d = Tensor(t.data, requires_grad=t.requires_grad, _copy=False)
            detached.append(d)
        out = self.fn(*detached)
        if not isinstance(out, Tensor):
            raise TypeError("checkpointed function must return a single Tensor")
        out.backward(grad_output)
        return tuple(d.grad for d in detached)


def checkpoint(fn: Callable, *inputs: Tensor) -> Tensor:
    """Run ``fn(*inputs)`` without storing intermediate activations.

    The forward pass executes under ``no_grad`` so none of ``fn``'s internal
    operations cache tensors for backward; only the function inputs are saved.
    During the backward pass the function is executed a second time with
    gradients enabled to rebuild the local graph.
    """
    with no_grad():
        out = fn(*inputs)
    if not isinstance(out, Tensor):
        raise TypeError("checkpointed function must return a single Tensor")

    requires_grad = any(isinstance(t, Tensor) and t.requires_grad for t in inputs)
    result = Tensor(out.data, requires_grad=requires_grad, _copy=False)
    if requires_grad:
        ctx = _CheckpointContext(fn, tuple(inputs))
        ctx.parents = tuple(inputs)
        ctx.needs_input_grad = tuple(t.requires_grad for t in inputs)
        result._ctx = ctx
    return result
