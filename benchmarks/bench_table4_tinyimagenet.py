"""Table 4 — VGG on Tiny-ImageNet: first-order vs. QuadraNN vs. QuadraNN without ReLU.

The paper's Table 4 shows that on the larger-resolution Tiny-ImageNet task the
auto-built 7-layer QuadraNN matches the 13-layer first-order VGG, and that
*removing ReLU hurts* once the QDNN is deep (design insight 3: shallow QDNNs
can drop activations, deep ones cannot).  The scaled reproduction uses the
synthetic higher-resolution dataset (32×32, more classes) and the same three
rows.
"""

import numpy as np
import pytest

from common import BATCH_SIZE, MAX_BATCHES, WIDTH, fresh_seed, save_experiment
from repro.builder import QuadraticModelConfig
from repro.data.synthetic import SyntheticImageClassification
from repro.models import vgg_from_cfg
from repro.training import train_classifier
from repro.utils import print_table

IMAGE = 32
NUM_CLASSES = 10
EPOCHS = 2

FULL_CFG = [16, 16, "M", 32, 32, "M", 64, 64, 64, "M"]        # "13 CL" stand-in
REDUCED_CFG = [16, "M", 32, "M", 64, 64, "M"]                  # "7 CL" stand-in


def test_table4_tiny_imagenet_vgg(benchmark):
    train_set = SyntheticImageClassification(num_samples=160, num_classes=NUM_CLASSES,
                                             image_size=IMAGE, seed=4, split_seed=0)
    test_set = SyntheticImageClassification(num_samples=80, num_classes=NUM_CLASSES,
                                            image_size=IMAGE, seed=4, split_seed=1)

    rows_spec = [
        ("First-order", FULL_CFG, QuadraticModelConfig(neuron_type="first_order",
                                                       width_multiplier=WIDTH)),
        ("QuadraNN", REDUCED_CFG, QuadraticModelConfig(neuron_type="OURS",
                                                       width_multiplier=WIDTH)),
        ("QuadraNN (no ReLU)", REDUCED_CFG, QuadraticModelConfig(neuron_type="OURS",
                                                                 use_activation=False,
                                                                 width_multiplier=WIDTH)),
    ]

    rows, results = [], {}
    for index, (name, cfg, config) in enumerate(rows_spec):
        fresh_seed(40 + index)
        model = vgg_from_cfg(cfg, num_classes=NUM_CLASSES, config=config)
        history = train_classifier(model, train_set, test_set, epochs=EPOCHS,
                                   batch_size=BATCH_SIZE, lr=0.05,
                                   max_batches_per_epoch=MAX_BATCHES, seed=11)
        depth = sum(1 for c in cfg if c != "M")
        rows.append([name, f"{depth} CL", round(history.best_test_accuracy, 3)])
        results[name] = {
            "conv_layers": depth,
            "test_accuracy": history.best_test_accuracy,
            "train_accuracy": history.final_train_accuracy,
        }

    print()
    print_table(["Model", "#Layer", "Accuracy (synthetic Tiny-ImageNet stand-in)"], rows,
                title="Table 4 (reproduced, scaled)")
    save_experiment("table4_tinyimagenet", results)

    # QuadraNN uses fewer conv layers than the first-order baseline.
    assert results["QuadraNN"]["conv_layers"] < results["First-order"]["conv_layers"]
    # All rows train above chance.
    for entry in results.values():
        assert entry["train_accuracy"] > 1.0 / NUM_CLASSES

    # Timed kernel: QuadraNN inference on one batch.
    from repro.autodiff import Tensor, no_grad

    model = vgg_from_cfg(REDUCED_CFG, num_classes=NUM_CLASSES,
                         config=QuadraticModelConfig(neuron_type="OURS",
                                                     width_multiplier=WIDTH))
    model.eval()
    images = np.stack([test_set[i][0] for i in range(8)])

    def infer():
        with no_grad():
            return model(Tensor(images)).shape

    benchmark(infer)
