"""Checkpoint save/load for models and experiment results.

State dicts are plain ``name -> ndarray`` mappings, so ``.npz`` files are a
natural, dependency-free container.  Experiment results (the numbers behind
each reproduced table) are stored as JSON for easy diffing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import numpy as np

from ..nn.module import Module


def save_checkpoint(module: Module, path: str) -> None:
    """Save a module's ``state_dict`` to an ``.npz`` file."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    state = module.state_dict()
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str, strict: bool = True) -> None:
    """Load an ``.npz`` checkpoint produced by :func:`save_checkpoint`."""
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    with np.load(path) as data:
        state = {key: data[key] for key in data.files}
    module.load_state_dict(state, strict=strict)


def save_results(results: Dict[str, Any], path: str) -> None:
    """Persist experiment results (numbers behind a reproduced table) as JSON."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)

    def _default(obj):
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"cannot serialise {type(obj)!r}")

    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, default=_default)


def load_results(path: str) -> Dict[str, Any]:
    """Load a results JSON file written by :func:`save_results`."""
    with open(path) as fh:
        return json.load(fh)
