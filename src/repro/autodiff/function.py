"""Differentiable operation base class.

Every primitive operation in the autodiff engine is a subclass of
:class:`Function`.  A ``Function`` mirrors ``torch.autograd.Function``:

* ``forward(ctx, *arrays, **kwargs)`` computes the result from raw NumPy
  arrays and may stash whatever it needs for the backward pass through
  ``ctx.save_for_backward``.
* ``backward(ctx, grad_output)`` receives the gradient of the loss with
  respect to the output (a NumPy array) and returns one gradient per tensor
  input, aligned positionally, using ``None`` for inputs that do not require
  gradients.

``Function.apply`` is the user-facing entry point: it unwraps tensor inputs,
runs ``forward``, wraps the result in a new :class:`~repro.autodiff.tensor.Tensor`
and, when gradient mode is active, records the node in the dynamic graph.

This module is the key substrate piece behind QuadraLib's hybrid
back-propagation (paper Sec. 4.3): quadratic layers can either be composed of
many small ``Function`` nodes (default AD, many cached intermediates) or be a
single ``Function`` with a hand-derived, symbolic backward that caches only the
layer inputs and weights.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from . import hooks
from .grad_mode import is_grad_enabled


def _nbytes(arrays: Sequence[np.ndarray]) -> int:
    """Total byte size of a collection of arrays (non-arrays count as zero)."""
    total = 0
    for a in arrays:
        if isinstance(a, np.ndarray):
            total += a.nbytes
    return total


class Context:
    """Per-node storage connecting a forward call with its backward call.

    A context holds three things:

    * ``parents`` — the input :class:`Tensor` objects, used by the engine to
      route gradients further down the graph;
    * ``saved_tensors`` — the NumPy arrays the operation stashed during the
      forward pass (reported to the memory profiler through
      :mod:`repro.autodiff.hooks`);
    * arbitrary attributes assigned by ``forward`` (e.g. ``ctx.stride = 2``).
    """

    __slots__ = ("parents", "needs_input_grad", "_saved", "_saved_nbytes",
                 "op_name", "__dict__")

    def __init__(self, op_name: str = "") -> None:
        self.parents: Tuple[Any, ...] = ()
        self.needs_input_grad: Tuple[bool, ...] = ()
        self._saved: Tuple[np.ndarray, ...] = ()
        self._saved_nbytes: int = 0
        self.op_name = op_name

    # -- saved-tensor management -------------------------------------------------
    def save_for_backward(self, *arrays: np.ndarray) -> None:
        """Cache arrays needed by ``backward`` and report their footprint.

        When gradient mode is disabled nothing is cached at all (inference
        never calls backward), which keeps ``no_grad`` evaluation memory-flat —
        the behaviour the memory profiler relies on.
        """
        if not is_grad_enabled():
            return
        self._saved = arrays
        self._saved_nbytes = _nbytes(arrays)
        if self._saved_nbytes and hooks.has_observers():
            hooks.notify("save", self._saved_nbytes, self.op_name)

    @property
    def saved_tensors(self) -> Tuple[np.ndarray, ...]:
        """Arrays cached during the forward pass."""
        return self._saved

    def release_saved(self) -> None:
        """Drop cached arrays after backward consumed them (frees memory)."""
        if self._saved_nbytes and hooks.has_observers():
            hooks.notify("release", self._saved_nbytes, self.op_name)
        self._saved = ()
        self._saved_nbytes = 0

    @property
    def saved_nbytes(self) -> int:
        """Bytes currently cached for the backward pass of this node."""
        return self._saved_nbytes

    # -- engine interface ---------------------------------------------------------
    def backward(self, grad_output: np.ndarray):  # pragma: no cover - overridden
        raise NotImplementedError


class _FunctionContext(Context):
    """Context flavour whose backward dispatches to the owning Function class."""

    __slots__ = ("fn_cls",)

    def __init__(self, fn_cls: type) -> None:
        super().__init__(op_name=fn_cls.__name__)
        self.fn_cls = fn_cls

    def backward(self, grad_output: np.ndarray):
        return self.fn_cls.backward(self, grad_output)


class Function:
    """Base class for differentiable primitives (see module docstring)."""

    @staticmethod
    def forward(ctx: Context, *args, **kwargs) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad_output: np.ndarray):
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs):
        """Run the op on tensors/arrays/scalars and record it in the graph."""
        from .tensor import Tensor  # deferred to avoid a circular import

        ctx = _FunctionContext(cls)

        if not is_grad_enabled():
            # Inference fast path: nothing will ever call backward, so skip
            # the parent bookkeeping and the requires_grad propagation scan
            # entirely.  save_for_backward is already a no-op in this mode.
            raw = [a.data if isinstance(a, Tensor) else a for a in args]
            return Tensor(cls.forward(ctx, *raw, **kwargs), _copy=False)

        raw_args: List[Any] = []
        tensor_inputs: List[Optional["Tensor"]] = []
        for a in args:
            if isinstance(a, Tensor):
                raw_args.append(a.data)
                tensor_inputs.append(a)
            else:
                raw_args.append(a)
                tensor_inputs.append(None)

        out_data = cls.forward(ctx, *raw_args, **kwargs)

        requires_grad = any(
            t is not None and t.requires_grad for t in tensor_inputs
        )

        out = Tensor(out_data, requires_grad=requires_grad, _copy=False)
        if requires_grad:
            ctx.parents = tuple(tensor_inputs)
            ctx.needs_input_grad = tuple(
                t is not None and t.requires_grad for t in tensor_inputs
            )
            out._ctx = ctx
        else:
            # Nothing will ever call backward on this node; free eagerly.
            ctx.release_saved()
        return out


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after NumPy broadcasting.

    Broadcasting in the forward pass implicitly replicates values; the
    corresponding backward operation sums gradients over the replicated axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
