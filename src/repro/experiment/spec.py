"""Declarative, JSON-round-trippable experiment specifications.

An :class:`ExperimentSpec` describes *everything* about a QuadraLib run —
model structure, dataset, training recipe, profiling, PPML conversion and
(optionally) design exploration — as plain data.  Specs only reference
components by registry name (:mod:`repro.experiment.registry`), so

``spec -> to_dict -> json -> from_dict -> build()``

reconstructs a structurally identical experiment on any machine.  Every spec
carries a ``version`` so persisted files stay loadable as the schema grows.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Optional

from ..builder.config import QuadraticModelConfig
from . import registry as reg

#: Schema version written into every serialized spec.
#:
#: * v1 — the original PR 1 schema.
#: * v2 — :class:`TrainSpec` gained the engine fields (``checkpoint_dir``,
#:   ``checkpoint_every``, ``resume_from``, ``stop_after_epoch``,
#:   ``prefetch``, ``prefetch_depth``).  v1 files still load: the new fields
#:   default to "off".
SPEC_VERSION = 2

#: Pipeline steps an :class:`ExperimentSpec` may request, in execution order.
PIPELINE_STEPS = ("build", "fit", "evaluate", "profile", "ppml", "search")


def _from_known_fields(cls, data: Dict[str, Any]):
    """Construct a spec dataclass from a dict, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise ValueError(f"{cls.__name__} expects a dict, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s) {unknown}; known fields: {sorted(known)}"
        )
    return cls(**data)


class _SpecBase:
    """Shared dict round-tripping for the spec dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]):
        return _from_known_fields(cls, dict(data))

    def with_(self, **changes):
        """Copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class ModelSpec(_SpecBase):
    """What to build: a registry model (or explicit genome) plus its switches.

    ``auto_build=True`` reproduces the paper's auto-builder workflow: the
    structure is first instantiated with first-order layers and then converted
    to ``neuron_type`` by :class:`repro.builder.AutoBuilder` layer replacement.
    """

    name: str = "vgg8"
    neuron_type: str = "OURS"
    num_classes: int = 10
    width_multiplier: float = 1.0
    hybrid_bp: bool = False
    use_batchnorm: bool = True
    use_activation: bool = True
    auto_build: bool = False
    convert_linear: bool = False
    #: explicit VGG-style architecture genome (overrides ``name`` when set);
    #: the dict form of :class:`repro.explore.ArchitectureGenome`.
    genome: Optional[Dict[str, Any]] = None
    #: extra keyword arguments passed through to the model factory.
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def effective_neuron_type(self) -> str:
        """The neuron design actually built (the genome's, when one is given)."""
        if self.genome is not None and "neuron_type" in self.genome:
            return str(self.genome["neuron_type"])
        return self.neuron_type

    def validate(self) -> None:
        reg.check_neuron_type(self.effective_neuron_type)
        if self.genome is None and self.name not in reg.MODELS:
            raise ValueError(
                f"unknown model '{self.name}'; registered models: "
                f"{', '.join(reg.MODELS.names())}"
            )
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.width_multiplier <= 0:
            raise ValueError(f"width_multiplier must be positive, got {self.width_multiplier}")

    def to_config(self) -> QuadraticModelConfig:
        """The construction switches as a :class:`QuadraticModelConfig`."""
        neuron = "first_order" if self.auto_build else self.neuron_type
        return QuadraticModelConfig(
            neuron_type=neuron,
            use_batchnorm=self.use_batchnorm,
            use_activation=self.use_activation,
            hybrid_bp=self.hybrid_bp,
            width_multiplier=self.width_multiplier,
        )

    def build(self):
        """Instantiate the model (applying the auto-builder when requested)."""
        self.validate()
        target_neuron = self.effective_neuron_type
        if self.genome is not None:
            from ..explore.space import ArchitectureGenome

            # Genome dict fields win; ModelSpec fields fill in what it omits.
            raw = dict(self.genome)
            raw.setdefault("neuron_type", self.neuron_type)
            raw.setdefault("use_batchnorm", self.use_batchnorm)
            raw.setdefault("use_activation", self.use_activation)
            genome = ArchitectureGenome.from_dict(raw)
            if self.auto_build:
                genome = genome.with_(neuron_type="first_order")
            model = genome.build(self.num_classes, width_multiplier=self.width_multiplier,
                                 hybrid_bp=self.hybrid_bp)
        else:
            model = reg.MODELS.get(self.name)(self)
        if self.auto_build and not reg.is_first_order(target_neuron):
            from ..builder.auto_builder import AutoBuilder

            AutoBuilder(neuron_type=target_neuron, hybrid_bp=self.hybrid_bp,
                        convert_linear=self.convert_linear).convert(model)
        return model


@dataclass
class DataSpec(_SpecBase):
    """Which dataset to instantiate, and at what size."""

    name: str = "synthetic_classification"
    num_samples: int = 256
    test_samples: int = 128
    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    seed: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.name not in reg.DATASETS:
            raise ValueError(
                f"unknown dataset '{self.name}'; registered datasets: "
                f"{', '.join(reg.DATASETS.names())}"
            )
        if self.num_samples < 1:
            raise ValueError(f"num_samples must be positive, got {self.num_samples}")

    def build(self, train: bool = True):
        """Instantiate the train (or test) split."""
        self.validate()
        return reg.DATASETS.get(self.name)(self, train)

    @property
    def input_shape(self):
        return (self.channels, self.image_size, self.image_size)


@dataclass
class TrainSpec(_SpecBase):
    """The training recipe (paper Sec. 5.2, scaled by the caller)."""

    trainer: str = "classifier"
    optimizer: str = "sgd"
    epochs: int = 2
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    scheduler: str = "cosine"
    label_smoothing: float = 0.0
    max_batches_per_epoch: Optional[int] = None
    seed: int = 0
    # ------------------------------------------------ engine fields (spec v2)
    #: directory receiving full training checkpoints (``None`` disables them).
    checkpoint_dir: Optional[str] = None
    #: write a checkpoint every this many completed epochs.
    checkpoint_every: int = 1
    #: resume from this checkpoint file before training further.
    resume_from: Optional[str] = None
    #: stop cleanly once this many total epochs are complete (CI interrupt).
    stop_after_epoch: Optional[int] = None
    #: overlap batch assembly with compute via :class:`PrefetchDataLoader`.
    prefetch: bool = False
    #: bounded-queue depth of the prefetching pipeline.
    prefetch_depth: int = 2

    def validate(self) -> None:
        if self.trainer not in reg.TRAINERS:
            raise ValueError(
                f"unknown trainer '{self.trainer}'; registered trainers: "
                f"{', '.join(reg.TRAINERS.names())}"
            )
        if self.optimizer not in reg.OPTIMIZERS:
            raise ValueError(
                f"unknown optimizer '{self.optimizer}'; registered optimizers: "
                f"{', '.join(reg.OPTIMIZERS.names())}"
            )
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError(
                f"epochs and batch_size must be positive, got {self.epochs}/{self.batch_size}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be at least 1, got {self.checkpoint_every}"
            )
        if self.stop_after_epoch is not None and self.stop_after_epoch < 1:
            raise ValueError(
                f"stop_after_epoch must be at least 1, got {self.stop_after_epoch}"
            )
        if self.prefetch_depth < 1:
            raise ValueError(
                f"prefetch_depth must be at least 1, got {self.prefetch_depth}"
            )


@dataclass
class ProfileSpec(_SpecBase):
    """Profiling knobs for the ``profile`` pipeline step."""

    batch_size: int = 256
    latency: bool = False
    latency_repeats: int = 3
    per_layer: bool = False
    #: also time the compiled no-grad forward (fills compiled_ms_per_batch).
    compiled: bool = False
    #: compute backend for the compiled timing (repro.backends registry name).
    backend: str = "numpy"

    def validate(self) -> None:
        from ..backends import backend_names

        if self.backend not in backend_names():
            raise ValueError(
                f"unknown profile backend '{self.backend}'; registered "
                f"backends: {', '.join(backend_names())}")


@dataclass
class PPMLSpec(_SpecBase):
    """PPML conversion strategy and protocol for the ``ppml`` step."""

    strategy: str = "quadratic_no_relu"
    protocol: str = "delphi"

    def validate(self) -> None:
        from ..ppml import available_protocols

        if self.strategy not in ("square", "quadratic", "quadratic_no_relu"):
            raise ValueError(f"unknown ppml strategy '{self.strategy}'")
        if self.protocol not in available_protocols():
            raise ValueError(
                f"unknown ppml protocol '{self.protocol}'; known: {available_protocols()}"
            )


@dataclass
class SearchSpec(_SpecBase):
    """Design-exploration settings for the ``search`` step."""

    strategy: str = "random"
    budget: int = 8
    top: int = 5
    epochs: int = 1
    batch_size: int = 16
    max_batches_per_epoch: Optional[int] = 4
    lr: float = 0.05
    #: keyword arguments of :class:`repro.explore.SearchSpace`.
    space: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.strategy not in ("random", "evolution"):
            raise ValueError(f"unknown search strategy '{self.strategy}'")
        if self.budget < 1:
            raise ValueError(f"search budget must be positive, got {self.budget}")

    def build_space(self):
        from ..explore.space import SearchSpace

        space = dict(self.space)
        for key in ("width_choices", "neuron_types"):
            if key in space:
                space[key] = tuple(space[key])
        return SearchSpace(**space)


@dataclass
class ExperimentSpec(_SpecBase):
    """One declarative experiment: build → fit → evaluate → profile → ppml."""

    name: str = "experiment"
    version: int = SPEC_VERSION
    seed: int = 0
    model: ModelSpec = field(default_factory=ModelSpec)
    data: DataSpec = field(default_factory=DataSpec)
    train: TrainSpec = field(default_factory=TrainSpec)
    profile: ProfileSpec = field(default_factory=ProfileSpec)
    ppml: PPMLSpec = field(default_factory=PPMLSpec)
    search: Optional[SearchSpec] = None
    #: pipeline steps executed by :meth:`repro.experiment.Experiment.run`.
    steps: List[str] = field(default_factory=lambda: ["build", "fit", "evaluate",
                                                      "profile", "ppml"])

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        if not isinstance(self.version, int) or not 1 <= self.version <= SPEC_VERSION:
            raise ValueError(
                f"unsupported spec version {self.version!r}; this library reads "
                f"versions 1..{SPEC_VERSION}"
            )
        unknown = [step for step in self.steps if step not in PIPELINE_STEPS]
        if unknown:
            raise ValueError(f"unknown pipeline step(s) {unknown}; valid: {PIPELINE_STEPS}")
        if "search" in self.steps and self.search is None:
            raise ValueError("the 'search' step requires a SearchSpec under 'search'")
        self.model.validate()
        self.data.validate()
        self.train.validate()
        self.profile.validate()
        self.ppml.validate()
        if self.search is not None:
            self.search.validate()

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "version": self.version,
            "seed": self.seed,
            "model": self.model.to_dict(),
            "data": self.data.to_dict(),
            "train": self.train.to_dict(),
            "profile": self.profile.to_dict(),
            "ppml": self.ppml.to_dict(),
            "steps": list(self.steps),
        }
        if self.search is not None:
            data["search"] = self.search.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        data = dict(data)
        sections = {
            "model": ModelSpec,
            "data": DataSpec,
            "train": TrainSpec,
            "profile": ProfileSpec,
            "ppml": PPMLSpec,
        }
        kwargs: Dict[str, Any] = {}
        for key, section_cls in sections.items():
            if key in data:
                kwargs[key] = section_cls.from_dict(data.pop(key))
        if data.get("search") is not None:
            kwargs["search"] = SearchSpec.from_dict(data.pop("search"))
        else:
            data.pop("search", None)
        spec = _from_known_fields(cls, {**data, **kwargs})
        return spec

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> str:
        """Write the spec as JSON and return ``path``."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        with open(path) as fh:
            return cls.from_json(fh.read())
