"""Light-weight experiment logging and table rendering.

The benchmark harness prints paper-style tables (Table 1 … Table 6); this
module centralises the fixed-width formatting so every bench produces
consistent, diff-able output.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence


class MetricLogger:
    """Accumulate scalar metrics per step and render running averages."""

    def __init__(self, name: str = "train") -> None:
        self.name = name
        self.history: Dict[str, List[float]] = {}
        self._start = time.perf_counter()

    def log(self, **metrics: float) -> None:
        for key, value in metrics.items():
            self.history.setdefault(key, []).append(float(value))

    def mean(self, key: str, window: Optional[int] = None) -> float:
        values = self.history.get(key, [])
        if not values:
            return float("nan")
        if window:
            values = values[-window:]
        return sum(values) / len(values)

    def last(self, key: str) -> float:
        values = self.history.get(key, [])
        return values[-1] if values else float("nan")

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def summary(self) -> Dict[str, float]:
        return {key: self.mean(key) for key in self.history}


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "",
                 float_fmt: str = "{:.4g}") -> str:
    """Render a fixed-width text table (used by every benchmark)."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([
            float_fmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "",
                file=None) -> None:
    """Print a formatted table to stdout (or a file-like object)."""
    print(format_table(headers, rows, title=title), file=file or sys.stdout)
