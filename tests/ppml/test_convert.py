"""Tests for the ReLU → PPML-friendly model conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro import models, nn
from repro.autodiff.tensor import Tensor
from repro.nn.layers.activations import Identity, ReLU, Square
from repro.nn.layers.pooling import AvgPool2d, MaxPool2d
from repro.ppml import (
    count_relu_modules,
    ppml_savings,
    remove_activations,
    replace_maxpool_with_avgpool,
    replace_relu_with_square,
    to_ppml_friendly,
)
from repro.quadratic.layers.qconv import QuadraticConv2d


def tiny_vgg():
    return models.vgg8(num_classes=4, width_multiplier=0.1)


def forward_ok(model, image_size: int = 32) -> tuple:
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3, image_size, image_size))
               .astype(np.float32))
    return model(x).shape


def test_square_activation_forward_and_gradient():
    sq = Square(scale=2.0, linear=0.5)
    x = Tensor(np.array([[1.0, -2.0, 3.0]], dtype=np.float32), requires_grad=True)
    y = sq(x)
    np.testing.assert_allclose(y.data, 2.0 * x.data ** 2 + 0.5 * x.data, rtol=1e-6)
    y.sum().backward()
    np.testing.assert_allclose(x.grad, 4.0 * x.data + 0.5, rtol=1e-6)


def test_count_relu_modules():
    model = tiny_vgg()
    assert count_relu_modules(model) == 5  # one ReLU per conv block in VGG-8


def test_replace_relu_with_square_inplace():
    model = tiny_vgg()
    replaced = replace_relu_with_square(model)
    assert replaced == 5
    assert count_relu_modules(model) == 0
    squares = [m for _, m in model.named_modules() if isinstance(m, Square)]
    assert len(squares) == 5
    # Replacement instances are not shared.
    assert len({id(m) for m in squares}) == 5
    assert forward_ok(model) == (2, 4)


def test_remove_activations_uses_identity():
    model = tiny_vgg()
    removed = remove_activations(model)
    assert removed == 5
    assert count_relu_modules(model) == 0
    assert any(isinstance(m, Identity) for _, m in model.named_modules())
    assert forward_ok(model) == (2, 4)


def test_replace_maxpool_with_avgpool_preserves_geometry():
    model = tiny_vgg()
    pools_before = [m for _, m in model.named_modules() if isinstance(m, MaxPool2d)]
    replaced = replace_maxpool_with_avgpool(model)
    assert replaced == len(pools_before) == 5
    assert not any(isinstance(m, MaxPool2d) for _, m in model.named_modules())
    assert forward_ok(model) == (2, 4)


def test_skip_names_protects_layers():
    model = tiny_vgg()
    replaced = replace_relu_with_square(model, skip_names=("features.2",))
    assert replaced == 4
    assert count_relu_modules(model) == 1


def test_to_ppml_friendly_square_strategy():
    model = tiny_vgg()
    converted, report = to_ppml_friendly(model, strategy="square", inplace=False)
    assert report.strategy == "square"
    assert report.relu_modules_before == 5 and report.relu_modules_after == 0
    assert report.activations_replaced == 5
    assert report.maxpools_replaced == 5
    assert report.layers_quadratized == 0
    assert report.relu_free
    # Parameters unchanged by activation substitution.
    assert report.parameter_ratio == pytest.approx(1.0)
    # inplace=False leaves the original untouched.
    assert count_relu_modules(model) == 5
    assert forward_ok(converted) == (2, 4)


def test_to_ppml_friendly_quadratic_no_relu_strategy():
    model = tiny_vgg()
    converted, report = to_ppml_friendly(model, strategy="quadratic_no_relu", inplace=False)
    assert report.layers_quadratized == 5
    assert report.relu_modules_after == 0
    assert report.parameter_ratio > 1.0  # three weight sets per quadratic conv
    assert any(isinstance(m, QuadraticConv2d) for _, m in converted.named_modules())
    assert forward_ok(converted) == (2, 4)


def test_to_ppml_friendly_quadratic_keeps_relu():
    model = tiny_vgg()
    converted, report = to_ppml_friendly(model, strategy="quadratic", inplace=False)
    assert report.layers_quadratized == 5
    assert report.relu_modules_after == 5
    assert not report.relu_free


def test_to_ppml_friendly_unknown_strategy():
    with pytest.raises(ValueError):
        to_ppml_friendly(tiny_vgg(), strategy="garbled-everything")


def test_ppml_savings_quadratic_conversion_wins_under_delphi():
    model = tiny_vgg()
    converted, _ = to_ppml_friendly(model, strategy="quadratic_no_relu", inplace=False)
    savings = ppml_savings(model, converted, (3, 32, 32), protocol="delphi")
    assert savings.latency_ratio < 0.5
    assert savings.communication_ratio < 0.5
    assert not savings.became_runnable  # Delphi could already run the ReLU model


def test_ppml_savings_unlocks_cryptonets():
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4),
    )
    converted, _ = to_ppml_friendly(model, strategy="square", inplace=False)
    savings = ppml_savings(model, converted, (3, 16, 16), protocol="cryptonets")
    assert not savings.before.runnable
    assert savings.after.runnable
    assert savings.became_runnable
    assert savings.latency_ratio == 0.0
