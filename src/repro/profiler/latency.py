"""Latency profiling: training and inference time per batch (Table 3 columns)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Module


@dataclass
class LatencyReport:
    """Per-batch timing results in milliseconds."""

    train_ms_per_batch: float
    inference_ms_per_batch: float
    batch_size: int
    warmup_iterations: int
    timed_iterations: int


def _median_ms(samples) -> float:
    return float(np.median(np.asarray(samples)) * 1000.0)


def profile_latency(model: Module, input_shape: Tuple[int, int, int], batch_size: int = 8,
                    num_classes: Optional[int] = None, warmup: int = 1,
                    iterations: int = 3, seed: int = 0) -> LatencyReport:
    """Measure train (forward+backward) and inference (forward-only) time per batch.

    The absolute numbers are CPU times on the NumPy substrate; the benchmark
    tables report them alongside the paper's GPU milliseconds because only the
    *relative* ordering between model variants is expected to transfer.
    """
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    x = Tensor(rng.standard_normal((batch_size, c, h, w)).astype(np.float32))
    labels = rng.integers(0, num_classes, size=batch_size) if num_classes else None
    loss_fn = CrossEntropyLoss()

    # ---- training iteration timing
    model.train(True)
    train_samples = []
    for i in range(warmup + iterations):
        model.zero_grad()
        start = time.perf_counter()
        out = model(x)
        loss = loss_fn(out, labels) if labels is not None and out.ndim == 2 else out.sum()
        loss.backward()
        elapsed = time.perf_counter() - start
        if i >= warmup:
            train_samples.append(elapsed)
    model.zero_grad()

    # ---- inference timing
    model.train(False)
    infer_samples = []
    with no_grad():
        for i in range(warmup + iterations):
            start = time.perf_counter()
            model(x)
            elapsed = time.perf_counter() - start
            if i >= warmup:
                infer_samples.append(elapsed)
    model.train(True)

    return LatencyReport(
        train_ms_per_batch=_median_ms(train_samples),
        inference_ms_per_batch=_median_ms(infer_samples),
        batch_size=batch_size,
        warmup_iterations=warmup,
        timed_iterations=iterations,
    )
