"""Miscellaneous layers: Dropout, Flatten, Upsample, ZeroPad2d."""

from __future__ import annotations

import numpy as np

from ...autodiff.tensor import Tensor
from .. import functional as F
from ..module import Module


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.5, seed: int | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Flatten(Module):
    """Flatten all dimensions after ``start_dim``."""

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = int(start_dim)

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=self.start_dim)

    def extra_repr(self) -> str:
        return f"start_dim={self.start_dim}"


class UpsampleNearest2d(Module):
    """Nearest-neighbour spatial upsampling (SNGAN generator blocks)."""

    def __init__(self, scale_factor: int = 2) -> None:
        super().__init__()
        self.scale_factor = int(scale_factor)

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest(x, scale_factor=self.scale_factor)

    def extra_repr(self) -> str:
        return f"scale_factor={self.scale_factor}"


class ZeroPad2d(Module):
    """Zero padding of the two spatial axes (left, right, top, bottom)."""

    def __init__(self, padding) -> None:
        super().__init__()
        if isinstance(padding, int):
            padding = (padding,) * 4
        self.padding = tuple(padding)

    def forward(self, x: Tensor) -> Tensor:
        return x.pad2d(self.padding)

    def extra_repr(self) -> str:
        return f"padding={self.padding}"
