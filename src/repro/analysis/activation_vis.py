"""Activation-attention visualization (paper Fig. 10).

The paper's qualitative claim is that first-order convolution layers respond
to *edges* (object and background contours) while quadratic layers respond to
*whole objects*.  This module reproduces the visualization tool behind that
figure and adds a quantitative summary so the claim can be checked in a
benchmark:

* :func:`activation_attention` — channel-aggregated attention map of any
  layer's response to an input batch (captured with a forward hook);
* :func:`attention_statistics` — given an attention map and the object mask /
  bounding box, how much attention mass falls inside the object versus on its
  boundary (the edge band);
* :func:`render_ascii` — terminal rendering of attention maps so the benchmark
  output is self-contained without image files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..nn.module import Module


def capture_activation(model: Module, layer: Module, images: np.ndarray) -> np.ndarray:
    """Run a forward pass and return the named layer's output activations."""
    captured: List[np.ndarray] = []

    def hook(_module, _inputs, output):
        if isinstance(output, Tensor):
            captured.append(output.data.copy())

    remove = layer.register_forward_hook(hook)
    was_training = model.training
    model.train(False)
    try:
        with no_grad():
            model(Tensor(np.asarray(images, dtype=np.float32)))
    finally:
        remove()
        model.train(was_training)
    if not captured:
        raise RuntimeError("forward hook captured no activation; is the layer part of the model?")
    return captured[-1]


def activation_attention(activation: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Aggregate a (N, C, H, W) activation into per-image attention maps (N, H, W).

    Attention is the mean absolute response over channels — the same
    channel-aggregation the paper's visualization tool applies before
    rendering.
    """
    attention = np.abs(activation).mean(axis=1)
    if normalize:
        flat = attention.reshape(attention.shape[0], -1)
        lo = flat.min(axis=1)[:, None, None]
        hi = flat.max(axis=1)[:, None, None]
        attention = (attention - lo) / np.maximum(hi - lo, 1e-9)
    return attention


@dataclass
class AttentionStats:
    """How attention mass distributes relative to an object region."""

    inside_object: float
    on_edge_band: float
    on_background: float

    @property
    def object_to_edge_ratio(self) -> float:
        """> 1 means the layer attends to whole objects more than to their edges."""
        return self.inside_object / max(self.on_edge_band, 1e-9)


def attention_statistics(attention: np.ndarray, object_mask: np.ndarray,
                         edge_width: int = 2) -> AttentionStats:
    """Split one attention map's mass into object interior / edge band / background.

    Parameters
    ----------
    attention : (H, W) normalised attention map.
    object_mask : (H, W) boolean mask of the object's interior (any resolution;
        it is nearest-resized to the attention resolution).
    edge_width : int
        Width in attention pixels of the band around the object boundary that
        counts as "edge".
    """
    h, w = attention.shape
    mask = _resize_mask(object_mask, (h, w))

    # Edge band: dilation minus erosion of the object mask.
    dilated = _binary_dilate(mask, edge_width)
    eroded = _binary_erode(mask, edge_width)
    edge_band = dilated & ~eroded
    interior = eroded
    background = ~dilated

    total = float(attention.sum()) + 1e-9
    inside = float(attention[interior].sum()) / total if interior.any() else 0.0
    edge = float(attention[edge_band].sum()) / total if edge_band.any() else 0.0
    back = float(attention[background].sum()) / total if background.any() else 0.0
    return AttentionStats(inside_object=inside, on_edge_band=edge, on_background=back)


def _resize_mask(mask: np.ndarray, target_hw: Tuple[int, int]) -> np.ndarray:
    h, w = target_hw
    src_h, src_w = mask.shape
    rows = (np.arange(h) * src_h // h).clip(0, src_h - 1)
    cols = (np.arange(w) * src_w // w).clip(0, src_w - 1)
    return mask[np.ix_(rows, cols)].astype(bool)


def _binary_dilate(mask: np.ndarray, iterations: int) -> np.ndarray:
    out = mask.copy()
    for _ in range(iterations):
        padded = np.pad(out, 1, mode="constant")
        out = (
            padded[1:-1, 1:-1] | padded[:-2, 1:-1] | padded[2:, 1:-1]
            | padded[1:-1, :-2] | padded[1:-1, 2:]
        )
    return out


def _binary_erode(mask: np.ndarray, iterations: int) -> np.ndarray:
    out = mask.copy()
    for _ in range(iterations):
        padded = np.pad(out, 1, mode="constant", constant_values=True)
        out = (
            padded[1:-1, 1:-1] & padded[:-2, 1:-1] & padded[2:, 1:-1]
            & padded[1:-1, :-2] & padded[1:-1, 2:]
        )
    return out


def render_ascii(attention: np.ndarray, width: int = 32) -> str:
    """Render an attention map as ASCII art (dark → light ramp)."""
    ramp = " .:-=+*#%@"
    h, w = attention.shape
    cols = (np.arange(width) * w // width).clip(0, w - 1)
    rows = (np.arange(max(width // 2, 1)) * h // max(width // 2, 1)).clip(0, h - 1)
    sampled = attention[np.ix_(rows, cols)]
    indices = (sampled * (len(ramp) - 1)).astype(int)
    return "\n".join("".join(ramp[i] for i in row) for row in indices)


def compare_first_layer_attention(first_order_model: Module, quadratic_model: Module,
                                  first_layer_fo: Module, first_layer_q: Module,
                                  images: np.ndarray,
                                  object_masks: Optional[np.ndarray] = None
                                  ) -> Dict[str, object]:
    """Side-by-side Fig. 10 comparison of first-layer attention maps.

    Returns the attention maps and, when object masks are supplied, the mean
    object-to-edge attention ratio per model (the paper's qualitative claim is
    that this ratio is higher for the quadratic layer).
    """
    act_fo = capture_activation(first_order_model, first_layer_fo, images)
    act_q = capture_activation(quadratic_model, first_layer_q, images)
    attention_fo = activation_attention(act_fo)
    attention_q = activation_attention(act_q)
    result: Dict[str, object] = {
        "first_order_attention": attention_fo,
        "quadratic_attention": attention_q,
    }
    if object_masks is not None:
        ratios_fo, ratios_q = [], []
        for i in range(len(images)):
            ratios_fo.append(attention_statistics(attention_fo[i], object_masks[i]).object_to_edge_ratio)
            ratios_q.append(attention_statistics(attention_q[i], object_masks[i]).object_to_edge_ratio)
        result["first_order_object_edge_ratio"] = float(np.mean(ratios_fo))
        result["quadratic_object_edge_ratio"] = float(np.mean(ratios_q))
    return result
