"""Tests of the analysis tools: activation attention, distribution summaries."""

import numpy as np
import pytest

from repro import nn
from repro.analysis import (
    DistributionSummary,
    activation_attention,
    activation_distributions,
    attention_statistics,
    capture_activation,
    compare_first_layer_attention,
    gradient_distributions,
    histogram,
    render_ascii,
    weight_distributions,
)
from repro.autodiff import randn
from repro.builder import QuadraticModelConfig
from repro.models import SmallConvNet


class TestActivationAttention:
    def _model(self, neuron_type="first_order"):
        return SmallConvNet(num_classes=4,
                            config=QuadraticModelConfig(neuron_type=neuron_type,
                                                        width_multiplier=0.5))

    def test_capture_activation_shape(self):
        model = self._model()
        layer = model.features[0]
        images = np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)
        act = capture_activation(model, layer, images)
        assert act.shape[0] == 2 and act.ndim == 4

    def test_capture_requires_layer_in_model(self):
        model = self._model()
        other_layer = nn.Conv2d(3, 4, 3)
        with pytest.raises(RuntimeError):
            capture_activation(model, other_layer, np.zeros((1, 3, 32, 32), dtype=np.float32))

    def test_attention_normalised_to_unit_range(self):
        act = np.random.default_rng(0).normal(size=(3, 8, 10, 10)).astype(np.float32)
        attention = activation_attention(act)
        assert attention.shape == (3, 10, 10)
        assert attention.min() >= 0.0 and attention.max() <= 1.0 + 1e-6

    def test_attention_statistics_partition_sums_to_one(self):
        attention = np.random.default_rng(0).random((16, 16)).astype(np.float32)
        mask = np.zeros((16, 16), dtype=bool)
        mask[4:12, 4:12] = True
        stats = attention_statistics(attention, mask)
        total = stats.inside_object + stats.on_edge_band + stats.on_background
        assert total == pytest.approx(1.0, abs=0.05)

    def test_attention_statistics_detects_object_focus(self):
        attention = np.zeros((16, 16), dtype=np.float32)
        attention[6:10, 6:10] = 1.0          # all attention inside the object
        mask = np.zeros((16, 16), dtype=bool)
        mask[4:12, 4:12] = True
        stats = attention_statistics(attention, mask)
        assert stats.object_to_edge_ratio > 1.0

    def test_attention_statistics_detects_edge_focus(self):
        attention = np.zeros((16, 16), dtype=np.float32)
        mask = np.zeros((16, 16), dtype=bool)
        mask[4:12, 4:12] = True
        # Attention only on the mask boundary.
        attention[4, 4:12] = 1.0
        attention[11, 4:12] = 1.0
        stats = attention_statistics(attention, mask, edge_width=2)
        assert stats.object_to_edge_ratio < 1.0

    def test_mask_resizing(self):
        attention = np.random.default_rng(1).random((8, 8)).astype(np.float32)
        mask = np.zeros((32, 32), dtype=bool)
        mask[8:24, 8:24] = True
        stats = attention_statistics(attention, mask)
        assert np.isfinite(stats.inside_object)

    def test_render_ascii(self):
        attention = np.linspace(0, 1, 64).reshape(8, 8).astype(np.float32)
        art = render_ascii(attention, width=16)
        assert isinstance(art, str) and len(art.splitlines()) >= 4

    def test_compare_first_layer_attention(self):
        fo_model = self._model("first_order")
        q_model = self._model("OURS")
        images = np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)
        masks = np.zeros((2, 32, 32), dtype=bool)
        masks[:, 8:24, 8:24] = True
        result = compare_first_layer_attention(fo_model, q_model, fo_model.features[0],
                                               q_model.features[0], images, masks)
        assert result["first_order_attention"].shape == (2, 32, 32)
        assert "quadratic_object_edge_ratio" in result


class TestDistributions:
    def test_summary_from_array(self):
        summary = DistributionSummary.from_array("x", np.array([0.0, 1.0, -1.0, 0.0]))
        assert summary.mean == pytest.approx(0.0)
        assert summary.minimum == -1.0 and summary.maximum == 1.0
        assert summary.fraction_near_zero == pytest.approx(0.5)

    def test_summary_empty_array(self):
        summary = DistributionSummary.from_array("x", np.array([]))
        assert np.isnan(summary.mean)

    def test_weight_distributions_cover_all_params(self):
        model = SmallConvNet(num_classes=4, config=QuadraticModelConfig(width_multiplier=0.5))
        summaries = weight_distributions(model)
        assert len(summaries) == len(list(model.named_parameters()))

    def test_gradient_distributions_after_backward(self):
        model = SmallConvNet(num_classes=4, config=QuadraticModelConfig(width_multiplier=0.5))
        model(randn(2, 3, 32, 32)).sum().backward()
        summaries = gradient_distributions(model)
        assert any(s.std > 0 for s in summaries)

    def test_activation_distributions_filtered(self):
        model = SmallConvNet(num_classes=4, config=QuadraticModelConfig(width_multiplier=0.5))
        images = np.zeros((2, 3, 32, 32), dtype=np.float32)
        stats = activation_distributions(model, images, layer_names=["features"])
        assert len(stats) > 0
        assert all("features" in name for name in stats)

    def test_quadratic_activations_have_heavier_tails(self):
        """Design insight 2: the second-order term produces extreme activations,
        which is why BatchNorm is essential for QDNNs."""
        rng = np.random.default_rng(0)
        images = rng.normal(size=(4, 3, 32, 32)).astype(np.float32)
        fo = SmallConvNet(num_classes=4,
                          config=QuadraticModelConfig(neuron_type="first_order",
                                                      use_batchnorm=False, width_multiplier=0.5))
        quad = SmallConvNet(num_classes=4,
                            config=QuadraticModelConfig(neuron_type="T3",
                                                        use_batchnorm=False, width_multiplier=0.5))
        fo_stats = activation_distributions(fo, images, layer_names=["features.0"])
        quad_stats = activation_distributions(quad, images, layer_names=["features.0"])
        fo_max = max(abs(s.maximum) for s in fo_stats.values())
        quad_max = max(abs(s.maximum) for s in quad_stats.values())
        assert quad_max > fo_max

    def test_histogram(self):
        result = histogram(np.random.default_rng(0).normal(size=1000), bins=10)
        assert result["counts"].sum() == 1000
        assert len(result["edges"]) == 11
