"""Prefetching data pipeline: overlap batch assembly with compute.

The synchronous :class:`~repro.data.dataloader.DataLoader` assembles each
batch (indexing the dataset, running per-sample transforms, collating) on the
training thread, so transform time and compute time add up.
:class:`PrefetchDataLoader` wraps any loader and moves that assembly onto a
background worker thread feeding a bounded queue: while the trainer crunches
batch *k*, the worker is already building batches *k+1 … k+depth*.  NumPy
releases the GIL inside its kernels, so the two threads genuinely overlap on
multi-core hosts.

Determinism is preserved exactly:

* the worker iterates the *wrapped* loader, so batch order, shuffling RNG
  advancement and collation are bit-identical to a synchronous epoch;
* ``max_batches`` stops the worker at the cap, so per-sample transform RNGs
  (e.g. :class:`~repro.data.transforms.RandomCrop`) never advance past what a
  capped synchronous epoch would have consumed.

``benchmarks/bench_dataloader_prefetch.py`` gates the speedup on
transform-heavy configurations.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Iterator, Optional


class _EndOfEpoch:
    """Sentinel the worker enqueues after the last batch."""


class _WorkerError:
    """Wrapper carrying an exception from the worker to the consumer."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


class PrefetchDataLoader:
    """Iterate a wrapped loader with a background prefetching worker.

    Parameters
    ----------
    loader : iterable of batches
        The synchronous loader to wrap (usually a :class:`DataLoader`).
    depth : int
        Bound of the prefetch queue — how many assembled batches may wait
        ahead of the consumer.  Small values (2–4) capture almost all of the
        overlap without holding many batches in memory.
    max_batches : int, optional
        Stop assembling after this many batches per epoch.  Pass the training
        loop's ``max_batches_per_epoch`` here so transform RNG streams match a
        capped synchronous run bit for bit.
    """

    def __init__(self, loader: Any, depth: int = 2,
                 max_batches: Optional[int] = None) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be at least 1, got {depth}")
        if max_batches is not None and max_batches < 0:
            raise ValueError(f"max_batches must be non-negative, got {max_batches}")
        self.loader = loader
        self.depth = int(depth)
        self.max_batches = max_batches

    # ------------------------------------------------------------- delegation
    @property
    def dataset(self):
        return self.loader.dataset

    @property
    def batch_size(self):
        return self.loader.batch_size

    def rng_state(self) -> dict:
        return self.loader.rng_state()

    def set_rng_state(self, state: dict) -> None:
        self.loader.set_rng_state(state)

    def __len__(self) -> int:
        n = len(self.loader)
        if self.max_batches is not None:
            return min(n, self.max_batches)
        return n

    # -------------------------------------------------------------- iteration
    def __iter__(self) -> Iterator:
        batches: "queue.Queue" = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def assemble() -> None:
            produced = 0
            try:
                source = iter(self.loader)
                while True:
                    # Check the cap BEFORE pulling: pulling batch k+1 would run
                    # its transforms and advance their RNGs past what a capped
                    # synchronous epoch consumes.
                    if self.max_batches is not None and produced >= self.max_batches:
                        break
                    try:
                        batch = next(source)
                    except StopIteration:
                        break
                    # Poll `stop` while the queue is full so an early-exiting
                    # consumer (break / divergence) never leaves us blocked.
                    while not stop.is_set():
                        try:
                            batches.put(batch, timeout=0.05)
                            break
                        except queue.Full:
                            continue
                    if stop.is_set():
                        return
                    produced += 1
                batches.put(_EndOfEpoch())
            except BaseException as error:  # propagate dataset/transform failures
                while not stop.is_set():
                    try:
                        batches.put(_WorkerError(error), timeout=0.05)
                        break
                    except queue.Full:  # consumer busy; retry until it drains or stops
                        continue

        worker = threading.Thread(target=assemble, name="repro-prefetch", daemon=True)
        worker.start()
        try:
            while True:
                item = batches.get()
                if isinstance(item, _EndOfEpoch):
                    break
                if isinstance(item, _WorkerError):
                    raise item.error
                yield item
        finally:
            stop.set()
            # Drain so a worker blocked on put() can observe `stop` and exit.
            while True:
                try:
                    batches.get_nowait()
                except queue.Empty:
                    break
            worker.join(timeout=5.0)
