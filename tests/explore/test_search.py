"""Tests for the proxy evaluator and the search drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageClassification
from repro.explore import (
    ArchitectureGenome,
    CandidateEvaluation,
    EvolutionConfig,
    ProxyEvaluator,
    SearchResult,
    SearchSpace,
    evolutionary_search,
    random_search,
)

SPACE = SearchSpace(min_stages=2, max_stages=2, min_convs_per_stage=1, max_convs_per_stage=2,
                    width_choices=(8, 16), neuron_types=("first_order", "OURS"))


def tiny_evaluator(**overrides) -> ProxyEvaluator:
    train = SyntheticImageClassification(num_samples=48, num_classes=4, image_size=16,
                                         seed=0, split_seed=0)
    test = SyntheticImageClassification(num_samples=24, num_classes=4, image_size=16,
                                        seed=0, split_seed=1)
    defaults = dict(num_classes=4, image_size=16, epochs=1, batch_size=16,
                    max_batches_per_epoch=2, width_multiplier=0.5, seed=0)
    defaults.update(overrides)
    return ProxyEvaluator(train, test, **defaults)


class CountingEvaluator:
    """A deterministic, training-free evaluator for driver-behaviour tests."""

    def __init__(self):
        self.calls = 0

    def __call__(self, genome: ArchitectureGenome) -> CandidateEvaluation:
        self.calls += 1
        # A fixed deterministic "accuracy": wider + quadratic scores higher.
        score = sum(genome.stage_widths) / 100.0 + (0.3 if genome.is_quadratic else 0.0)
        return CandidateEvaluation(genome=genome, accuracy=score, train_accuracy=score,
                                   parameters=sum(genome.stage_widths) * 100,
                                   macs=10_000, training_memory_bytes=1e6, seconds=0.0)


# --------------------------------------------------------------------------- #
# ProxyEvaluator
# --------------------------------------------------------------------------- #

def test_proxy_evaluator_produces_finite_objectives():
    evaluator = tiny_evaluator()
    genome = ArchitectureGenome((1, 1), (8, 8), neuron_type="OURS")
    evaluation = evaluator(genome)
    assert 0.0 <= evaluation.accuracy <= 1.0
    assert evaluation.parameters > 0
    assert evaluation.macs > 0
    assert evaluation.training_memory_bytes > 0
    assert evaluation.seconds >= 0
    objectives = evaluation.objectives()
    assert set(objectives) == {"accuracy", "parameters", "macs", "training_memory_bytes"}
    assert all(np.isfinite(v) for v in objectives.values())


def test_proxy_evaluator_caches_by_genome_key():
    evaluator = tiny_evaluator()
    genome = ArchitectureGenome((1, 1), (8, 8), neuron_type="first_order")
    first = evaluator(genome)
    second = evaluator(ArchitectureGenome((1, 1), (8, 8), neuron_type="first_order"))
    assert first is second
    assert evaluator.evaluations == 1


def test_proxy_evaluator_quadratic_has_more_parameters():
    evaluator = tiny_evaluator()
    base = ArchitectureGenome((1, 1), (8, 8), neuron_type="first_order")
    quad = base.with_(neuron_type="OURS")
    assert evaluator(quad).parameters > evaluator(base).parameters


# --------------------------------------------------------------------------- #
# SearchResult
# --------------------------------------------------------------------------- #

def test_search_result_best_and_top():
    counting = CountingEvaluator()
    result = SearchResult()
    for widths in ((8, 8), (16, 16), (8, 16)):
        result.history.append(counting(ArchitectureGenome((1, 1), widths)))
    assert result.best.genome.stage_widths == (16, 16)
    top2 = result.top(2)
    assert len(top2) == 2 and top2[0].accuracy >= top2[1].accuracy


def test_search_result_best_empty_raises():
    with pytest.raises(ValueError):
        SearchResult().best


# --------------------------------------------------------------------------- #
# Random search
# --------------------------------------------------------------------------- #

def test_random_search_respects_budget_and_dedup():
    counting = CountingEvaluator()
    result = random_search(SPACE, counting, budget=12, seed=0)
    assert result.evaluations_used == 12
    assert len(result.history) <= 12
    assert counting.calls == len(result.history)
    keys = [e.genome.key() for e in result.history]
    assert len(keys) == len(set(keys))
    assert all(SPACE.contains(e.genome) for e in result.history)


def test_random_search_is_deterministic_per_seed():
    first = random_search(SPACE, CountingEvaluator(), budget=6, seed=3)
    second = random_search(SPACE, CountingEvaluator(), budget=6, seed=3)
    assert [e.genome.key() for e in first.history] == [e.genome.key() for e in second.history]


def test_random_search_invalid_budget():
    with pytest.raises(ValueError):
        random_search(SPACE, CountingEvaluator(), budget=0)


def test_random_search_callback_sees_every_evaluation():
    seen = []
    random_search(SPACE, CountingEvaluator(), budget=5, seed=1, callback=seen.append)
    assert all(isinstance(e, CandidateEvaluation) for e in seen)
    assert len(seen) >= 1


# --------------------------------------------------------------------------- #
# Evolutionary search
# --------------------------------------------------------------------------- #

def test_evolution_config_validation():
    with pytest.raises(ValueError):
        EvolutionConfig(population_size=1)
    with pytest.raises(ValueError):
        EvolutionConfig(generations=0)
    with pytest.raises(ValueError):
        EvolutionConfig(mutation_rate=1.5)
    with pytest.raises(ValueError):
        EvolutionConfig(elite_count=8, population_size=8)


def test_evolutionary_search_runs_and_tracks_evaluations():
    counting = CountingEvaluator()
    config = EvolutionConfig(population_size=4, generations=2, elite_count=1)
    generations_seen = []
    result = evolutionary_search(SPACE, counting, config, seed=0,
                                 callback=lambda g, pop: generations_seen.append((g, len(pop))))
    # Generation 0 evaluates the full population; each later generation
    # evaluates population_size - elite_count children.
    expected = config.population_size + config.generations * (config.population_size
                                                              - config.elite_count)
    assert result.evaluations_used == expected
    assert generations_seen == [(0, 4), (1, 4), (2, 4)]
    assert all(SPACE.contains(e.genome) for e in result.history)


def test_evolutionary_search_initial_population_validated():
    outside = ArchitectureGenome((1, 1, 1), (8, 8, 8))  # three stages, space allows two
    with pytest.raises(ValueError):
        evolutionary_search(SPACE, CountingEvaluator(), initial_population=[outside])


def test_evolutionary_search_matches_or_beats_random_with_same_budget():
    config = EvolutionConfig(population_size=4, generations=3, elite_count=1)
    budget = config.population_size + config.generations * (config.population_size
                                                            - config.elite_count)
    evolution = evolutionary_search(SPACE, CountingEvaluator(), config, seed=0)
    random_result = random_search(SPACE, CountingEvaluator(), budget=budget, seed=0)
    assert evolution.best.accuracy >= random_result.best.accuracy - 1e-9


def test_evolutionary_search_with_proxy_evaluator_smoke():
    evaluator = tiny_evaluator()
    config = EvolutionConfig(population_size=2, generations=1, elite_count=1)
    result = evolutionary_search(SPACE, evaluator, config, seed=0)
    assert result.evaluations_used == 3
    assert len(result.history) == 3
    front = result.pareto_front()
    assert 1 <= len(front) <= len({e.genome.key() for e in result.history})
