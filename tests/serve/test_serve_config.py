"""ServeConfig validation and round-tripping."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.workers == 2
        assert config.effective_watermark == config.workers * config.queue_depth

    def test_explicit_watermark_wins(self):
        assert ServeConfig(watermark=5).effective_watermark == 5

    @pytest.mark.parametrize("field, value", [
        ("workers", 0),
        ("max_batch_size", 0),
        ("max_wait", -0.1),
        ("queue_depth", 0),
        ("watermark", -1),
        ("max_retries", -1),
        ("cache_size", -1),
        ("request_timeout", 0),
        ("startup_timeout", -1.0),
        ("drain_timeout", 0),
        ("start_method", "thread"),
    ])
    def test_invalid_values_raise(self, field, value):
        with pytest.raises(ValueError):
            ServeConfig(**{field: value})

    def test_dict_round_trip(self):
        config = ServeConfig(workers=3, watermark=9, cache_size=0, port=0)
        clone = ServeConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServeConfig field"):
            ServeConfig.from_dict({"workres": 2})

    def test_with_returns_modified_copy(self):
        config = ServeConfig()
        changed = config.with_(workers=4)
        assert changed.workers == 4 and config.workers == 2


class TestSecureConfig:
    def test_secure_defaults_validate(self):
        config = ServeConfig(secure=True)
        assert config.protocol == ""            # deferred to the spec
        assert config.frac_bits == 12
        assert config.truncation == "nearest"
        assert config.triple_pool_depth == 0    # sized from the pipeline

    @pytest.mark.parametrize("field, value", [
        ("frac_bits", 0),
        ("frac_bits", 40),
        ("truncation", "round_up"),
        ("protocol", "quantum"),
        ("strategy", "prune"),
        ("triple_pool_depth", -1),
    ])
    def test_invalid_secure_values_raise(self, field, value):
        with pytest.raises(ValueError):
            ServeConfig(**{field: value})

    def test_secure_is_incompatible_with_fused_batching(self):
        with pytest.raises(ValueError, match="fused_batching"):
            ServeConfig(secure=True, fused_batching=True)

    def test_effective_triple_pool_depth(self):
        from repro.serve import MAX_PIPELINE_DEPTH

        # Auto sizing must cover the *maximum* reachable pipeline depth, or
        # the offline phase under-provisions exactly when the controller
        # ramps up.
        config = ServeConfig(secure=True, workers=3, max_batch_size=4)
        assert config.effective_triple_pool_depth == 3 * MAX_PIPELINE_DEPTH * 4
        pinned = ServeConfig(secure=True, workers=3, max_batch_size=4,
                             pipeline_depth=2)
        assert pinned.effective_triple_pool_depth == 3 * 2 * 4
        assert ServeConfig(secure=True,
                           triple_pool_depth=7).effective_triple_pool_depth == 7

    def test_pipeline_depth_bounds(self):
        from repro.serve import MAX_PIPELINE_DEPTH

        assert ServeConfig(pipeline_depth=0).effective_max_pipeline_depth \
            == MAX_PIPELINE_DEPTH
        assert ServeConfig(pipeline_depth=1).effective_max_pipeline_depth == 1
        for bad in (-1, MAX_PIPELINE_DEPTH + 1):
            with pytest.raises(ValueError):
                ServeConfig(pipeline_depth=bad)
        with pytest.raises(ValueError):
            ServeConfig(producer_workers=-1)

    def test_secure_dict_round_trip(self):
        config = ServeConfig(secure=True, protocol="gazelle", frac_bits=10,
                             truncation="stochastic", strategy="square",
                             triple_pool_depth=5, port=0)
        clone = ServeConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.to_dict()["secure"] is True
