"""Secure-inference benchmark: the paper's PPML claim, executed and gated.

The paper motivates quadratic layers by the cost of privacy-preserving
inference: hybrid protocols evaluate every ReLU with a garbled circuit while
a quadratic layer needs only cheap secure multiplications.  Until this
benchmark, the repo could only *predict* that with the static cost model;
now it *executes* both sides through :mod:`repro.ppml.runtime` — fixed-point
arithmetic with per-multiplication truncation, per-layer protocol traces —
and gates on what actually ran:

1. **Count integrity** — the executed traces of the ReLU baseline and of the
   ``quadratic_no_relu`` conversion must match ``ppml.analyse_model``'s
   static operation counts *exactly* (the cost tables stop being
   unverifiable claims).
2. **Garbled-circuit freedom** — the converted model's executed trace must
   contain zero garbled-circuit comparisons.
3. **The savings** — the conversion's measured online cost under Delphi must
   beat the ReLU baseline's (it wins by orders of magnitude; the gate asserts
   a conservative ``>= MIN_COST_RATIO`` margin).

It also *reports* (not gates) the fixed-point vs float accuracy drift on the
smoke preset: the trained model's test accuracy through the float compiled
path vs through the secure runtime, plus the raw logit drift and top-1
agreement, at the configured fractional bits.

Run with ``PYTHONPATH=src python benchmarks/bench_secure_inference.py``.
``--quick`` (or ``REPRO_BENCH_QUICK=1``) is the CI regression-gate mode:
fewer queries, identical assertions, same JSON artifact.
"""

from __future__ import annotations

import numpy as np

from common import fresh_seed, quick_mode, save_experiment

from repro import ppml
from repro.data.dataloader import DataLoader
from repro.experiment import Experiment, get_preset
from repro.inference import compile_model
from repro.training.classification import evaluate_classifier
from repro.utils.logging import format_table

#: fixed-point fractional bits of the secure execution
FRAC_BITS = 12
#: protocol pricing the executed traces
PROTOCOL = "delphi"
#: single-sample drift-measurement queries beyond the test split
DRIFT_SAMPLES = 32
QUICK_DRIFT_SAMPLES = 8

#: the measured ReLU-baseline online cost must exceed the converted model's
#: by at least this factor (the real gap is orders of magnitude larger)
MIN_COST_RATIO = 5.0


def secure_accuracy(secure: "ppml.SecureCompiledModel", loader: DataLoader) -> float:
    """Top-1 accuracy through the secure runtime (one batch per protocol run)."""
    correct, total = 0, 0
    for images, labels in loader:
        logits = secure(np.asarray(images, dtype=np.float32))
        correct += int((logits.argmax(axis=-1) == np.asarray(labels)).sum())
        total += len(labels)
    return correct / max(total, 1)


def main() -> None:
    quick = quick_mode()
    drift_samples = QUICK_DRIFT_SAMPLES if quick else DRIFT_SAMPLES
    fresh_seed()

    # The ReLU baseline: the smoke workload with first-order layers, trained
    # briefly so the accuracy comparison is about a real decision boundary.
    spec = get_preset("smoke")
    baseline_spec = spec.with_(model=spec.model.with_(neuron_type="first_order"))
    experiment = Experiment(baseline_spec)
    baseline = experiment.build()
    experiment.fit()
    baseline.eval()

    converted, conversion = ppml.to_ppml_friendly(baseline, strategy="quadratic_no_relu",
                                                  inplace=False)
    input_shape = tuple(spec.data.input_shape)
    config = ppml.SecureConfig(protocol=PROTOCOL, frac_bits=FRAC_BITS)
    secure_baseline = ppml.secure_compile(baseline, config)
    secure_converted = ppml.secure_compile(converted, config)

    # ---- 1. count integrity: executed trace == static analysis, both models
    probe = np.random.default_rng(0).standard_normal((1,) + input_shape).astype(np.float32)
    _, baseline_trace = secure_baseline.run(probe)
    _, converted_trace = secure_converted.run(probe)
    baseline_static = ppml.analyse_model(baseline, input_shape, protocol=PROTOCOL)
    converted_static = ppml.analyse_model(converted, input_shape, protocol=PROTOCOL)
    assert baseline_trace.matches_report(baseline_static), (
        f"baseline executed trace disagrees with the static analysis: "
        f"{baseline_trace.count_diff([l.operations for l in baseline_static.layers])}")
    assert converted_trace.matches_report(converted_static), (
        f"converted executed trace disagrees with the static analysis: "
        f"{converted_trace.count_diff([l.operations for l in converted_static.layers])}")

    # ---- 2. the conversion removed every garbled-circuit operation
    assert converted_trace.garbled_free, (
        f"quadratic_no_relu conversion still executed "
        f"{converted_trace.total_relu_ops} garbled-circuit comparisons")

    # ---- 3. measured online cost: conversion must beat the ReLU baseline
    baseline_cost = baseline_trace.estimate()
    converted_cost = converted_trace.estimate()
    cost_ratio = baseline_cost.online_microseconds / converted_cost.online_microseconds
    comm_ratio = baseline_cost.online_bytes / max(converted_cost.online_bytes, 1e-9)
    assert cost_ratio >= MIN_COST_RATIO, (
        f"measured online cost of the quadratic_no_relu conversion "
        f"({converted_cost.online_milliseconds:.2f} ms) is not at least "
        f"{MIN_COST_RATIO}x cheaper than the ReLU baseline "
        f"({baseline_cost.online_milliseconds:.2f} ms)")

    # ---- fixed-point vs float accuracy drift (reported, not gated)
    _, test_set = experiment.datasets()
    loader = DataLoader(test_set, batch_size=spec.train.batch_size)
    float_accuracy = evaluate_classifier(baseline, loader)
    fixed_accuracy = secure_accuracy(secure_baseline, loader)

    reference = compile_model(converted)
    rng = np.random.default_rng(1)
    samples = rng.standard_normal((drift_samples,) + input_shape).astype(np.float32)
    max_drift, agree = 0.0, 0
    for sample in samples:
        batch = sample[None, ...]
        secure_out, _ = secure_converted.run(batch)
        float_out = reference(batch)
        max_drift = max(max_drift, float(np.max(np.abs(secure_out - float_out))))
        agree += int(np.argmax(secure_out) == np.argmax(float_out))

    print(format_table(
        ["Metric", "ReLU baseline", "quadratic_no_relu"],
        [
            ["measured MACs", f"{baseline_trace.total_macs:,}",
             f"{converted_trace.total_macs:,}"],
            ["measured GC comparisons", f"{baseline_trace.total_relu_ops:,}",
             f"{converted_trace.total_relu_ops:,}"],
            ["measured secure mults", f"{baseline_trace.total_mult_ops:,}",
             f"{converted_trace.total_mult_ops:,}"],
            ["matches static counts", "yes", "yes"],
            ["online latency (est.)", f"{baseline_cost.online_milliseconds:.2f} ms",
             f"{converted_cost.online_milliseconds:.2f} ms"],
            ["online communication", f"{baseline_cost.online_megabytes:.2f} MB",
             f"{converted_cost.online_megabytes:.2f} MB"],
        ],
        title=f"Executed secure inference under {PROTOCOL} "
              f"(frac_bits={FRAC_BITS})" + (" — quick/CI mode" if quick else ""),
    ))
    print()
    print(format_table(
        ["Metric", "Value"],
        [
            ["measured cost ratio (baseline / converted)",
             f"{cost_ratio:.1f}x (>= {MIN_COST_RATIO:.0f}x required)"],
            ["measured comm ratio", f"{comm_ratio:.1f}x"],
            ["test accuracy (float path)", f"{float_accuracy:.3f}"],
            ["test accuracy (fixed point)", f"{fixed_accuracy:.3f}"],
            ["accuracy drift", f"{abs(float_accuracy - fixed_accuracy):.3f}"],
            ["max |fixed - float| logit drift", f"{max_drift:.3e}"],
            ["top-1 agreement (converted)", f"{agree}/{drift_samples}"],
        ],
        title="Savings gate and fixed-point drift (smoke preset)",
    ))

    save_experiment("secure_inference", {
        "quick_mode": quick,
        "protocol": PROTOCOL,
        "frac_bits": FRAC_BITS,
        "cost_ratio": cost_ratio,
        "comm_ratio": comm_ratio,
        "baseline": {"trace": baseline_trace.to_dict(),
                     "online_ms": baseline_cost.online_milliseconds,
                     "online_mb": baseline_cost.online_megabytes},
        "converted": {"trace": converted_trace.to_dict(),
                      "online_ms": converted_cost.online_milliseconds,
                      "online_mb": converted_cost.online_megabytes,
                      "activations_replaced": conversion.activations_replaced,
                      "layers_quadratized": conversion.layers_quadratized},
        "float_accuracy": float_accuracy,
        "fixed_accuracy": fixed_accuracy,
        "accuracy_drift": abs(float_accuracy - fixed_accuracy),
        "max_logit_drift": max_drift,
        "top1_agreement": agree / drift_samples,
    })


if __name__ == "__main__":
    main()
