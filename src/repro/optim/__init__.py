"""``repro.optim`` — optimizers, learning-rate schedulers and gradient clipping."""

from .adagrad import Adagrad
from .adam import Adam, AdamW
from .clip_grad import clip_grad_norm_, clip_grad_value_
from .lr_scheduler import (
    CosineAnnealingLR,
    CosineAnnealingWarmRestarts,
    LambdaLR,
    LRScheduler,
    MultiStepLR,
    StepLR,
    WarmupCosineLR,
)
from .optimizer import Optimizer
from .rmsprop import RMSprop
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSprop",
    "Adagrad",
    "LRScheduler",
    "CosineAnnealingLR",
    "CosineAnnealingWarmRestarts",
    "StepLR",
    "MultiStepLR",
    "LambdaLR",
    "WarmupCosineLR",
    "clip_grad_norm_",
    "clip_grad_value_",
]
