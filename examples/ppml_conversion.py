"""Privacy-preserving inference: replace ReLU with quadratic layers.

Run with::

    python examples/ppml_conversion.py

The paper motivates quadratic neurons as a drop-in replacement for ReLU in
privacy-preserving machine learning (PPML) protocols: hybrid protocols such as
Delphi evaluate every ReLU with a garbled circuit (≈2 KB of online traffic per
activation), while HE-only protocols such as CryptoNets cannot evaluate a
comparison at all.  This example

1. analyses the online cost of a first-order VGG-8 under three protocol cost
   models,
2. converts the model with ``repro.ppml.to_ppml_friendly`` (square activations
   and the paper's quadratic-no-ReLU strategy), and
3. verifies that the converted models still train on a synthetic CIFAR-like
   task.
"""

import numpy as np

from repro import ppml
from repro.builder import QuadraticModelConfig
from repro.data.synthetic import SyntheticImageClassification
from repro.models import vgg_from_cfg
from repro.training import train_classifier
from repro.utils import print_table, seed_everything

INPUT_SHAPE = (3, 32, 32)


def build_baseline():
    """The first-order VGG-8 whose ReLUs we want to eliminate."""
    return vgg_from_cfg("VGG8", num_classes=10,
                        config=QuadraticModelConfig(neuron_type="first_order"))


def cost_analysis() -> None:
    """Step 1 + 2: per-protocol online cost of the baseline and its conversions."""
    variants = [("First-order (ReLU)", build_baseline())]
    for strategy in ("square", "quadratic_no_relu"):
        converted, report = ppml.to_ppml_friendly(build_baseline(), strategy=strategy)
        print(f"converted with strategy '{strategy}': "
              f"{report.activations_replaced} activations replaced, "
              f"{report.layers_quadratized} convolutions quadratized, "
              f"{report.maxpools_replaced} max-pools averaged, "
              f"parameter ratio {report.parameter_ratio:.2f}x")
        variants.append((f"Converted ({strategy})", converted))

    rows = []
    for name, model in variants:
        reports = ppml.compare_protocols(model, INPUT_SHAPE)
        delphi, cryptonets = reports["delphi"], reports["cryptonets"]
        rows.append([
            name,
            f"{delphi.relu_count:,}",
            f"{delphi.mult_count:,}",
            f"{delphi.total.megabytes:.1f} MB",
            f"{delphi.total.milliseconds:.1f} ms",
            "yes" if cryptonets.runnable else "no",
        ])
    print()
    print_table(
        ["Model", "ReLU ops", "Secure mults", "Delphi comm", "Delphi latency",
         "Runs under CryptoNets"],
        rows,
        title="Online inference cost per protocol (VGG-8, one 32x32 query)",
    )

    # The per-layer view shows where the garbled-circuit budget goes.
    baseline_report = ppml.analyse_model(build_baseline(), INPUT_SHAPE, protocol="delphi")
    print()
    print(ppml.format_cost_report(baseline_report, per_layer=True))


def training_check() -> None:
    """Step 3: the converted models still learn (scaled-down synthetic task)."""
    train_set = SyntheticImageClassification(num_samples=192, num_classes=6, image_size=16,
                                             seed=0, split_seed=0)
    test_set = SyntheticImageClassification(num_samples=96, num_classes=6, image_size=16,
                                            seed=0, split_seed=1)
    cfg = [16, "M", 32, "M"]

    rows = []
    for strategy in (None, "square", "quadratic_no_relu"):
        seed_everything(7)
        model = vgg_from_cfg(cfg, num_classes=6,
                             config=QuadraticModelConfig(neuron_type="first_order",
                                                         width_multiplier=0.25))
        if strategy is not None:
            model, _ = ppml.to_ppml_friendly(model, strategy=strategy)
        with np.errstate(all="ignore"):
            history = train_classifier(model, train_set, test_set, epochs=3, batch_size=16,
                                       lr=0.05, max_batches_per_epoch=6, seed=7)
        rows.append([strategy or "original (ReLU)",
                     f"{history.final_train_accuracy:.3f}",
                     f"{history.final_test_accuracy:.3f}"])
    print()
    print_table(["Variant", "Train accuracy", "Test accuracy"], rows,
                title="Training sanity check after PPML conversion (scaled synthetic task)")


def main() -> None:
    seed_everything(0)
    cost_analysis()
    training_check()


if __name__ == "__main__":
    main()
