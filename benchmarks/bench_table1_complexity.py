"""Table 1 — overview of quadratic neuron designs: complexity and parameters.

Regenerates the analytic columns of the paper's Table 1 (computation
complexity and model-structure/space complexity per neuron type) and augments
them with *measured* parameter counts from instantiated layers, plus the
ratio to a first-order layer of the same shape.
"""

import pytest

from common import fresh_seed, save_experiment
from repro.quadratic import NEURON_TYPES, QuadraticConv2d, QuadraticConv2dT1
from repro.quadratic.complexity import (
    conv_layer_cost,
    first_order_conv_cost,
    linear_layer_cost,
)
from repro.utils import print_table

IN_CHANNELS = 16
OUT_CHANNELS = 16
KERNEL = 3


def _measured_parameters(name: str) -> int:
    """Parameters of an instantiated conv layer of the given design (measured)."""
    spec = NEURON_TYPES[name]
    if spec.full_rank:
        layer = QuadraticConv2dT1(IN_CHANNELS, OUT_CHANNELS, kernel_size=KERNEL,
                                  neuron_type=name)
    else:
        layer = QuadraticConv2d(IN_CHANNELS, OUT_CHANNELS, kernel_size=KERNEL,
                                neuron_type=name)
    return layer.num_parameters()


def test_table1_complexity_overview(benchmark):
    """Print the Table 1 overview and check its qualitative ordering."""
    fresh_seed(1)
    baseline = first_order_conv_cost(IN_CHANNELS, OUT_CHANNELS, KERNEL, output_hw=(16, 16))

    rows = []
    results = {}
    for name, spec in NEURON_TYPES.items():
        analytic = conv_layer_cost(name, IN_CHANNELS, OUT_CHANNELS, KERNEL, output_hw=(16, 16))
        measured = _measured_parameters(name)
        ratio = measured / baseline.parameters
        rows.append([
            name, spec.formula, spec.time_complexity, spec.space_complexity,
            measured, round(ratio, 2), ", ".join(spec.issues) or "-",
        ])
        results[name] = {
            "formula": spec.formula,
            "time_complexity": spec.time_complexity,
            "space_complexity": spec.space_complexity,
            "analytic_parameters": analytic.parameters,
            "measured_parameters": measured,
            "parameter_ratio_vs_first_order": ratio,
            "issues": list(spec.issues),
        }

    print()
    print_table(
        ["Type", "Neuron format", "Comp. complexity", "Structure", "#Param (conv 16→16, k=3)",
         "×first-order", "Issues"],
        rows,
        title="Table 1 (reproduced): overview of quadratic neuron designs",
    )
    save_experiment("table1_complexity", results)

    # Qualitative checks that mirror the paper's table.
    assert results["T1_PURE"]["measured_parameters"] > 10 * results["OURS"]["measured_parameters"]
    assert results["OURS"]["parameter_ratio_vs_first_order"] == pytest.approx(3.0, rel=0.05)
    assert results["T4"]["parameter_ratio_vs_first_order"] == pytest.approx(2.0, rel=0.05)
    assert results["T2"]["parameter_ratio_vs_first_order"] == pytest.approx(1.0, rel=0.05)

    # Timed kernel: building + one forward of the paper's neuron.
    from repro.autodiff import randn

    layer = QuadraticConv2d(IN_CHANNELS, OUT_CHANNELS, kernel_size=KERNEL, padding=1,
                            neuron_type="OURS")
    x = randn(4, IN_CHANNELS, 16, 16)
    benchmark(lambda: layer(x))


def test_table1_dense_scaling_is_quadratic_for_t1(benchmark):
    """The O(n²) column: T1 parameters grow quadratically with input size, ours linearly."""
    sizes = [16, 32, 64, 128]
    t1 = [linear_layer_cost("T1_PURE", n, 32, bias=False).parameters for n in sizes]
    ours = [linear_layer_cost("OURS", n, 32, bias=False).parameters for n in sizes]
    rows = [[n, a, b, round(a / b, 1)] for n, a, b in zip(sizes, t1, ours)]
    print()
    print_table(["input size n", "T1 params", "Ours params", "T1 / Ours"], rows,
                title="Table 1 (supplement): parameter growth with input size")
    save_experiment("table1_scaling", {"sizes": sizes, "t1": t1, "ours": ours})

    # Quadratic vs linear growth: doubling n quadruples T1 but only doubles ours.
    assert t1[1] / t1[0] == pytest.approx(4.0, rel=0.05)
    assert ours[1] / ours[0] == pytest.approx(2.0, rel=0.05)

    benchmark(lambda: [linear_layer_cost("T1_PURE", n, 32) for n in sizes])
