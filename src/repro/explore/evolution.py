"""Evolutionary search over the QDNN architecture space.

A compact (μ+λ)-style genetic algorithm with tournament selection, the
mutation/crossover operators defined by :class:`~repro.explore.SearchSpace`,
and elitism.  It is deliberately simple — the point of the exploration layer
is to let a QuadraLib user answer "which quadratic structure should I use for
this task?" with a few dozen proxy evaluations, not to compete with dedicated
NAS systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .evaluate import CandidateEvaluation, SearchResult
from .space import ArchitectureGenome, SearchSpace


@dataclass
class EvolutionConfig:
    """Hyper-parameters of :func:`evolutionary_search`."""

    population_size: int = 8
    generations: int = 3
    tournament_size: int = 3
    mutation_rate: float = 0.3
    crossover_probability: float = 0.5
    elite_count: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not (0.0 <= self.mutation_rate <= 1.0):
            raise ValueError("mutation_rate must lie in [0, 1]")
        if not (0.0 <= self.crossover_probability <= 1.0):
            raise ValueError("crossover_probability must lie in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise ValueError("elite_count must lie in [0, population_size)")


def _fitness(evaluation: CandidateEvaluation) -> tuple:
    """Default scalar fitness: accuracy first, fewer parameters as tie-break."""
    return (evaluation.accuracy, -float(evaluation.parameters))


def _tournament(population: Sequence[CandidateEvaluation], rng: np.random.Generator,
                size: int, fitness: Callable[[CandidateEvaluation], tuple]
                ) -> CandidateEvaluation:
    contestants = [population[int(i)] for i in rng.integers(0, len(population),
                                                            size=min(size, len(population)))]
    return max(contestants, key=fitness)


def evolutionary_search(space: SearchSpace,
                        evaluator: Callable[[ArchitectureGenome], CandidateEvaluation],
                        config: Optional[EvolutionConfig] = None, seed: int = 0,
                        initial_population: Optional[Sequence[ArchitectureGenome]] = None,
                        fitness: Callable[[CandidateEvaluation], tuple] = _fitness,
                        callback: Optional[Callable[[int, List[CandidateEvaluation]], None]] = None
                        ) -> SearchResult:
    """Run a small genetic algorithm and return every evaluation performed.

    Parameters
    ----------
    space, evaluator :
        The search space and the (usually cached) candidate evaluator.
    config : EvolutionConfig
        Population/generation/operator settings.
    initial_population : sequence of genomes, optional
        Seeds for generation 0 (e.g. the paper's known-good QuadraNN
        configurations); padded with random samples up to the population size.
    fitness : callable
        Maps an evaluation to a sortable fitness (default: accuracy, then
        fewer parameters).
    callback : callable, optional
        Invoked as ``callback(generation_index, population)`` after every
        generation.
    """
    config = config or EvolutionConfig()
    rng = np.random.default_rng(seed)
    result = SearchResult()

    def evaluate(genome: ArchitectureGenome) -> CandidateEvaluation:
        evaluation = evaluator(genome)
        result.history.append(evaluation)
        result.evaluations_used += 1
        return evaluation

    # ----------------------------------------------------------- generation 0
    genomes: List[ArchitectureGenome] = list(initial_population or [])
    for genome in genomes:
        if not space.contains(genome):
            raise ValueError(f"initial genome {genome.key()} lies outside the search space")
    while len(genomes) < config.population_size:
        genomes.append(space.sample(rng))
    population = [evaluate(genome) for genome in genomes[:config.population_size]]
    if callback is not None:
        callback(0, population)

    # ------------------------------------------------------------ generations
    for generation in range(1, config.generations + 1):
        elites = sorted(population, key=fitness, reverse=True)[:config.elite_count]
        offspring: List[CandidateEvaluation] = list(elites)
        while len(offspring) < config.population_size:
            parent = _tournament(population, rng, config.tournament_size, fitness)
            if rng.random() < config.crossover_probability:
                other = _tournament(population, rng, config.tournament_size, fitness)
                child = space.crossover(parent.genome, other.genome, rng)
            else:
                child = parent.genome
            child = space.mutate(child, rng, rate=config.mutation_rate)
            offspring.append(evaluate(child))
        population = offspring
        if callback is not None:
            callback(generation, population)

    return result
