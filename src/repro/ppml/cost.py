"""Operation counting and PPML cost estimation for whole models.

The analysis walks a model once with a probe input, records the output shape
of every leaf layer, and classifies each layer into the three online
primitives a hybrid PPML protocol distinguishes:

* ``macs`` — multiply-accumulates inside linear / convolution layers
  (pre-processed or HE-evaluated, cheap per-op),
* ``relu_ops`` — non-linear comparisons (ReLU, LeakyReLU, max-pooling),
  evaluated with garbled circuits in hybrid protocols and impossible in
  HE-only protocols,
* ``mult_ops`` — secure element-wise multiplications (square activations and
  the Hadamard products inside quadratic layers), one Beaver triple each.

Combining the counts with a :class:`~repro.ppml.protocols.Protocol` gives the
per-layer and total online cost, which is the quantity the paper's PPML
motivation is about: converting ReLU networks to quadratic ones moves the
dominant cost from the ``relu_ops`` column to the much cheaper ``mult_ops``
column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..nn.layers.activations import GELU, LeakyReLU, ReLU, Sigmoid, Square, Tanh
from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.layers.normalization import BatchNorm1d, BatchNorm2d, LayerNorm
from ..nn.layers.pooling import AdaptiveAvgPool2d, AvgPool2d, GlobalAvgPool2d, MaxPool2d
from ..nn.module import Module
from ..quadratic.functional import REQUIRED_RESPONSES
from ..quadratic.layers.hybrid import HybridQuadraticConv2d, HybridQuadraticLinear
from ..quadratic.layers.qconv import QuadraticConv2d, QuadraticConv2dT1
from ..quadratic.layers.qlinear import QuadraticLinear
from ..utils.logging import format_table
from .protocols import Protocol, ProtocolCost, resolve_protocol


@dataclass
class LayerOperations:
    """Online-operation counts of one leaf layer."""

    name: str
    layer_type: str
    macs: int = 0
    relu_ops: int = 0
    mult_ops: int = 0
    output_shape: Tuple[int, ...] = ()
    #: forward invocations the counts cover — modules shared across call
    #: sites (e.g. the one ReLU a residual block applies twice) accumulate.
    calls: int = 1

    @property
    def is_nonlinear(self) -> bool:
        return self.relu_ops > 0 or self.mult_ops > 0


@dataclass
class LayerCost:
    """Per-layer online cost under one protocol."""

    operations: LayerOperations
    linear: ProtocolCost
    relu: ProtocolCost
    mult: ProtocolCost

    @property
    def total(self) -> ProtocolCost:
        return self.linear + self.relu + self.mult


@dataclass
class CostReport:
    """Total online cost of a model under one protocol."""

    protocol: Protocol
    layers: List[LayerCost] = field(default_factory=list)

    @property
    def total(self) -> ProtocolCost:
        total = ProtocolCost()
        for layer in self.layers:
            total += layer.total
        return total

    @property
    def relu_total(self) -> ProtocolCost:
        total = ProtocolCost()
        for layer in self.layers:
            total += layer.relu
        return total

    @property
    def mult_total(self) -> ProtocolCost:
        total = ProtocolCost()
        for layer in self.layers:
            total += layer.mult
        return total

    @property
    def relu_count(self) -> int:
        return sum(layer.operations.relu_ops for layer in self.layers)

    @property
    def mult_count(self) -> int:
        return sum(layer.operations.mult_ops for layer in self.layers)

    @property
    def multiplicative_depth(self) -> int:
        """Number of layers contributing secure multiplications (HE depth proxy)."""
        return sum(1 for layer in self.layers if layer.operations.mult_ops > 0)

    @property
    def runnable(self) -> bool:
        """Whether the model can be evaluated under the protocol at all."""
        if not self.total.finite():
            return False
        limit = self.protocol.multiplicative_depth_limit
        if limit and self.multiplicative_depth > limit:
            return False
        return True

    def relu_share(self) -> float:
        """Fraction of the total online latency spent in ReLU evaluations."""
        total = self.total.microseconds
        if not np.isfinite(total) or total == 0:
            return float("nan") if not np.isfinite(total) else 0.0
        return self.relu_total.microseconds / total


# --------------------------------------------------------------------------- #
# Operation counting
# --------------------------------------------------------------------------- #

def _elements(shape: Tuple[int, ...]) -> int:
    return int(np.prod(shape)) if shape else 0


def _conv_macs(out_shape: Tuple[int, ...], weight_shape: Tuple[int, ...]) -> int:
    n, f, oh, ow = out_shape
    _, c_g, kh, kw = weight_shape
    return n * f * c_g * kh * kw * oh * ow


def _quadratic_mult_ops(neuron_type: str, out_elements: int, in_elements: int) -> int:
    """Secure multiplications one quadratic layer needs, by neuron design.

    Designs with a Hadamard/self product (``"a"`` in the required responses)
    pay one Beaver triple per *output* element for the combination; designs
    with a squared-input projection (``"sq"``) additionally pay one per
    *input* element to form ``X²`` before the linear phase.  This is exactly
    what the secure runtime executes, so measured traces match these counts.
    """
    required = REQUIRED_RESPONSES[neuron_type]
    mult_ops = 0
    if "a" in required:
        mult_ops += out_elements
    if "sq" in required:
        mult_ops += in_elements
    return mult_ops


def _classify(module: Module, out_shape: Tuple[int, ...],
              in_shape: Tuple[int, ...] = ()) -> Optional[LayerOperations]:
    """Operation counts of one leaf module, or ``None`` for cost-free layers."""
    elements = _elements(out_shape)
    type_name = type(module).__name__

    if isinstance(module, Conv2d):
        return LayerOperations("", type_name, macs=_conv_macs(out_shape, module.weight.shape),
                               output_shape=out_shape)
    if isinstance(module, Linear):
        batch = _elements(out_shape[:-1])
        return LayerOperations("", type_name,
                               macs=module.in_features * module.out_features * batch,
                               output_shape=out_shape)
    if isinstance(module, (QuadraticConv2d, HybridQuadraticConv2d)):
        weight_names = [n for n in module._parameters if n.startswith("weight")]
        weight = module._parameters[weight_names[0]]
        macs = len(weight_names) * _conv_macs(out_shape, weight.shape)
        mult_ops = _quadratic_mult_ops(module.neuron_type, elements, _elements(in_shape))
        return LayerOperations("", type_name, macs=macs, mult_ops=mult_ops,
                               output_shape=out_shape)
    if isinstance(module, QuadraticConv2dT1):
        n, f, oh, ow = out_shape
        patch = module.patch_size
        return LayerOperations("", type_name, macs=n * f * patch * patch * oh * ow,
                               mult_ops=elements, output_shape=out_shape)
    if isinstance(module, (QuadraticLinear, HybridQuadraticLinear)):
        weight_names = [n for n in module._parameters if n.startswith("weight")]
        batch = _elements(out_shape[:-1])
        macs = len(weight_names) * module.in_features * module.out_features * batch
        mult_ops = _quadratic_mult_ops(module.neuron_type, elements, _elements(in_shape))
        return LayerOperations("", type_name, macs=macs, mult_ops=mult_ops,
                               output_shape=out_shape)
    if isinstance(module, Square):
        return LayerOperations("", type_name, mult_ops=elements, output_shape=out_shape)
    if isinstance(module, (ReLU, LeakyReLU)):
        return LayerOperations("", type_name, relu_ops=elements, output_shape=out_shape)
    if isinstance(module, (GELU, Sigmoid, Tanh)):
        # Smooth non-polynomial activations are at least as expensive as a
        # garbled comparison in every published protocol; count them as such.
        return LayerOperations("", type_name, relu_ops=elements, output_shape=out_shape)
    if isinstance(module, MaxPool2d):
        k = module.kernel_size if isinstance(module.kernel_size, int) else module.kernel_size[0]
        comparisons = elements * max(k * k - 1, 1)
        return LayerOperations("", type_name, relu_ops=comparisons, output_shape=out_shape)
    if isinstance(module, (AvgPool2d, AdaptiveAvgPool2d, GlobalAvgPool2d)):
        # Window sums are linear; the division by the (public) window size is
        # one scalar multiplication per output element.
        return LayerOperations("", type_name, macs=elements, output_shape=out_shape)
    if isinstance(module, (BatchNorm1d, BatchNorm2d, LayerNorm)):
        # At inference BatchNorm folds into the preceding linear layer; LayerNorm
        # costs one MAC per element online.
        return LayerOperations("", type_name, macs=elements, output_shape=out_shape)
    return None


def count_operations(model: Module, input_shape: Tuple[int, int, int],
                     batch_size: int = 1) -> List[LayerOperations]:
    """Per-leaf-layer operation counts from a probe forward pass.

    Parameters
    ----------
    model : Module
        The network to analyse (not modified; evaluated in inference mode).
    input_shape : tuple
        Shape of one input sample, e.g. ``(3, 32, 32)``.
    batch_size : int
        Probe batch size; PPML protocols evaluate one query at a time, so the
        default of 1 matches the usual reporting convention.  Every count
        (MACs included) scales linearly with the batch, matching what the
        secure runtime measures on a batched execution.
    """
    invocations: Dict[int, List[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = {}
    removers = []
    leaf_modules: List[Tuple[str, Module]] = []
    for name, module in model.named_modules():
        if module._modules:
            continue
        leaf_modules.append((name, module))

        def make_hook(module_id: int):
            def hook(_module, inputs, output):
                if isinstance(output, Tensor):
                    # One entry per *invocation*: a module shared across call
                    # sites (a residual block's ReLU fires twice per forward)
                    # costs the protocol once per application, not once per
                    # Python object.  The input shape sizes the squared-input
                    # projections of T2-style quadratic designs.
                    in_shape = (inputs[0].shape
                                if inputs and isinstance(inputs[0], Tensor) else ())
                    invocations.setdefault(module_id, []).append((in_shape, output.shape))
            return hook

        removers.append(module.register_forward_hook(make_hook(id(module))))

    probe = Tensor(np.zeros((batch_size,) + tuple(input_shape), dtype=np.float32))
    was_training = model.training
    model.train(False)
    with no_grad():
        model(probe)
    model.train(was_training)
    for remove in removers:
        remove()

    operations: List[LayerOperations] = []
    for name, module in leaf_modules:
        merged: Optional[LayerOperations] = None
        for in_shape, out_shape in invocations.get(id(module), []):
            counted = _classify(module, out_shape, in_shape)
            if counted is None:
                break
            if merged is None:
                merged = counted
            else:
                merged.macs += counted.macs
                merged.relu_ops += counted.relu_ops
                merged.mult_ops += counted.mult_ops
                merged.output_shape = counted.output_shape
                merged.calls += 1
        if merged is None:
            continue
        merged.name = name
        operations.append(merged)
    return operations


# --------------------------------------------------------------------------- #
# Cost estimation
# --------------------------------------------------------------------------- #

def estimate_cost(operations: Sequence[LayerOperations],
                  protocol: Union[str, Protocol]) -> CostReport:
    """Online cost of pre-counted operations under one protocol."""
    proto = resolve_protocol(protocol)
    report = CostReport(protocol=proto)
    for ops in operations:
        report.layers.append(LayerCost(
            operations=ops,
            linear=proto.linear_cost(ops.macs),
            relu=proto.relu_cost(ops.relu_ops),
            mult=proto.mult_cost(ops.mult_ops),
        ))
    return report


def analyse_model(model: Module, input_shape: Tuple[int, int, int],
                  protocol: Union[str, Protocol] = "delphi",
                  batch_size: int = 1) -> CostReport:
    """Count operations and estimate the online cost in one call."""
    operations = count_operations(model, input_shape, batch_size=batch_size)
    return estimate_cost(operations, protocol)


def compare_protocols(model: Module, input_shape: Tuple[int, int, int],
                      protocols: Optional[Sequence[Union[str, Protocol]]] = None,
                      batch_size: int = 1) -> Dict[str, CostReport]:
    """Cost reports for the same model under several protocols (counted once)."""
    from .protocols import PROTOCOLS

    operations = count_operations(model, input_shape, batch_size=batch_size)
    selected = protocols if protocols is not None else list(PROTOCOLS)
    reports: Dict[str, CostReport] = {}
    for proto in selected:
        resolved = resolve_protocol(proto)
        reports[resolved.name] = estimate_cost(operations, resolved)
    return reports


def format_cost_report(report: CostReport, per_layer: bool = False) -> str:
    """Render a cost report as a fixed-width table (totals, optionally per layer)."""
    def fmt(value: float, unit: str) -> str:
        return "not runnable" if not np.isfinite(value) else f"{value:.3f} {unit}"

    rows = []
    if per_layer:
        for layer in report.layers:
            rows.append([
                layer.operations.name,
                layer.operations.layer_type,
                layer.operations.macs,
                layer.operations.relu_ops,
                layer.operations.mult_ops,
                fmt(layer.total.megabytes, "MB"),
                fmt(layer.total.milliseconds, "ms"),
            ])
    rows.append([
        "TOTAL",
        report.protocol.name,
        sum(l.operations.macs for l in report.layers),
        report.relu_count,
        report.mult_count,
        fmt(report.total.megabytes, "MB"),
        fmt(report.total.milliseconds, "ms"),
    ])
    return format_table(
        ["layer", "type", "MACs", "ReLU ops", "secure mults", "online comm", "online latency"],
        rows,
        title=f"PPML online cost under {report.protocol.name} ({report.protocol.reference})",
    )
