"""Golden-schema tests for ``repro plan --json`` across the whole model zoo.

The plan payload is machine-read (CI gates, dashboards, ``--out`` files), so
its *shape* is API: every zoo model must produce the same nested structure,
and that structure must not drift silently.  Like the ``GET /stats`` drift
gate, the golden stores the flattened ``key path → JSON type`` schema — not
the values, which are host-dependent measurements.

Regenerate after an intentional schema change with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/capacity/test_plan_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.backends.rates import KernelRates
from repro.capacity import CapacityModel, request_work
from repro.experiment.registry import MODELS
from repro.experiment.spec import DataSpec, ExperimentSpec, ModelSpec

GOLDEN_PATH = Path(__file__).parent / "goldens" / "plan_schema.json"

#: tiny-but-valid synthetic rates: goldens test *shape*, so no probes run.
RATES = KernelRates(
    backend="synthetic", host="golden-tests",
    gemm_macs_per_s=1e10, conv_macs_per_s=4e9, elementwise_ops_per_s=1e9,
    pool_window_elems_per_s=5e7, dispatch_us=2.0, ipc_us=50.0,
    copy_bytes_per_s=8e9,
)

#: per-sample input shape per zoo model (the CLI's ``--input-shape`` story:
#: image backbones take the data spec's shape, the MLP takes flat vectors).
def input_shape_for(name: str):
    return (16,) if name == "mlp" else (3, 32, 32)


def build_plan_payload(name: str) -> dict:
    """The exact dict ``repro plan <spec> --json`` prints, minus probes."""
    spec = ExperimentSpec(
        name=f"plan-golden-{name}",
        model=ModelSpec(name=name, width_multiplier=0.125, num_classes=4),
        data=DataSpec(num_classes=4, image_size=16),
    )
    model = spec.model.build()
    shape = input_shape_for(name)
    work = request_work(model, shape, num_classes=spec.model.num_classes)
    plan = CapacityModel(work, RATES, workers=2).plan(50.0)
    return {"model": name, "backend": RATES.backend,
            "input_shape": list(shape), **plan.to_dict()}


def flatten_schema(payload, prefix: str = "") -> dict:
    """``{'queue.stable': 'bool', ...}`` — key paths to JSON type names."""
    schema = {}
    if isinstance(payload, dict):
        for key, value in sorted(payload.items()):
            schema.update(flatten_schema(value, f"{prefix}{key}."))
        return schema
    if isinstance(payload, list):
        kinds = sorted({json_type(item) for item in payload}) or ["empty"]
        schema[prefix.rstrip(".")] = f"list[{'|'.join(kinds)}]"
        return schema
    schema[prefix.rstrip(".")] = json_type(payload)
    return schema


def json_type(value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "number"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if value is None:
        return "null"
    return type(value).__name__


@pytest.fixture(scope="module")
def schemas() -> dict:
    return {name: flatten_schema(build_plan_payload(name))
            for name in MODELS.names()}


def test_golden_covers_every_zoo_model(schemas):
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(schemas, indent=2, sort_keys=True) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sorted(golden) == sorted(MODELS.names()), (
        "zoo and golden disagree on the model list — regenerate with "
        "REPRO_UPDATE_GOLDENS=1")


def test_plan_schema_matches_golden_for_every_model(schemas):
    golden = json.loads(GOLDEN_PATH.read_text())
    for name, schema in schemas.items():
        expected = golden.get(name)
        assert expected is not None, f"no golden schema for '{name}'"
        added = sorted(set(schema) - set(expected))
        removed = sorted(set(expected) - set(schema))
        changed = sorted(key for key in set(schema) & set(expected)
                         if schema[key] != expected[key])
        assert not (added or removed or changed), (
            f"plan schema drifted for '{name}': added={added} "
            f"removed={removed} retyped={changed} — if intentional, "
            f"regenerate with REPRO_UPDATE_GOLDENS=1 and update docs")


def test_schema_is_identical_across_models(schemas):
    """One plan consumer must work for every model: no per-model shapes."""
    reference_name = sorted(schemas)[0]
    reference = schemas[reference_name]
    for name, schema in schemas.items():
        assert schema == reference, (
            f"'{name}' produces a different plan schema than "
            f"'{reference_name}'")


def test_quantiles_are_finite_numbers_in_the_stable_regime(schemas):
    payload = build_plan_payload("vgg8")
    predictions = payload["predictions"]
    for field in ("throughput_rps", "capacity_rps", "max_throughput_rps",
                  "p50_ms", "p99_ms", "mean_latency_ms"):
        assert isinstance(predictions[field], float), field
