"""Dynamic int8 quantized execution — fast *insecure* quantized inference.

The secure-inference runtime (:mod:`repro.ppml`) already executes models in
fixed point, but pays protocol costs (int64 shares, per-multiplication
truncation) for privacy.  This backend reuses the same power-of-two scaling
machinery from :mod:`repro.ppml.fixedpoint` *without* the protocol: weights
are quantized once per compile to saturating 8-bit integers, activations are
quantized dynamically per call, and the integer GEMMs run through float32
BLAS (every product of two int8 values accumulates exactly in float32 up to
the dot-product lengths these models use, and far beyond int8's own
resolution).  That makes it a preview of deployment-style quantized serving:
what accuracy survives 8-bit weights and activations, measured with the same
scale rules the secure runtime uses.

Scale selection per tensor: the largest power-of-two fractional precision
whose scaled magnitudes fit int8, ``bits = floor(log2(127 / amax))`` clamped
to the fixed-point format's ``MAX_FRAC_BITS`` — i.e. exactly
:func:`repro.ppml.fixedpoint.encode` followed by saturation to ±127 (the
tests assert this equivalence).  Matmul/projection outputs are rescaled by
``2^-(bits_x + bits_w)`` — the same resolution bookkeeping a fixed-point
multiplication's truncation performs.

Element-wise steps, pooling and the quadratic combination stay in float32:
they are cheap and keeping them exact isolates the quantization error to the
projections, mirroring how the PPML cost model attributes multiplication
cost.  ``exact = False``: outputs are approximate by design; the test suite
bounds the error by top-1 agreement with the float path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .base import Backend, register_backend

#: Saturation bound of the signed 8-bit ring.
INT8_MAX = 127


@register_backend
class Int8Backend(Backend):
    """Dynamic int8 quantized GEMM/conv (fixed-point scales; approximate)."""

    name = "int8"
    exact = False

    def __init__(self) -> None:
        # Weight tensors are quantized once per compiled model (a fresh
        # backend instance per compile) and cached by identity; the array
        # reference in the value keeps the id() stable for the cache's life.
        self._weights: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}

    # ------------------------------------------------------------ quantizers
    @staticmethod
    def frac_bits(amax: float) -> int:
        """Largest power-of-two precision whose scaled ``amax`` fits int8."""
        from ..ppml.fixedpoint import MAX_FRAC_BITS  # lazy: avoids import cycle

        if amax <= 0.0 or not np.isfinite(amax):
            return 0
        return int(np.clip(np.floor(np.log2(INT8_MAX / amax)),
                           -MAX_FRAC_BITS, MAX_FRAC_BITS))

    @classmethod
    def quantize(cls, array: np.ndarray) -> Tuple[np.ndarray, int]:
        """Saturating int8 quantization, returned as float32 integer values.

        Equivalent to ``fixedpoint.encode(array, bits)`` clipped to ±127 —
        but computed in float32 so the hot path never materialises an int64
        tensor.  The values are integers exactly representable in float32,
        so the follow-up BLAS runs on the quantized lattice bit-for-bit.
        """
        amax = float(np.max(np.abs(array))) if array.size else 0.0
        bits = cls.frac_bits(amax)
        q = np.rint(array * np.float32(2.0 ** bits)).astype(np.float32, copy=False)
        np.clip(q, -INT8_MAX, INT8_MAX, out=q)
        return q, bits

    def _weight(self, array: np.ndarray) -> Tuple[np.ndarray, int]:
        cached = self._weights.get(id(array))
        if cached is not None and cached[0] is array:
            return cached[1], cached[2]
        q, bits = self.quantize(np.ascontiguousarray(array, dtype=np.float32))
        self._weights[id(array)] = (array, q, bits)
        return q, bits

    # ----------------------------------------------------------------- GEMM
    def gemm(self, x: np.ndarray, weight_t: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        qw, w_bits = self._weight(weight_t)
        qx, x_bits = self.quantize(x)
        if out is None:
            out = qx @ qw
        else:
            np.matmul(qx, qw, out=out)
        return np.multiply(out, np.float32(2.0 ** -(x_bits + w_bits)), out=out)

    # ----------------------------------------------------------- convolution
    def conv_project(self, cols: np.ndarray, wmat: np.ndarray, out: np.ndarray,
                     cache: dict) -> np.ndarray:
        qw, w_bits = self._weight(wmat)
        qc, c_bits = self.quantize(cols)
        # Grouped projection on the int8 lattice; matmul broadcasting over
        # (groups,) is the fast route and int8 needs no einsum bit-matching.
        np.matmul(qw, qc, out=out)
        return np.multiply(out, np.float32(2.0 ** -(c_bits + w_bits)), out=out)
