"""The worker-side build path, exercised in-process (no subprocess needed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.worker import REQUEST_KINDS, build_serving_predictor, execute_request


class TestBuildServingPredictor:
    def test_rebuilt_worker_matches_parent_bit_for_bit(self, smoke):
        """Spec dict + state dict over "IPC" → identical predictions."""
        predictor = build_serving_predictor(
            smoke.spec.to_dict(), dict(smoke.state), max_batch_size=1, max_wait=0.0)
        try:
            for sample, expected in zip(smoke.samples, smoke.expected):
                out = execute_request(predictor, "predict", sample, timeout=30.0)
                assert np.array_equal(out, expected)
        finally:
            predictor.shutdown()

    def test_without_state_the_worker_serves_the_seeded_build(self, smoke):
        predictor = build_serving_predictor(
            smoke.spec.to_dict(), {}, max_batch_size=1, max_wait=0.0)
        try:
            out = execute_request(predictor, "predict", smoke.samples[0], timeout=30.0)
            # The smoke spec builds deterministically from its seed, and the
            # parent model was never trained, so even the no-state path agrees.
            assert np.array_equal(out, smoke.expected[0])
        finally:
            predictor.shutdown()


class TestExecuteRequest:
    def test_sleep_returns_none(self, smoke):
        predictor = build_serving_predictor(
            smoke.spec.to_dict(), dict(smoke.state), max_batch_size=1, max_wait=0.0)
        try:
            assert execute_request(predictor, "sleep", 0.0, timeout=5.0) is None
        finally:
            predictor.shutdown()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            execute_request(object(), "transmogrify", None, timeout=1.0)
        assert REQUEST_KINDS == ("batch", "predict", "sleep")
