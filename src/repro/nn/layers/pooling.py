"""Pooling layers."""

from __future__ import annotations

from ...autodiff.tensor import Tensor
from .. import functional as F
from ..module import Module


class MaxPool2d(Module):
    """Max pooling over spatial windows."""

    def __init__(self, kernel_size=2, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class AvgPool2d(Module):
    """Average pooling over spatial windows."""

    def __init__(self, kernel_size=2, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class AdaptiveAvgPool2d(Module):
    """Pool to a fixed spatial output size (``1`` gives global average pooling)."""

    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = int(output_size)

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)

    def extra_repr(self) -> str:
        return f"output_size={self.output_size}"


class GlobalAvgPool2d(Module):
    """Global average pooling that also flattens to (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
