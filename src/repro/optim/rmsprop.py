"""RMSprop optimizer.

Adaptive per-parameter step sizes help the quadratic designs whose gradients
mix very different magnitudes (the second-order term produces extreme values,
paper Sec. 4.2 design insight 2); RMSprop is the standard choice for GAN
discriminators and is included so the SNGAN experiments can be reproduced with
either Adam or RMSprop, as in the spectral-normalisation literature.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.parameter import Parameter
from .optimizer import Optimizer


class RMSprop(Optimizer):
    """RMSprop with optional momentum and centering.

    Parameters
    ----------
    lr : float
        Step size.
    alpha : float
        Smoothing constant of the squared-gradient moving average.
    eps : float
        Denominator stabiliser.
    momentum : float
        Classical momentum applied to the preconditioned step.
    centered : bool
        Subtract the squared mean of gradients from the second-moment estimate
        (variance preconditioning) as in Graves (2013).
    weight_decay : float
        L2 penalty added to the gradient.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, alpha: float = 0.99,
                 eps: float = 1e-8, momentum: float = 0.0, centered: bool = False,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= alpha < 1.0):
            raise ValueError(f"alpha must lie in [0, 1), got {alpha}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        defaults = dict(lr=lr, alpha=alpha, eps=eps, momentum=momentum, centered=centered,
                        weight_decay=weight_decay)
        super().__init__(params, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr, alpha, eps = group["lr"], group["alpha"], group["eps"]
            momentum, centered = group["momentum"], group["centered"]
            weight_decay = group["weight_decay"]
            for p in group["params"]:
                if p.grad is None or not p.requires_grad:
                    continue
                grad = np.asarray(p.grad, dtype=np.float32)
                if weight_decay:
                    grad = grad + weight_decay * p.data
                state = self._get_state(p)
                square_avg = state.get("square_avg")
                if square_avg is None:
                    square_avg = np.zeros_like(p.data, dtype=np.float32)
                square_avg = alpha * square_avg + (1 - alpha) * grad * grad
                state["square_avg"] = square_avg

                if centered:
                    grad_avg = state.get("grad_avg")
                    if grad_avg is None:
                        grad_avg = np.zeros_like(p.data, dtype=np.float32)
                    grad_avg = alpha * grad_avg + (1 - alpha) * grad
                    state["grad_avg"] = grad_avg
                    denom = np.sqrt(np.maximum(square_avg - grad_avg * grad_avg, 0.0)) + eps
                else:
                    denom = np.sqrt(square_avg) + eps

                update = grad / denom
                if momentum:
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = np.zeros_like(p.data, dtype=np.float32)
                    buf = momentum * buf + update
                    state["momentum_buffer"] = buf
                    update = buf
                p.data -= lr * update.astype(p.data.dtype)
