"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.parameter import Parameter


class Optimizer:
    """Base class holding parameters, hyper-parameters and per-parameter state.

    The design mirrors ``torch.optim.Optimizer``: parameters are stored in
    ``param_groups`` dictionaries so that a scheduler can rescale ``lr`` per
    group, and optimizer state (momentum buffers, Adam moments) is keyed by
    parameter identity.
    """

    def __init__(self, params: Iterable[Parameter], defaults: Dict) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            self.param_groups: List[Dict] = []
            for group in params:
                merged = dict(defaults)
                merged.update(group)
                merged["params"] = list(group["params"])
                self.param_groups.append(merged)
        else:
            group = dict(defaults)
            group["params"] = params
            self.param_groups = [group]
        self.state: Dict[int, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------ API
    def zero_grad(self) -> None:
        """Clear the gradient of every managed parameter."""
        for group in self.param_groups:
            for p in group["params"]:
                p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    def _get_state(self, param: Parameter) -> Dict[str, np.ndarray]:
        key = id(param)
        if key not in self.state:
            self.state[key] = {}
        return self.state[key]

    @property
    def lr(self) -> float:
        """Learning rate of the first parameter group (scheduler convenience)."""
        return self.param_groups[0]["lr"]

    def set_lr(self, lr: float) -> None:
        for group in self.param_groups:
            group["lr"] = lr

    def state_dict(self) -> Dict:
        """Hyper-parameters only (buffers are keyed by object identity)."""
        return {
            "param_groups": [
                {k: v for k, v in g.items() if k != "params"} for g in self.param_groups
            ]
        }
