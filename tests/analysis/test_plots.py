"""Tests for the ASCII plotting helpers used by the figure benchmarks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ascii_bar_chart, ascii_line_chart, sparkline


# --------------------------------------------------------------------------- #
# sparkline
# --------------------------------------------------------------------------- #

def test_sparkline_basic():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] != line[-1]  # low and high map to different blocks


def test_sparkline_constant_and_empty():
    assert sparkline([]) == ""
    assert sparkline([float("nan")]) == ""
    constant = sparkline([3.0, 3.0, 3.0])
    assert len(constant) == 3 and len(set(constant)) == 1


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1,
                max_size=50))
@settings(max_examples=50, deadline=None)
def test_sparkline_length_matches_finite_input(values):
    assert len(sparkline(values)) == len(values)


# --------------------------------------------------------------------------- #
# line chart
# --------------------------------------------------------------------------- #

def test_line_chart_contains_series_markers_and_legend():
    chart = ascii_line_chart(
        {"default BP": [1.0, 2.0, 3.0, 2.5], "hybrid BP": [1.0, 1.5, 2.0, 1.8]},
        width=20, height=6, title="Fig. 8", x_label="iteration", y_label="GB",
    )
    assert "Fig. 8" in chart
    assert "default BP" in chart and "hybrid BP" in chart
    assert "*" in chart and "o" in chart
    assert "iteration" in chart and "GB" in chart
    # Axis labels show the data range.
    assert "3" in chart and "1" in chart


def test_line_chart_single_series_and_constant_values():
    chart = ascii_line_chart({"flat": [2.0, 2.0, 2.0]}, width=10, height=4)
    assert "flat" in chart
    # A constant series still renders one marker per column somewhere.
    assert chart.count("*") >= 10


def test_line_chart_handles_nan_gaps():
    chart = ascii_line_chart({"gaps": [1.0, float("nan"), 3.0]}, width=12, height=4)
    assert "gaps" in chart


def test_line_chart_validation():
    with pytest.raises(ValueError):
        ascii_line_chart({})
    with pytest.raises(ValueError):
        ascii_line_chart({"x": [1.0]}, width=4, height=2)
    with pytest.raises(ValueError):
        ascii_line_chart({"x": [float("nan")]})


def test_line_chart_deterministic():
    series = {"a": [1, 4, 2, 8, 5], "b": [2, 2, 3, 3, 4]}
    assert ascii_line_chart(series) == ascii_line_chart(series)


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=2,
                max_size=30))
@settings(max_examples=30, deadline=None)
def test_line_chart_row_width_is_constant(values):
    chart = ascii_line_chart({"s": values}, width=24, height=5)
    plot_rows = [line for line in chart.splitlines() if "|" in line]
    assert len(plot_rows) == 5
    assert len({len(row) for row in plot_rows}) == 1


# --------------------------------------------------------------------------- #
# bar chart
# --------------------------------------------------------------------------- #

def test_bar_chart_scales_longest_bar_to_width():
    chart = ascii_bar_chart(["first-order", "QDNN"], [2.0, 4.0], width=20)
    lines = chart.splitlines()
    assert lines[0].startswith("first-order")
    assert lines[1].count("#") == 20
    assert lines[0].count("#") == 10


def test_bar_chart_reference_lines_budget_markers():
    chart = ascii_bar_chart(["VGG-16 QDNN"], [10.0], width=20, title="Fig. 5",
                            reference_lines={"RTX 2080 (8 GB)": 8.0})
    assert "Fig. 5" in chart
    assert "RTX 2080" in chart
    assert "|" in chart


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        ascii_bar_chart(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        ascii_bar_chart([], [])
    with pytest.raises(ValueError):
        ascii_bar_chart(["a"], [-1.0])


def test_bar_chart_non_finite_values_render_as_zero():
    chart = ascii_bar_chart(["ok", "broken"], [1.0, float("inf")], width=10)
    broken_line = chart.splitlines()[1]
    assert broken_line.count("#") == 0
