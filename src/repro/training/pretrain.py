"""Backbone pre-training and transfer (the Table 6 pre-trained setting).

The paper initialises the SSD backbone either with Kaiming initialisation or
by copying weights from an (ILSVRC-pre-trained) classification network.  This
module reproduces that pipeline: train a classification model whose feature
extractor matches the detector backbone, then copy the matching convolution
weights across.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..builder.config import QuadraticModelConfig
from ..builder.constructors import build_classifier_head, conv_block
from ..data.synthetic.classification import SyntheticImageClassification
from ..models.ssd import SSD, SSDBackbone
from ..nn import GlobalAvgPool2d, Linear, MaxPool2d, Sequential
from ..nn.module import Module
from .classification import TrainingHistory


class BackbonePretrainNet(Module):
    """Classifier whose feature extractor has the same layout as :class:`SSDBackbone`.

    Sharing the layout (not the object) means a plain ``state_dict`` copy maps
    convolution-for-convolution onto the detector backbone.
    """

    def __init__(self, num_classes: int, config: QuadraticModelConfig,
                 in_channels: int = 3) -> None:
        super().__init__()
        self.backbone = SSDBackbone(config, in_channels=in_channels)
        feature_channels = self.backbone.out_channels[1]
        self.head = Sequential(GlobalAvgPool2d(), Linear(feature_channels, num_classes))

    def forward(self, x):
        _, feat2 = self.backbone(x)
        return self.head(feat2)


def pretrain_backbone(config: QuadraticModelConfig, dataset: SyntheticImageClassification,
                      epochs: int = 2, batch_size: int = 32, lr: float = 0.05,
                      max_batches_per_epoch: int = 20, seed: int = 0,
                      **engine_kwargs) -> Tuple[Dict[str, np.ndarray], TrainingHistory]:
    """Train a backbone-shaped classifier and return its backbone state dict.

    Extra keyword arguments (``checkpoint_dir``, ``resume_from``,
    ``stop_after_epoch``, ``callbacks``, ``prefetch``, ...) pass through to
    :func:`repro.engine.run_classification` — pre-training checkpoints and
    resumes like any other engine run.
    """
    from ..engine import run_classification

    model = BackbonePretrainNet(num_classes=dataset.num_classes, config=config)
    history = run_classification(model, dataset, epochs=epochs, batch_size=batch_size,
                                 lr=lr, max_batches_per_epoch=max_batches_per_epoch,
                                 seed=seed, **engine_kwargs)
    return model.backbone.state_dict(), history


def load_pretrained_backbone(detector: SSD, backbone_state: Dict[str, np.ndarray]) -> int:
    """Copy a pre-trained backbone state dict into a detector; returns tensors copied."""
    missing = detector.backbone.load_state_dict(backbone_state, strict=False)
    total = len(backbone_state)
    return total - len([m for m in missing if m in backbone_state])
