"""``repro.explore`` — QDNN design exploration (paper P5 / "Design Exploration").

The paper's structure-design problem (P5) is that published QDNNs use ad-hoc,
shallow structures and that finding a good structure for a new task requires
NAS-style design effort.  This package provides that exploration layer on top
of QuadraLib's construction machinery:

* :mod:`repro.explore.space` — the architecture genome and search space
  (depth / width / neuron type / BatchNorm / activation),
* :mod:`repro.explore.evaluate` — cached proxy evaluation (short training +
  analytical parameter/MACs/memory profiling),
* :mod:`repro.explore.random_search` / :mod:`repro.explore.evolution` —
  search drivers,
* :mod:`repro.explore.pareto` — multi-objective utilities (Pareto fronts,
  crowding distance, 2-D hypervolume).

Example
-------
>>> from repro import explore
>>> space = explore.SearchSpace(width_choices=(16, 32), neuron_types=("first_order", "OURS"))
>>> evaluator = explore.ProxyEvaluator(train_set, test_set, num_classes=6, image_size=16)
>>> result = explore.random_search(space, evaluator, budget=8)
>>> best = result.best
"""

from .evaluate import CandidateEvaluation, ProxyEvaluator, SearchResult
from .evolution import EvolutionConfig, evolutionary_search
from .pareto import (
    crowding_distance,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front,
)
from .random_search import random_search
from .space import ArchitectureGenome, SearchSpace

__all__ = [
    "ArchitectureGenome",
    "SearchSpace",
    "CandidateEvaluation",
    "ProxyEvaluator",
    "SearchResult",
    "random_search",
    "EvolutionConfig",
    "evolutionary_search",
    "dominates",
    "pareto_front",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume_2d",
]
