"""The unified training loop: one callback-driven ``Trainer`` for every task.

Before this engine existed the repository carried four copy-pasted loops
(classification, detection, GAN, backbone pre-training).  The refactor splits
each loop into two halves:

* the **task adapter** (:mod:`repro.engine.adapters`) owns everything
  task-specific — data iteration, the forward/backward/optimizer step (a GAN
  adapter owns its two-optimizer step), evaluation, history bookkeeping and
  the serializable training state;
* the **Trainer** here owns everything task-agnostic — the epoch/batch loop,
  the callback hooks, the ``max_batches_per_epoch`` cap, graceful stops and
  checkpoint save/resume.

``Trainer(adapter).fit()`` therefore reproduces each legacy loop bit for bit
(the parity tests in ``tests/engine`` hold the old loops frozen and compare),
while every new capability — callbacks, early stopping, checkpoint/resume,
prefetching loaders — lands once and works for all four tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..utils.serialization import (
    CHECKPOINT_FORMAT,
    load_training_checkpoint,
    save_training_checkpoint,
)
from .callbacks import CallbackList, CheckpointCallback


@dataclass
class TrainerState:
    """Mutable position of a training run (inspectable from callbacks)."""

    #: epochs fully completed so far (the resume point a checkpoint stores).
    epoch: int = 0
    #: batch index within the current epoch.
    batch: int = 0
    #: training steps taken across all epochs of this session.
    global_batch: int = 0
    #: the adapter reported divergence and the loop stopped mid-epoch.
    diverged: bool = False
    #: the loop stopped early but cleanly (stop_after_epoch / should_stop).
    interrupted: bool = False


class Trainer:
    """Run a :class:`~repro.engine.adapters.TaskAdapter` to completion.

    Parameters
    ----------
    adapter : TaskAdapter
        The task-specific half of the loop (batches, step, evaluation,
        history, serializable state).
    callbacks : sequence of Callback
        Observers receiving the typed hooks documented in
        :mod:`repro.engine.callbacks`.
    checkpoint_dir : str, optional
        Convenience: append a :class:`CheckpointCallback` writing to this
        directory every ``checkpoint_every`` epochs.
    spec : dict, optional
        A JSON-serializable experiment description embedded into every
        checkpoint, so ``repro train --resume ckpt.npz`` can rebuild the whole
        run from the file alone.
    """

    def __init__(self, adapter, callbacks=(), checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 1, keep_checkpoints: Optional[int] = None,
                 spec: Optional[Dict[str, Any]] = None) -> None:
        self.adapter = adapter
        self.callbacks = CallbackList(callbacks)
        if checkpoint_dir is not None:
            self.callbacks.append(CheckpointCallback(
                checkpoint_dir, every=checkpoint_every, keep=keep_checkpoints))
        self.spec = spec
        self.state = TrainerState()
        #: callbacks set this to end the run cleanly after the current epoch.
        self.should_stop = False

    # ------------------------------------------------------------------- loop
    def fit(self, resume_from: Optional[str] = None,
            stop_after_epoch: Optional[int] = None):
        """Train to ``adapter.num_epochs`` epochs; returns the adapter history.

        ``resume_from`` restores a checkpoint written by this engine and
        continues from the epoch it recorded — a resumed run consumes the
        exact RNG streams of an uninterrupted one, so the final weights are
        bit-identical.  ``stop_after_epoch`` ends the run cleanly once that
        many *total* epochs are complete (the CI resume smoke uses it to
        simulate a kill between epochs).
        """
        adapter = self.adapter
        start_epoch = 0
        if resume_from is not None:
            start_epoch = self.restore_checkpoint(resume_from)
        self.state = TrainerState(epoch=start_epoch)
        self.should_stop = False
        self.callbacks.on_train_begin(self)
        adapter.train_begin()
        for epoch in range(start_epoch, adapter.num_epochs):
            self.callbacks.on_epoch_begin(self, epoch)
            adapter.epoch_begin(epoch)
            batches = adapter.batches(epoch)
            try:
                for batch_index, batch in enumerate(batches):
                    cap = adapter.max_batches_per_epoch
                    if cap is not None and batch_index >= cap:
                        break
                    self.state.batch = batch_index
                    self.callbacks.on_batch_begin(self, epoch, batch_index)
                    step = adapter.train_step(batch)
                    self.state.global_batch += 1
                    self.callbacks.on_batch_end(self, epoch, batch_index,
                                                step.metrics)
                    if step.stop:
                        self.state.diverged = True
                        break
            finally:
                close = getattr(batches, "close", None)
                if close is not None:
                    close()
            if self.state.diverged:
                break
            metrics = adapter.epoch_end(epoch)
            self.state.epoch = epoch + 1
            self.callbacks.on_eval(self, epoch, metrics)
            self.callbacks.on_epoch_end(self, epoch, metrics)
            stop_requested = self.should_stop or (
                stop_after_epoch is not None and self.state.epoch >= stop_after_epoch)
            if stop_requested and self.state.epoch < adapter.num_epochs:
                self.state.interrupted = True
                break
        if not self.state.diverged:
            adapter.train_end()
        self.callbacks.on_train_end(self, adapter.history)
        return adapter.history

    # ------------------------------------------------------------ checkpoints
    def checkpoint_payload(self) -> Dict[str, Any]:
        """Everything a resume needs, as one nested serializable dict."""
        return {
            "format": CHECKPOINT_FORMAT,
            "task": self.adapter.task,
            "epoch": int(self.state.epoch),
            "spec": self.spec,
            "adapter": self.adapter.state_dict(),
            # Positional per-callback state (EarlyStopping counters etc.);
            # a resumed Trainer constructed with the same callback list gets
            # each entry back, so callbacks too continue where they stopped.
            "callbacks": [cb.state_dict() for cb in self.callbacks],
        }

    def save_checkpoint(self, path: str) -> str:
        """Atomically write the current state; fires ``on_checkpoint``."""
        save_training_checkpoint(path, self.checkpoint_payload())
        self.callbacks.on_checkpoint(self, self.state.epoch, path)
        return path

    def restore_checkpoint(self, path: str) -> int:
        """Load a checkpoint into the adapter; returns the epoch to resume at."""
        payload = load_training_checkpoint(path)
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(
                f"unsupported checkpoint format {payload.get('format')!r} in '{path}' "
                f"(this library writes format {CHECKPOINT_FORMAT})")
        task = payload.get("task")
        if task != self.adapter.task:
            raise ValueError(
                f"checkpoint '{path}' was written by a '{task}' run and cannot "
                f"resume a '{self.adapter.task}' adapter")
        self.adapter.load_state_dict(payload["adapter"])
        for callback, saved in zip(self.callbacks, payload.get("callbacks") or []):
            if saved:
                callback.load_state_dict(saved)
        return int(payload["epoch"])
