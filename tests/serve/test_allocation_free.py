"""The allocation-free hot path: in-ring assembly + arena-backed responses.

Three properties of the steady-state serving data plane:

1. Scattering request payloads straight into a leased slot
   (``ShmRing.assemble``) is bit-identical to the ``np.stack``-then-``write``
   staging path it replaced — across dtypes, non-contiguous inputs, and
   ragged final batches.
2. A warm worker serving through :class:`ResponseArena` performs zero
   tensor-sized heap allocations per batch (tracemalloc-verified; the same
   probe runs as an executable walkthrough in ``docs/serving.md``).
3. A live shm pool answers through the new path bit-identically to the
   single-process predictor with zero assembly fallbacks, including the
   ragged batch the backlog tail produces.
"""

from __future__ import annotations

import queue
import tracemalloc

import numpy as np
import pytest

from repro.serve import ServeConfig, WorkerPool
from repro.serve.shm import ShmRing
from repro.serve.worker import ResponseArena, build_serving_predictor


@pytest.fixture()
def ring():
    with ShmRing(slots=4, slot_bytes=1 << 20) as r:
        yield r


def scatter(ring: ShmRing, requests):
    """Exactly what the dispatcher does: lease *first*, then assemble the
    batch in place — one copy per payload, no staging array."""
    head = requests[0]
    slot, seq = ring.lease()
    view, frame = ring.assemble(slot, seq, (len(requests),) + head.shape,
                                head.dtype)
    for index, payload in enumerate(requests):
        np.copyto(view[index], payload)
    return frame


# --------------------------------------------------------------------------- #
# 1. In-ring assembly ≡ np.stack
# --------------------------------------------------------------------------- #

class TestInRingAssemblyEquivalence:
    @pytest.mark.parametrize("dtype", ["float16", "float32", "float64", "int64"])
    def test_bit_identical_across_dtypes(self, ring, dtype):
        rng = np.random.default_rng(3)
        requests = [(rng.standard_normal((3, 5)) * 100).astype(dtype)
                    for _ in range(4)]
        frame = scatter(ring, requests)
        got = ring.read(frame)
        expected = np.stack(requests)
        assert got.dtype == expected.dtype and got.shape == expected.shape
        assert got.tobytes() == expected.tobytes()
        ring.release(frame.slot, frame.seq)

    def test_non_contiguous_payloads_scatter_correctly(self, ring):
        rng = np.random.default_rng(4)
        base = rng.standard_normal((8, 12)).astype(np.float32)
        # All payloads share one shape (the coalescing key guarantees this
        # in the pool) but none of them is C-contiguous.
        requests = [base.T,                    # transposed view
                    base[::-1].T,              # reversed rows, transposed
                    base[:, ::-1].T,           # reversed columns, transposed
                    np.asfortranarray(base.T)[:, ::-1][:, ::-1]]
        assert all(r.shape == (12, 8) for r in requests)
        assert not any(r.flags.c_contiguous for r in requests)
        frame = scatter(ring, requests)
        got = ring.read(frame)
        expected = np.stack(requests)
        assert got.tobytes() == expected.tobytes()
        ring.release(frame.slot, frame.seq)

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_ragged_final_batches(self, ring, n):
        rng = np.random.default_rng(5 + n)
        requests = [rng.standard_normal((2, 7)).astype(np.float32)
                    for _ in range(n)]
        frame = scatter(ring, requests)
        got = ring.read(frame)
        assert got.shape == (n, 2, 7)
        assert got.tobytes() == np.stack(requests).tobytes()
        ring.release(frame.slot, frame.seq)

    def test_nan_and_inf_survive_bit_exactly(self, ring):
        row = np.array([[np.nan, np.inf, -np.inf, -0.0]], dtype=np.float32)
        frame = scatter(ring, [row, -row])
        got = ring.read(frame)
        assert got.tobytes() == np.stack([row, -row]).tobytes()
        ring.release(frame.slot, frame.seq)

    def test_oversized_assembly_is_refused_like_write(self, ring):
        slot, seq = ring.lease()
        with pytest.raises(ValueError):
            ring.assemble(slot, seq, (1, 1 << 21), np.float32)
        ring.release(slot, seq)


# --------------------------------------------------------------------------- #
# 2. Warm worker: zero tensor-sized allocations per batch
# --------------------------------------------------------------------------- #

class TestWarmWorkerAllocationFree:
    def test_steady_state_batch_touches_no_heap(self, smoke):
        predictor = build_serving_predictor(
            smoke.spec.to_dict(), smoke.state, max_batch_size=8, max_wait=0.0)
        compiled = predictor.compiled
        responses = queue.SimpleQueue()
        requests = np.stack(smoke.samples[:4])
        with ShmRing(slots=4, slot_bytes=1 << 20) as request_ring, \
                ShmRing(slots=4, slot_bytes=1 << 20) as response_ring:
            arena = ResponseArena(response_ring)

            def one_batch(verify=False):
                frame = scatter(request_ring, list(requests))
                batch = request_ring.read(frame)
                arena.serve(compiled, batch, False, 0,
                            list(range(len(batch))), 0.0, responses)
                request_ring.release(frame.slot, frame.seq)
                _, _, _, (via, out_frame), _ = responses.get()
                assert via == "shm"            # answered through the ring
                if verify:
                    out = response_ring.read(out_frame)
                    for row, expected in zip(out, smoke.expected[:4]):
                        assert np.array_equal(row, expected)
                response_ring.release(out_frame.slot, out_frame.seq)

            one_batch(verify=True)     # cold: discovers output-row geometry
            one_batch()                # warm-up
            tracemalloc.start()
            before = tracemalloc.take_snapshot()
            one_batch()                # the measured steady-state batch
            after = tracemalloc.take_snapshot()
            tracemalloc.stop()
            one_batch(verify=True)     # still bit-identical after the probe

            # Any smuggled staging copy / np.stack / fresh result array has a
            # per-allocation footprint of KiBs; the surviving noise (ndarray
            # view headers, tuples) sits around 72 bytes per allocation.
            offenders = [stat for stat in after.compare_to(before, "lineno")
                         if stat.count_diff > 0
                         and stat.size_diff / stat.count_diff >= 1024]
            assert not offenders, offenders
        predictor.close()


# --------------------------------------------------------------------------- #
# 3. Pool-level bit-identity through the assembled path
# --------------------------------------------------------------------------- #

class TestPoolAssembly:
    def test_pool_serves_bit_identically_with_zero_fallbacks(self, smoke):
        config = ServeConfig(workers=1, max_batch_size=4,
                             startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            # 6 requests against max_batch_size=4 forces a ragged tail batch.
            futures = [pool.submit(sample) for sample in smoke.samples]
            outputs = [future.result(timeout=120.0) for future in futures]
            for got, expected in zip(outputs, smoke.expected):
                assert got.dtype == expected.dtype
                assert np.array_equal(got, expected)
            transport = pool.stats()["transport"]
            assert transport["kind"] == "shm"
            assert transport["assembly_fallbacks"] == 0
            assert transport["inline_dispatches"] == 0

    def test_oversized_batch_falls_back_inline_and_is_counted(self, smoke):
        # Slots too small for even one sample: every dispatch must fall back
        # to the inline path, be counted, and still answer bit-identically.
        config = ServeConfig(workers=1, max_batch_size=2, shm_slots=4,
                             shm_slot_bytes=64, startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            output = pool.predict(smoke.samples[0], timeout=120.0)
            assert np.array_equal(output, smoke.expected[0])
            transport = pool.stats()["transport"]
            assert transport["assembly_fallbacks"] >= 1
            assert transport["inline_dispatches"] >= 1
