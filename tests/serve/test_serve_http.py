"""HTTP front door: endpoints, cache, load shedding, drain, error mapping."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    PoolSaturated,
    ServeConfig,
    ServingApp,
    ServingServer,
    WorkerCrashed,
)

SHAPE = (3, 32, 32)


# --------------------------------------------------------------------------- #
# Unit level: ServingApp against a stub pool (no processes, no sockets)
# --------------------------------------------------------------------------- #

class StubPool:
    """Deterministic stand-in for WorkerPool."""

    def __init__(self, behaviour="ok"):
        self.behaviour = behaviour
        self.config = ServeConfig(workers=1, cache_size=4)
        self.calls = 0
        self.accepting = True

    def predict(self, sample, timeout=None):
        self.calls += 1
        if self.behaviour == "saturated":
            raise PoolSaturated("9 requests in flight >= watermark 8")
        if self.behaviour == "crashed":
            raise WorkerCrashed("worker 0 died with this request in flight")
        return np.asarray(sample, dtype=np.float32).sum(axis=(1, 2))

    def alive_workers(self):
        return 1

    def stats(self):
        return {"submitted": self.calls}


def make_app(behaviour="ok", **config_kwargs) -> ServingApp:
    pool = StubPool(behaviour)
    config = ServeConfig(workers=1, **config_kwargs)
    return ServingApp(pool, SHAPE, config)


class TestServingAppPredict:
    def test_valid_request_succeeds(self):
        app = make_app()
        sample = np.ones(SHAPE, dtype=np.float32)
        status, body = app.predict_payload({"input": sample.tolist()})
        assert status == 200
        assert body["cached"] is False
        assert body["output"] == [1024.0, 1024.0, 1024.0]

    def test_cache_hit_returns_bit_identical_payload(self):
        app = make_app(cache_size=8)
        sample = np.random.default_rng(0).standard_normal(SHAPE).astype(np.float32)
        status1, body1 = app.predict_payload({"input": sample.tolist()})
        status2, body2 = app.predict_payload({"input": sample.tolist()})
        assert (status1, status2) == (200, 200)
        assert body1["cached"] is False and body2["cached"] is True
        # Bit-identical payload: the exact same floats, not approximately.
        assert body1["output"] == body2["output"]
        assert app.pool.calls == 1                 # second answer never hit the pool
        assert app.cache.hits == 1

    def test_cache_disabled_always_hits_the_pool(self):
        app = make_app(cache_size=0)
        sample = np.ones(SHAPE, dtype=np.float32)
        app.predict_payload({"input": sample.tolist()})
        app.predict_payload({"input": sample.tolist()})
        assert app.pool.calls == 2

    def test_missing_input_key_is_400(self):
        status, body = make_app().predict_payload({"sample": [1, 2]})
        assert status == 400 and "input" in body["error"]

    def test_non_object_payload_is_400(self):
        status, _ = make_app().predict_payload([1, 2, 3])
        assert status == 400

    def test_unparseable_input_is_400(self):
        status, body = make_app().predict_payload({"input": ["a", "b"]})
        assert status == 400 and "float" in body["error"]

    def test_wrong_shape_is_400_and_names_both_shapes(self):
        status, body = make_app().predict_payload({"input": [[1.0, 2.0]]})
        assert status == 400
        assert "[1, 2]" in body["error"] and "[3, 32, 32]" in body["error"]

    def test_saturated_pool_is_503(self):
        app = make_app("saturated")
        sample = np.ones(SHAPE, dtype=np.float32)
        status, body = app.predict_payload({"input": sample.tolist()})
        assert status == 503 and "overloaded" in body["error"]

    def test_worker_crash_is_500(self):
        app = make_app("crashed")
        sample = np.ones(SHAPE, dtype=np.float32)
        status, body = app.predict_payload({"input": sample.tolist()})
        assert status == 500 and "WorkerCrashed" in body["error"]

    def test_draining_app_sheds_with_503(self):
        app = make_app()
        app.draining = True
        sample = np.ones(SHAPE, dtype=np.float32)
        status, body = app.predict_payload({"input": sample.tolist()})
        assert status == 503 and "draining" in body["error"]
        assert app.pool.calls == 0

    def test_healthz_reflects_drain_state(self):
        app = make_app()
        assert app.healthz()[0] == 200
        app.draining = True
        status, body = app.healthz()
        assert status == 503 and body["status"] == "draining"

    def test_cached_responses_are_frozen_against_caller_mutation(self):
        app = make_app(cache_size=8)
        sample = np.ones(SHAPE, dtype=np.float32)
        output, _ = app.predict_array(sample)
        assert output.flags.writeable is False
        with pytest.raises(ValueError):
            output += 1.0                 # would silently poison the cache
        hit, cached = app.predict_array(sample)
        assert cached is True and np.array_equal(hit, output)


class TestServeEntryPointArguments:
    def test_experiment_serve_rejects_config_plus_overrides(self, smoke):
        with pytest.raises(ValueError, match="not both"):
            smoke.experiment.serve(workers=8, config=ServeConfig())
        with pytest.raises(ValueError, match="not both"):
            smoke.experiment.serve(config=ServeConfig(), cache_size=4)

    def test_experiment_serve_builds_config_from_overrides(self, smoke):
        server = smoke.experiment.serve(workers=3, port=0, cache_size=7)
        assert server.config.workers == 3
        assert server.config.port == 0
        assert server.config.cache_size == 7   # server never started: no cleanup


# --------------------------------------------------------------------------- #
# Integration: a real ServingServer over real workers and real sockets
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def server(smoke):
    config = ServeConfig(workers=2, port=0, cache_size=32, startup_timeout=120.0)
    running = ServingServer(smoke.spec, state=smoke.state, config=config).start()
    yield running
    running.close()


def http_get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_post(url: str, data: bytes):
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServingServerIntegration:
    def test_healthz_reports_ok_with_all_workers(self, server):
        status, body = http_get(f"{server.url}/healthz")
        assert status == 200
        assert body == {"status": "ok", "workers_alive": 2, "workers_total": 2}

    def test_predict_answers_bit_identical_outputs(self, server, smoke):
        for sample, expected in zip(smoke.samples[:3], smoke.expected[:3]):
            status, body = http_post(f"{server.url}/predict",
                                     json.dumps({"input": sample.tolist()}).encode())
            assert status == 200
            assert np.array_equal(np.asarray(body["output"], dtype=np.float32),
                                  expected)

    def test_repeated_request_is_served_from_the_cache(self, server, smoke):
        payload = json.dumps({"input": smoke.samples[4].tolist()}).encode()
        status1, body1 = http_post(f"{server.url}/predict", payload)
        status2, body2 = http_post(f"{server.url}/predict", payload)
        assert (status1, status2) == (200, 200)
        assert body2["cached"] is True
        assert body1["output"] == body2["output"]

    def test_malformed_json_body_is_400(self, server):
        status, body = http_post(f"{server.url}/predict", b"{not json")
        assert status == 400 and "JSON" in body["error"]

    def test_unknown_endpoint_is_404_and_bucketed_in_metrics(self, server):
        assert http_get(f"{server.url}/nope")[0] == 404
        assert http_post(f"{server.url}/train", b"{}")[0] == 404
        endpoints = http_get(f"{server.url}/stats")[1]["serving"]["endpoints"]
        # Unknown paths share one metrics bucket — a fuzzer must not be able
        # to grow the counter map (and the /stats payload) without bound.
        assert "/nope" not in endpoints and "/train" not in endpoints
        assert endpoints["other"]["errors_4xx"] >= 2

    def test_stats_exposes_cache_pool_and_latency_counters(self, server, smoke):
        http_post(f"{server.url}/predict",
                  json.dumps({"input": smoke.samples[0].tolist()}).encode())
        status, body = http_get(f"{server.url}/stats")
        assert status == 200
        assert body["pool"]["completed"] >= 1
        assert body["cache"]["capacity"] == 32
        predict = body["serving"]["endpoints"]["/predict"]
        assert predict["requests"] >= 1
        assert predict["mean_ms"] > 0

    def test_in_process_predict_uses_the_http_request_path(self, server, smoke):
        out = server.predict(smoke.samples[1])
        assert np.array_equal(out, smoke.expected[1])

    def test_bind_failure_does_not_leak_the_pool(self, server, smoke):
        # Same port as the running server: workers spawn, the bind fails,
        # and start() must tear the pool down instead of orphaning it.
        config = ServeConfig(workers=1, port=server.port, startup_timeout=120.0)
        doomed = ServingServer(smoke.spec, state=smoke.state, config=config)
        with pytest.raises(OSError):
            doomed.start()
        assert doomed.pool.alive_workers() == 0
        assert doomed.pool.accepting is False

    # Keep this one LAST in the class: it flips the module-scoped server into
    # its drain state, after which /predict stops accepting work.
    def test_drain_flips_healthz_and_sheds_predicts(self, server, smoke):
        blocker = server.pool.submit_sleep(0.5)      # real in-flight work
        server.drain(wait=False)
        status, body = http_get(f"{server.url}/healthz")
        assert status == 503 and body["status"] == "draining"
        status, body = http_post(
            f"{server.url}/predict",
            json.dumps({"input": smoke.samples[0].tolist()}).encode())
        assert status == 503 and "draining" in body["error"]
        assert blocker.result(timeout=60.0) is None  # in-flight work finished
        stats = http_get(f"{server.url}/stats")[1]
        assert stats["draining"] is True
        assert stats["serving"]["endpoints"]["/predict"]["shed"] >= 1
