"""Ablation A1 — the QDNN construction design insights of Sec. 4.2.

The paper derives three construction rules for quadratic models:

1. QDNN depth can be reduced relative to the first-order network;
2. BatchNorm after quadratic layers is essential because the second-order
   term produces extreme values;
3. shallow QDNNs can drop ReLU, deep QDNNs need it.

This ablation trains the same quadratic backbone with each switch toggled and
reports training stability and accuracy.
"""

import numpy as np
import pytest

from common import BATCH_SIZE, MAX_BATCHES, NUM_CLASSES, WIDTH, classification_data, fresh_seed, save_experiment
from repro.builder import QuadraticModelConfig
from repro.models import vgg_from_cfg
from repro.training import train_classifier
from repro.utils import print_table

SHALLOW_CFG = [16, "M", 32, "M"]
DEEP_CFG = [16, 16, "M", 32, 32, 32, "M", 32, 32, 32, "M"]
EPOCHS = 3
CHANCE = 1.0 / NUM_CLASSES


def _run(cfg, **config_kwargs):
    train_set, test_set = classification_data()
    config = QuadraticModelConfig(neuron_type="OURS", width_multiplier=WIDTH, **config_kwargs)
    model = vgg_from_cfg(cfg, num_classes=NUM_CLASSES, config=config)
    history = train_classifier(model, train_set, test_set, epochs=EPOCHS,
                               batch_size=BATCH_SIZE, lr=0.05,
                               max_batches_per_epoch=MAX_BATCHES, seed=23)
    return history


def test_ablation_design_insights(benchmark):
    settings = [
        ("Shallow QDNN (BN + ReLU)", SHALLOW_CFG, {}),
        ("Shallow QDNN, no ReLU", SHALLOW_CFG, {"use_activation": False}),
        ("Deep QDNN (BN + ReLU)", DEEP_CFG, {}),
        ("Deep QDNN, no ReLU", DEEP_CFG, {"use_activation": False}),
        ("Deep QDNN, no BatchNorm", DEEP_CFG, {"use_batchnorm": False}),
    ]
    rows, results = [], {}
    for index, (name, cfg, kwargs) in enumerate(settings):
        fresh_seed(80 + index)
        with np.errstate(all="ignore"):
            history = _run(cfg, **kwargs)
        train_acc = history.final_train_accuracy
        stable = np.isfinite(history.train_loss[-1])
        rows.append([name, round(train_acc, 3), round(history.final_test_accuracy, 3),
                     "yes" if stable else "no (diverged)"])
        results[name] = {"train_accuracy": train_acc,
                         "test_accuracy": history.final_test_accuracy,
                         "stable": bool(stable)}

    print()
    print_table(["Setting", "Train acc", "Test acc", "Numerically stable"], rows,
                title="Ablation A1 (design insights): BatchNorm / ReLU / depth for QDNNs")
    save_experiment("ablation_design_insights", results)

    # Insight 2: the BN-equipped deep QDNN must be stable and above chance.
    assert results["Deep QDNN (BN + ReLU)"]["stable"]
    assert results["Deep QDNN (BN + ReLU)"]["train_accuracy"] > CHANCE
    # Insight 3: dropping ReLU is harmless for the shallow QDNN (within noise)...
    assert results["Shallow QDNN, no ReLU"]["train_accuracy"] > CHANCE
    # Removing BatchNorm must not beat the BN model (it typically diverges).
    no_bn = results["Deep QDNN, no BatchNorm"]
    assert (not no_bn["stable"]) or (
        no_bn["train_accuracy"] <= results["Deep QDNN (BN + ReLU)"]["train_accuracy"] + 0.1
    )

    # Timed kernel: forward of the shallow QDNN.
    from repro.autodiff import randn

    model = vgg_from_cfg(SHALLOW_CFG, num_classes=NUM_CLASSES,
                         config=QuadraticModelConfig(neuron_type="OURS",
                                                     width_multiplier=WIDTH))
    x = randn(8, 3, 16, 16)
    benchmark(lambda: model(x))
