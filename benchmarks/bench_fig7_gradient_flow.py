"""Fig. 7 — per-layer gradient norms during training, with and without the linear term.

The paper trains a VGG-16-structured QDNN on CIFAR-10 and plots the summed
gradient L2-norm of a shallow (Conv1), middle (Conv7) and deep (Conv13)
convolution over epochs: without the linear term the shallow layer's
gradients collapse toward zero within the first epochs; with the linear term
they stay at a useful magnitude.

The scaled reproduction trains two deep plain QDNNs — T3 (no linear term) and
OURS (with the linear term) — on the synthetic dataset and records the same
three per-layer series with the gradient-flow probe.
"""

import numpy as np
import pytest

from common import BATCH_SIZE, MAX_BATCHES, NUM_CLASSES, WIDTH, classification_data, fresh_seed, save_experiment
from repro.analysis import ascii_line_chart
from repro.builder import QuadraticModelConfig
from repro.models import vgg_from_cfg
from repro.training import train_classifier
from repro.utils import print_table

DEEP_CFG = [16, 16, "M", 32, 32, 32, "M", 32, 32, 32, "M"]   # 8-conv plain stand-in
EPOCHS = 4
# Parameter-name prefixes of a shallow / middle / deep quadratic conv inside
# the VGG features Sequential produced by the construction function.
PROBE_LAYERS = ["features.0.", "features.13.", "features.23."]


def _train_with_probe(neuron_type: str, seed_offset: int):
    fresh_seed(70 + seed_offset)
    train_set, _ = classification_data()
    model = vgg_from_cfg(DEEP_CFG, num_classes=NUM_CLASSES,
                         config=QuadraticModelConfig(neuron_type=neuron_type,
                                                     width_multiplier=WIDTH))
    history = train_classifier(model, train_set, epochs=EPOCHS, batch_size=BATCH_SIZE,
                               lr=0.05, max_batches_per_epoch=MAX_BATCHES,
                               grad_probe_layers=PROBE_LAYERS, seed=7)
    series = {}
    for prefix in PROBE_LAYERS:
        matching = [values for name, values in history.gradient_norms.items()
                    if name.startswith(prefix) and name.endswith(("weight_a", "weight_sq",
                                                                  "weight", "weight_b",
                                                                  "weight_c"))]
        if matching:
            length = min(len(v) for v in matching)
            series[prefix] = [float(sum(v[i] for v in matching)) for i in range(length)]
        else:
            series[prefix] = []
    return series


def test_fig7_gradient_norms_with_and_without_linear_term(benchmark):
    without_linear = _train_with_probe("T3", seed_offset=0)    # no linear term
    with_linear = _train_with_probe("OURS", seed_offset=1)     # the paper's neuron

    labels = {"features.0.": "Conv1 (shallow)", "features.13.": "Conv-mid",
              "features.23.": "Conv-deep"}
    rows = []
    for prefix in PROBE_LAYERS:
        rows.append([
            labels[prefix],
            " ".join(f"{v:.2e}" for v in without_linear[prefix]),
            " ".join(f"{v:.2e}" for v in with_linear[prefix]),
        ])
    print()
    print_table(["Layer", "w/o linear term (per-epoch grad L2)", "w/ linear term (per-epoch grad L2)"],
                rows, title="Fig. 7 (reproduced, scaled): gradient norms over epochs")
    shallow_series = {
        "Conv1 w/o linear term (T3)": without_linear["features.0."],
        "Conv1 w/ linear term (OURS)": with_linear["features.0."],
    }
    if all(len(v) > 1 for v in shallow_series.values()):
        print()
        print(ascii_line_chart(shallow_series, width=48, height=10,
                               title="Fig. 7 (ASCII): shallow-layer gradient L2-norm per epoch",
                               y_label="sum of L2 norms", x_label="epoch"))
    save_experiment("fig7_gradient_flow", {
        "without_linear_term": without_linear,
        "with_linear_term": with_linear,
        "epochs": EPOCHS,
    })

    shallow = "features.0."
    assert len(with_linear[shallow]) == EPOCHS
    # Gradients of the shallow layer must stay finite and non-zero with the
    # linear term across every epoch (the Fig. 7b claim).
    assert all(np.isfinite(v) and v > 0 for v in with_linear[shallow])
    # And the with-linear-term shallow gradients should not be the smaller of
    # the two designs by the end of training (Fig. 7a vs 7b contrast).
    if without_linear[shallow] and np.isfinite(without_linear[shallow][-1]):
        assert with_linear[shallow][-1] >= 0.2 * without_linear[shallow][-1]

    # Timed kernel: a single probe snapshot on a trained model.
    from repro.quadratic import GradientFlowProbe
    from repro.autodiff import randn

    model = vgg_from_cfg(DEEP_CFG, num_classes=NUM_CLASSES,
                         config=QuadraticModelConfig(neuron_type="OURS",
                                                     width_multiplier=WIDTH))
    probe = GradientFlowProbe(model, layer_filter=PROBE_LAYERS)
    model(randn(4, 3, 16, 16)).sum().backward()
    benchmark(probe.snapshot)
