"""Tests for RMSprop, Adagrad, warm restarts and gradient clipping."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import nn
from repro.autodiff.tensor import Tensor
from repro.nn.parameter import Parameter
from repro.optim import (
    SGD,
    Adagrad,
    CosineAnnealingWarmRestarts,
    RMSprop,
    clip_grad_norm_,
    clip_grad_value_,
)


def quadratic_bowl_params(seed: int = 0):
    """A single parameter whose loss is a quadratic bowl around zero."""
    rng = np.random.default_rng(seed)
    return Parameter(rng.normal(scale=2.0, size=(6,)).astype(np.float32))


def run_optimizer(optimizer_factory, steps: int = 60) -> float:
    param = quadratic_bowl_params()
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        # d/dx of 0.5 * ||x||^2 is x.
        param.grad = param.data.copy()
        optimizer.step()
    return float(np.linalg.norm(param.data))


# --------------------------------------------------------------------------- #
# RMSprop / Adagrad
# --------------------------------------------------------------------------- #

def test_rmsprop_converges_on_quadratic_bowl():
    assert run_optimizer(lambda p: RMSprop(p, lr=0.05)) < 0.2


def test_rmsprop_variants_converge():
    assert run_optimizer(lambda p: RMSprop(p, lr=0.05, momentum=0.9)) < 0.2
    assert run_optimizer(lambda p: RMSprop(p, lr=0.05, centered=True)) < 0.5
    assert run_optimizer(lambda p: RMSprop(p, lr=0.05, weight_decay=1e-3)) < 0.2


def test_adagrad_converges_on_quadratic_bowl():
    assert run_optimizer(lambda p: Adagrad(p, lr=0.5), steps=120) < 0.3


def test_adagrad_effective_lr_decays():
    param = Parameter(np.ones(3, dtype=np.float32))
    optimizer = Adagrad([param], lr=0.1, lr_decay=0.5)
    steps = []
    for _ in range(3):
        before = param.data.copy()
        param.grad = np.ones_like(param.data)
        optimizer.step()
        steps.append(float(np.abs(before - param.data).mean()))
    # Both the accumulator and the lr decay shrink successive steps.
    assert steps[0] > steps[1] > steps[2]


def test_new_optimizer_validation():
    param = [Parameter(np.zeros(2, dtype=np.float32))]
    with pytest.raises(ValueError):
        RMSprop(param, lr=-1.0)
    with pytest.raises(ValueError):
        RMSprop(param, alpha=1.5)
    with pytest.raises(ValueError):
        Adagrad(param, lr=0.0)
    with pytest.raises(ValueError):
        Adagrad(param, lr_decay=-0.1)


def test_optimizers_skip_parameters_without_gradients():
    frozen = Parameter(np.ones(2, dtype=np.float32), requires_grad=False)
    active = Parameter(np.ones(2, dtype=np.float32))
    for optimizer in (RMSprop([frozen, active], lr=0.1), Adagrad([frozen, active], lr=0.1)):
        active.grad = np.ones_like(active.data)
        frozen.grad = None
        before = frozen.data.copy()
        optimizer.step()
        np.testing.assert_array_equal(frozen.data, before)


def test_rmsprop_trains_a_small_model():
    model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
    optimizer = RMSprop(model.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 4)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)
    losses = []
    for _ in range(25):
        optimizer.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    assert losses[-1] < losses[0]


# --------------------------------------------------------------------------- #
# Warm restarts
# --------------------------------------------------------------------------- #

def test_warm_restarts_validation():
    param = [Parameter(np.zeros(2, dtype=np.float32))]
    optimizer = SGD(param, lr=0.1)
    with pytest.raises(ValueError):
        CosineAnnealingWarmRestarts(optimizer, t_0=0)
    with pytest.raises(ValueError):
        CosineAnnealingWarmRestarts(optimizer, t_0=5, t_mult=0)


def test_warm_restarts_restart_returns_to_base_lr():
    param = [Parameter(np.zeros(2, dtype=np.float32))]
    optimizer = SGD(param, lr=0.1)
    scheduler = CosineAnnealingWarmRestarts(optimizer, t_0=4)
    lrs = [scheduler.current_lr]
    for _ in range(8):
        scheduler.step()
        lrs.append(scheduler.current_lr)
    assert lrs[0] == pytest.approx(0.1)
    # Within a cycle the lr decays monotonically...
    assert lrs[1] < lrs[0] and lrs[3] < lrs[2]
    # ...and at the start of the next cycle (epoch 4) it restarts at the base lr.
    assert lrs[4] == pytest.approx(0.1)
    assert lrs[8] == pytest.approx(0.1)


def test_warm_restarts_t_mult_stretches_cycles():
    param = [Parameter(np.zeros(2, dtype=np.float32))]
    optimizer = SGD(param, lr=0.1)
    scheduler = CosineAnnealingWarmRestarts(optimizer, t_0=2, t_mult=2)
    lrs = [scheduler.current_lr]
    for _ in range(6):
        scheduler.step()
        lrs.append(scheduler.current_lr)
    # Cycle boundaries at epochs 2 and 6 (lengths 2 then 4).
    assert lrs[2] == pytest.approx(0.1)
    assert lrs[6] == pytest.approx(0.1)
    # Epoch 4 is the midpoint of the second (length-4) cycle.
    assert lrs[4] == pytest.approx(0.05, rel=1e-6)


def test_warm_restarts_single_cycle_matches_cosine():
    from repro.optim import CosineAnnealingLR

    def lr_trace(make_scheduler):
        param = [Parameter(np.zeros(2, dtype=np.float32))]
        optimizer = SGD(param, lr=0.2)
        scheduler = make_scheduler(optimizer)
        trace = [scheduler.current_lr]
        for _ in range(4):
            scheduler.step()
            trace.append(scheduler.current_lr)
        return trace

    restarts = lr_trace(lambda opt: CosineAnnealingWarmRestarts(opt, t_0=5))
    cosine = lr_trace(lambda opt: CosineAnnealingLR(opt, t_max=5))
    np.testing.assert_allclose(restarts, cosine, rtol=1e-6)


# --------------------------------------------------------------------------- #
# Gradient clipping
# --------------------------------------------------------------------------- #

def test_clip_grad_norm_scales_down_large_gradients():
    params = [Parameter(np.zeros(4, dtype=np.float32)) for _ in range(2)]
    for p in params:
        p.grad = np.full(4, 3.0, dtype=np.float32)
    total = clip_grad_norm_(params, max_norm=1.0)
    assert total == pytest.approx(math.sqrt(8 * 9.0), rel=1e-5)
    new_norm = math.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params))
    assert new_norm == pytest.approx(1.0, rel=1e-3)


def test_clip_grad_norm_leaves_small_gradients_untouched():
    param = Parameter(np.zeros(3, dtype=np.float32))
    param.grad = np.array([0.1, 0.1, 0.1], dtype=np.float32)
    before = param.grad.copy()
    total = clip_grad_norm_([param], max_norm=10.0)
    np.testing.assert_array_equal(param.grad, before)
    assert total == pytest.approx(float(np.linalg.norm(before)), rel=1e-5)


def test_clip_grad_norm_inf_norm_and_empty():
    param = Parameter(np.zeros(3, dtype=np.float32))
    param.grad = np.array([1.0, -5.0, 2.0], dtype=np.float32)
    total = clip_grad_norm_([param], max_norm=2.0, norm_type=float("inf"))
    assert total == pytest.approx(5.0)
    assert float(np.abs(param.grad).max()) <= 2.0 + 1e-5
    assert clip_grad_norm_([], max_norm=1.0) == 0.0


def test_clip_grad_value_clamps_elementwise():
    param = Parameter(np.zeros(4, dtype=np.float32))
    param.grad = np.array([-3.0, -0.5, 0.5, 3.0], dtype=np.float32)
    clip_grad_value_([param], clip_value=1.0)
    np.testing.assert_allclose(param.grad, [-1.0, -0.5, 0.5, 1.0])


def test_clip_validation():
    with pytest.raises(ValueError):
        clip_grad_norm_([], max_norm=0.0)
    with pytest.raises(ValueError):
        clip_grad_value_([], clip_value=-1.0)
