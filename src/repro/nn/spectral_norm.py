"""Spectral normalisation (Miyato et al., 2018).

SNGAN — the GAN baseline of the paper's Table 5 — constrains the Lipschitz
constant of the discriminator by dividing every weight matrix by its largest
singular value, estimated with one power-iteration step per forward pass.
``SpectralNorm`` wraps any module exposing a ``weight`` parameter (Linear,
Conv2d or the quadratic layers, whose three weight tensors are normalised
independently when requested).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..autodiff.tensor import Tensor
from .module import Module
from .parameter import Parameter


def _power_iteration(w: np.ndarray, u: np.ndarray, n_iters: int = 1, eps: float = 1e-12):
    """One (or more) power-iteration steps estimating the top singular value."""
    w2d = w.reshape(w.shape[0], -1)
    v = None
    for _ in range(max(n_iters, 1)):
        v = w2d.T @ u
        v = v / (np.linalg.norm(v) + eps)
        u = w2d @ v
        u = u / (np.linalg.norm(u) + eps)
    sigma = float(u @ (w2d @ v))
    return max(abs(sigma), eps), u


class SpectralNorm(Module):
    """Wrap a module and rescale its weight parameter(s) to unit spectral norm.

    The singular-value estimate is refreshed before every forward call in
    training mode.  The wrapped module keeps ownership of its parameters, so
    optimizers and ``state_dict`` work unchanged.
    """

    def __init__(self, module: Module, weight_names: List[str] | None = None,
                 n_power_iterations: int = 1) -> None:
        super().__init__()
        self.module = module
        self.n_power_iterations = int(n_power_iterations)
        if weight_names is None:
            weight_names = [name for name, _ in module._parameters.items()
                            if name.startswith("weight") or name.startswith("w")]
            if not weight_names and "weight" in module._parameters:
                weight_names = ["weight"]
        if not weight_names:
            raise ValueError("SpectralNorm requires the wrapped module to expose a weight parameter")
        self.weight_names = list(weight_names)
        # The power-iteration vectors are registered buffers so checkpoints
        # capture them: resuming with a re-seeded u would re-converge over a
        # few steps, but the run would no longer be bit-identical.
        for name in self.weight_names:
            self.register_buffer(
                f"u_{name}",
                np.random.default_rng(0).standard_normal(
                    module._parameters[name].shape[0]).astype(np.float32))

    def forward(self, *args, **kwargs):
        if self.training:
            for name in self.weight_names:
                param: Parameter = self.module._parameters[name]
                sigma, u = _power_iteration(param.data, self._buffers[f"u_{name}"],
                                            self.n_power_iterations)
                self.register_buffer(f"u_{name}", u.astype(np.float32))
                param.data /= sigma
        return self.module(*args, **kwargs)

    def extra_repr(self) -> str:
        return f"weights={self.weight_names}, n_power_iterations={self.n_power_iterations}"
