"""Tests for the Π-net style polynomial layers (PolyLinear / PolyConv2d)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.autodiff import no_grad, randn
from repro.autodiff.tensor import Tensor
from repro.data import TensorDataset
from repro.data.synthetic import xor_dataset
from repro.quadratic import PolyConv2d, PolyLinear, polynomial_layer, typenew
from repro.training import train_classifier


def rand(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape).astype(np.float32),
                  requires_grad=True)


# --------------------------------------------------------------------------- #
# Construction and shapes
# --------------------------------------------------------------------------- #

def test_invalid_order_raises():
    with pytest.raises(ValueError):
        PolyLinear(4, 4, order=0)
    with pytest.raises(ValueError):
        PolyConv2d(3, 8, order=-1)


def test_poly_linear_shapes_and_parameter_growth():
    x = rand(5, 6)
    params_by_order = []
    for order in (1, 2, 3, 4):
        layer = PolyLinear(6, 7, order=order)
        assert layer(x).shape == (5, 7)
        params_by_order.append(layer.num_parameters())
    # One extra 6x7 projection per additional order (bias is shared).
    diffs = np.diff(params_by_order)
    assert np.all(diffs == 6 * 7)


def test_poly_conv_shapes_and_parameter_growth():
    x = rand(2, 3, 10, 10)
    params_by_order = []
    for order in (1, 2, 3):
        layer = PolyConv2d(3, 8, kernel_size=3, padding=1, order=order)
        assert layer(x).shape == (2, 8, 10, 10)
        params_by_order.append(layer.num_parameters())
    diffs = np.diff(params_by_order)
    assert np.all(diffs == 8 * 3 * 3 * 3)


def test_poly_conv_stride_and_no_bias():
    layer = PolyConv2d(3, 4, kernel_size=3, stride=2, padding=1, order=2, bias=False)
    out = layer(rand(1, 3, 8, 8))
    assert out.shape == (1, 4, 4, 4)
    assert layer.bias is None


def test_polynomial_layer_factory_dispatch():
    dense = polynomial_layer(6, 7, order=3)
    conv = polynomial_layer(3, 8, order=2, kernel_size=3, padding=1)
    assert isinstance(dense, PolyLinear) and dense.order == 3
    assert isinstance(conv, PolyConv2d) and conv.order == 2


# --------------------------------------------------------------------------- #
# Semantics
# --------------------------------------------------------------------------- #

def test_order_one_equals_plain_linear_projection():
    layer = PolyLinear(5, 3, order=1, bias=False)
    x = rand(4, 5)
    expected = x.data @ layer.projections[0].weight.data.T
    np.testing.assert_allclose(layer(x).data, expected, rtol=1e-5, atol=1e-6)


def test_order_two_matches_tied_quadratic_formula():
    # x2 = (U2 z) ∘ (U1 z) + U1 z  — the paper's Eq. 2 with Wb = Wc tied.
    layer = PolyLinear(5, 3, order=2, bias=False)
    z = rand(4, 5)
    u1 = z.data @ layer.projections[0].weight.data.T
    u2 = z.data @ layer.projections[1].weight.data.T
    expected = u2 * u1 + u1
    np.testing.assert_allclose(layer(z).data, expected, rtol=1e-5, atol=1e-5)


def test_gradients_flow_to_every_projection():
    layer = PolyConv2d(3, 4, kernel_size=3, padding=1, order=3)
    x = rand(2, 3, 6, 6)
    layer(x).sum().backward()
    assert x.grad is not None and np.isfinite(x.grad).all()
    for projection in layer.projections:
        assert projection.weight.grad is not None
        assert np.abs(projection.weight.grad).sum() > 0


def test_poly_linear_numeric_gradient(numgrad):
    layer = PolyLinear(4, 3, order=3)
    x_data = np.random.default_rng(1).normal(size=(2, 4)).astype(np.float32)

    def loss_value():
        with no_grad():
            return float(layer(Tensor(x_data)).sum().item())

    weight = layer.projections[1].weight
    expected = numgrad(loss_value, weight.data)
    x = Tensor(x_data)
    layer(x).sum().backward()
    np.testing.assert_allclose(weight.grad, expected, rtol=2e-2, atol=2e-2)
    layer.zero_grad()


@given(order=st.integers(min_value=1, max_value=4))
@settings(max_examples=8, deadline=None)
def test_output_is_polynomial_of_declared_degree(order):
    """The (order+1)-th finite difference of t ↦ f(x + t·v) vanishes."""
    layer = PolyLinear(3, 2, order=order, bias=False)
    rng = np.random.default_rng(order)
    x0 = rng.normal(size=(1, 3)).astype(np.float64)
    v = rng.normal(size=(1, 3)).astype(np.float64)

    h = 0.5
    steps = order + 2
    with no_grad():
        values = np.array([
            float(layer(Tensor((x0 + (i * h) * v).astype(np.float32))).sum().item())
            for i in range(steps)
        ], dtype=np.float64)
    diffs = values
    for _ in range(order + 1):
        diffs = np.diff(diffs)
    scale = max(np.abs(values).max(), 1.0)
    assert np.all(np.abs(diffs) <= 5e-3 * scale)


# --------------------------------------------------------------------------- #
# Integration
# --------------------------------------------------------------------------- #

def test_poly_conv_composes_in_sequential_and_trains():
    x, y = xor_dataset(200)
    dataset = TensorDataset(x, y)
    model = nn.Sequential(PolyLinear(2, 8, order=2), nn.ReLU(), nn.Linear(8, 2))
    history = train_classifier(model, dataset, epochs=10, batch_size=32, lr=0.05)
    assert history.final_train_accuracy > 0.6


def test_poly_conv_in_small_cnn_forward_backward():
    model = nn.Sequential(
        PolyConv2d(3, 8, kernel_size=3, padding=1, order=3),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 5),
    )
    x = randn(4, 3, 12, 12)
    out = model(x)
    assert out.shape == (4, 5)
    out.sum().backward()
    for p in model.parameters():
        if p.requires_grad:
            assert p.grad is not None


def test_untied_quadratic_layer_has_more_parameters_than_order2_poly():
    # The paper's OURS neuron owns three untied weight sets; the order-2 Π-net
    # recursion ties the Hadamard factor to the linear path, so it owns two.
    poly = PolyConv2d(3, 8, kernel_size=3, padding=1, order=2, bias=False)
    ours = typenew(3, 8, kernel_size=3, padding=1, bias=False)
    assert ours.num_parameters() == 3 * 8 * 3 * 3 * 3
    assert poly.num_parameters() == 2 * 8 * 3 * 3 * 3
