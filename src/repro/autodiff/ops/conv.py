"""Convolution, pooling and upsampling primitives.

The 2-D convolution is implemented with the classic im2col lowering: patches
are gathered into a matrix and the convolution becomes a batched matrix
multiplication, which keeps all heavy lifting inside BLAS.  Grouped
convolution is supported so that MobileNet-style depthwise convolutions
(``groups == in_channels``) — one of the three backbone families evaluated in
the paper's Table 3 — work out of the box.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..function import Context, Function


def _pair(value) -> Tuple[int, int]:
    """Normalise an int-or-pair argument to a 2-tuple."""
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: Tuple[int, int],
           padding: Tuple[int, int], out: np.ndarray = None) -> np.ndarray:
    """Lower image patches into a column tensor.

    Parameters
    ----------
    x : array of shape (N, C, H, W)
    out : optional pre-allocated destination of shape (N, C, kh, kw, OH, OW);
        the compiled inference path passes a pooled buffer here so the
        biggest allocation of the convolution is paid only once per shape.
    Returns
    -------
    array of shape (N, C, kh, kw, OH, OW)
    """
    n, c, h, w = x.shape
    sh, sw = stride
    ph, pw = padding
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    cols_shape = (n, c, kh, kw, oh, ow)
    if out is not None and out.shape == cols_shape and out.dtype == x.dtype:
        cols = out
    else:
        cols = np.empty(cols_shape, dtype=x.dtype)
    for i in range(kh):
        i_max = i + sh * oh
        for j in range(kw):
            j_max = j + sw * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:sh, j:j_max:sw]
    return cols


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int, kw: int,
           stride: Tuple[int, int], padding: Tuple[int, int]) -> np.ndarray:
    """Scatter a column tensor back into an image, accumulating overlaps."""
    n, c, h, w = x_shape
    sh, sw = stride
    ph, pw = padding
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + sh * oh
        for j in range(kw):
            j_max = j + sw * ow
            padded[:, :, i:i_max:sh, j:j_max:sw] += cols[:, :, i, j, :, :]
    if ph or pw:
        return padded[:, :, ph:ph + h, pw:pw + w]
    return padded


class Conv2d(Function):
    """Grouped 2-D convolution ``out = conv(x, w) + b``.

    Shapes follow PyTorch: ``x`` is (N, C, H, W), ``w`` is
    (F, C // groups, kh, kw) and ``b`` is (F,) or ``None``.
    """

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, w: np.ndarray,
                b: Optional[np.ndarray] = None, stride=1, padding=0,
                groups: int = 1) -> np.ndarray:
        stride = _pair(stride)
        padding = _pair(padding)
        n, c, h, wd = x.shape
        f, c_g, kh, kw = w.shape
        if c != c_g * groups:
            raise ValueError(
                f"Conv2d channel mismatch: input has {c} channels but weight "
                f"expects {c_g * groups} (groups={groups})"
            )
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(wd, kw, stride[1], padding[1])

        cols = im2col(x, kh, kw, stride, padding)          # (N, C, kh, kw, OH, OW)
        cols = cols.reshape(n, groups, c_g * kh * kw, oh * ow)
        wmat = w.reshape(groups, f // groups, c_g * kh * kw)

        # (N, G, Fg, OH*OW) = (G, Fg, K) @ (N, G, K, OH*OW)
        out = np.einsum("gfk,ngko->ngfo", wmat, cols, optimize=True)
        out = out.reshape(n, f, oh, ow)
        if b is not None:
            out += b.reshape(1, f, 1, 1)

        ctx.stride, ctx.padding, ctx.groups = stride, padding, groups
        ctx.x_shape, ctx.w_shape = x.shape, w.shape
        ctx.has_bias = b is not None
        ctx.save_for_backward(x, w)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x, w = ctx.saved_tensors
        stride, padding, groups = ctx.stride, ctx.padding, ctx.groups
        n, c, h, wd = ctx.x_shape
        f, c_g, kh, kw = ctx.w_shape
        grad = np.ascontiguousarray(grad)
        oh, ow = grad.shape[2], grad.shape[3]
        grad_g = grad.reshape(n, groups, f // groups, oh * ow)

        gx = gw = gb = None
        wmat = w.reshape(groups, f // groups, c_g * kh * kw)

        if ctx.needs_input_grad[0]:
            # dX = W^T @ dOut, scattered back to image space.
            cols_grad = np.einsum("gfk,ngfo->ngko", wmat, grad_g, optimize=True)
            cols_grad = cols_grad.reshape(n, c, kh, kw, oh, ow)
            gx = col2im(cols_grad, ctx.x_shape, kh, kw, stride, padding)

        if ctx.needs_input_grad[1]:
            cols = im2col(x, kh, kw, stride, padding)
            cols = cols.reshape(n, groups, c_g * kh * kw, oh * ow)
            gw = np.einsum("ngfo,ngko->gfk", grad_g, cols, optimize=True)
            gw = gw.reshape(f, c_g, kh, kw)

        if ctx.has_bias and len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            gb = grad.sum(axis=(0, 2, 3))

        return gx, gw, gb, None, None, None


class MaxPool2d(Function):
    """Max pooling with square-or-rectangular windows."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, kernel_size=2, stride=None, padding=0) -> np.ndarray:
        kh, kw = _pair(kernel_size)
        stride = _pair(stride if stride is not None else kernel_size)
        padding = _pair(padding)
        n, c, h, w = x.shape
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])

        cols = im2col(x, kh, kw, stride, padding)       # (N, C, kh, kw, OH, OW)
        cols = cols.reshape(n, c, kh * kw, oh, ow)
        argmax = cols.argmax(axis=2)
        out = np.take_along_axis(cols, argmax[:, :, None], axis=2).squeeze(2)

        ctx.kernel = (kh, kw)
        ctx.stride, ctx.padding = stride, padding
        ctx.x_shape = x.shape
        ctx.save_for_backward(argmax.astype(np.int32))
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (argmax,) = ctx.saved_tensors
        kh, kw = ctx.kernel
        n, c, h, w = ctx.x_shape
        oh, ow = grad.shape[2], grad.shape[3]
        cols_grad = np.zeros((n, c, kh * kw, oh, ow), dtype=grad.dtype)
        np.put_along_axis(cols_grad, argmax[:, :, None].astype(np.intp),
                          np.asarray(grad)[:, :, None], axis=2)
        cols_grad = cols_grad.reshape(n, c, kh, kw, oh, ow)
        gx = col2im(cols_grad, ctx.x_shape, kh, kw, ctx.stride, ctx.padding)
        return (gx, None, None, None)


class AvgPool2d(Function):
    """Average pooling."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, kernel_size=2, stride=None, padding=0) -> np.ndarray:
        kh, kw = _pair(kernel_size)
        stride = _pair(stride if stride is not None else kernel_size)
        padding = _pair(padding)
        cols = im2col(x, kh, kw, stride, padding)
        out = cols.mean(axis=(2, 3))
        ctx.kernel = (kh, kw)
        ctx.stride, ctx.padding = stride, padding
        ctx.x_shape = x.shape
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        kh, kw = ctx.kernel
        n, c, h, w = ctx.x_shape
        grad = np.asarray(grad)
        oh, ow = grad.shape[2], grad.shape[3]
        cols_grad = np.broadcast_to(
            grad[:, :, None, None] / (kh * kw), (n, c, kh, kw, oh, ow)
        ).astype(grad.dtype)
        gx = col2im(cols_grad, ctx.x_shape, kh, kw, ctx.stride, ctx.padding)
        return (gx, None, None, None)


class UpsampleNearest2d(Function):
    """Nearest-neighbour upsampling by an integer scale factor (GAN generator)."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, scale_factor: int = 2) -> np.ndarray:
        s = int(scale_factor)
        ctx.scale = s
        return x.repeat(s, axis=2).repeat(s, axis=3)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        s = ctx.scale
        grad = np.asarray(grad)
        n, c, h, w = grad.shape
        gx = grad.reshape(n, c, h // s, s, w // s, s).sum(axis=(3, 5))
        return (gx, None)
