"""Candidate evaluation for design exploration.

Exploring QDNN structures requires a cheap but informative estimate of each
candidate's quality.  The :class:`ProxyEvaluator` follows the standard NAS
proxy-task recipe: a short training run on a reduced dataset provides the
accuracy signal, while the analytical profilers provide the efficiency
objectives the paper's Table 3 reports (parameters, MACs, training memory).

Evaluations are cached by genome key, so search drivers can re-visit
candidates (e.g. elitism in the evolutionary search) without paying for
re-training.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..profiler.flops import profile_model
from ..profiler.memory import estimate_training_memory
from ..engine import run_classification
from ..training.classification import TrainingHistory
from .space import ArchitectureGenome


@dataclass
class CandidateEvaluation:
    """Objectives of one evaluated candidate architecture."""

    genome: ArchitectureGenome
    accuracy: float
    train_accuracy: float
    parameters: int
    macs: int
    training_memory_bytes: float
    seconds: float
    diverged: bool = False

    def objectives(self) -> Dict[str, float]:
        """Named objective values (accuracy is to be maximised, the rest minimised)."""
        return {
            "accuracy": self.accuracy,
            "parameters": float(self.parameters),
            "macs": float(self.macs),
            "training_memory_bytes": self.training_memory_bytes,
        }

    def summary_row(self) -> List:
        """Row for the exploration report tables."""
        return [
            self.genome.key(),
            self.genome.neuron_type,
            self.genome.num_conv_layers,
            self.parameters,
            round(self.accuracy, 3),
            "yes" if self.diverged else "no",
        ]


@dataclass
class SearchResult:
    """Outcome of one exploration run (random search or evolution)."""

    history: List[CandidateEvaluation] = field(default_factory=list)
    evaluations_used: int = 0

    @property
    def best(self) -> CandidateEvaluation:
        """Highest-accuracy candidate seen (ties broken by fewer parameters)."""
        if not self.history:
            raise ValueError("no candidates were evaluated")
        return max(self.history, key=lambda e: (e.accuracy, -e.parameters))

    def top(self, k: int = 5) -> List[CandidateEvaluation]:
        """The ``k`` best candidates by accuracy."""
        return sorted(self.history, key=lambda e: e.accuracy, reverse=True)[:k]

    def pareto_front(self, maximize: Sequence[str] = ("accuracy",),
                     minimize: Sequence[str] = ("parameters",)) -> List[CandidateEvaluation]:
        """Non-dominated candidates under the given objectives."""
        from .pareto import pareto_front

        return pareto_front(self.history, maximize=maximize, minimize=minimize)


class ProxyEvaluator:
    """Short-training proxy evaluation of architecture genomes.

    Parameters
    ----------
    train_dataset, test_dataset :
        The proxy task.  Accuracy is measured on ``test_dataset`` when given,
        otherwise the final training accuracy is used.
    num_classes, image_size :
        Classifier head size and probe resolution for the profilers.
    epochs, batch_size, max_batches_per_epoch, lr :
        Proxy-training budget (kept small by design).
    width_multiplier :
        Global width scale applied to every candidate (the same trick the
        benchmarks use to stay inside a CPU budget).
    seed :
        Base seed; every evaluation is seeded deterministically from it.
    """

    def __init__(self, train_dataset: Dataset, test_dataset: Optional[Dataset] = None,
                 num_classes: int = 10, image_size: int = 32, epochs: int = 2,
                 batch_size: int = 32, max_batches_per_epoch: Optional[int] = 8,
                 lr: float = 0.05, width_multiplier: float = 1.0, batch_size_for_memory: int = 256,
                 seed: int = 0) -> None:
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.num_classes = int(num_classes)
        self.image_size = int(image_size)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.max_batches_per_epoch = max_batches_per_epoch
        self.lr = float(lr)
        self.width_multiplier = float(width_multiplier)
        self.batch_size_for_memory = int(batch_size_for_memory)
        self.seed = int(seed)
        self.cache: Dict[str, CandidateEvaluation] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------ hooks
    def build(self, genome: ArchitectureGenome):
        """Instantiate the candidate model (overridable for other model families)."""
        return genome.build(self.num_classes, width_multiplier=self.width_multiplier)

    def train(self, model, seed: int) -> TrainingHistory:
        """Run the proxy training (overridable, e.g. for zero-cost proxies)."""
        with np.errstate(all="ignore"):
            return run_classification(
                model, self.train_dataset, self.test_dataset,
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
                max_batches_per_epoch=self.max_batches_per_epoch, seed=seed)

    # ------------------------------------------------------------------- call
    def __call__(self, genome: ArchitectureGenome) -> CandidateEvaluation:
        key = genome.key()
        if key in self.cache:
            return self.cache[key]

        start = time.perf_counter()
        model = self.build(genome)
        input_shape = (3, self.image_size, self.image_size)
        profile = profile_model(model, input_shape)
        memory = estimate_training_memory(model, input_shape)

        history = self.train(model, seed=self.seed + self.evaluations)
        accuracy = history.final_test_accuracy
        if not np.isfinite(accuracy):
            accuracy = history.final_train_accuracy
        diverged = not np.isfinite(history.train_loss[-1]) if history.train_loss else True
        if not np.isfinite(accuracy):
            accuracy = 0.0

        evaluation = CandidateEvaluation(
            genome=genome,
            accuracy=float(accuracy),
            train_accuracy=float(history.final_train_accuracy)
            if np.isfinite(history.final_train_accuracy) else 0.0,
            parameters=int(profile.total_parameters),
            macs=int(profile.total_macs),
            training_memory_bytes=float(memory.total_bytes(self.batch_size_for_memory)),
            seconds=time.perf_counter() - start,
            diverged=bool(diverged),
        )
        self.cache[key] = evaluation
        self.evaluations += 1
        return evaluation
