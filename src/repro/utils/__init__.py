"""Utility helpers: seeding, logging/tables, checkpoint serialisation."""

from .deprecation import reset_deprecation_warnings, warn_deprecated
from .logging import MetricLogger, format_table, print_table
from .seed import current_seed, seed_everything, spawn_rng
from .serialization import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    load_results,
    load_training_checkpoint,
    rng_state,
    save_checkpoint,
    save_results,
    save_training_checkpoint,
    set_rng_state,
)

__all__ = [
    "warn_deprecated",
    "reset_deprecation_warnings",
    "seed_everything",
    "current_seed",
    "spawn_rng",
    "MetricLogger",
    "format_table",
    "print_table",
    "save_checkpoint",
    "load_checkpoint",
    "save_results",
    "load_results",
    "CHECKPOINT_FORMAT",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "rng_state",
    "set_rng_state",
]
