"""``repro.analysis`` — QuadraLib's application-level model analysis tools."""

from ..quadratic.gradients import GradientFlowProbe
from .activation_vis import (
    AttentionStats,
    activation_attention,
    attention_statistics,
    capture_activation,
    compare_first_layer_attention,
    render_ascii,
)
from .distributions import (
    DistributionSummary,
    activation_distributions,
    gradient_distributions,
    histogram,
    weight_distributions,
)
from .plots import ascii_bar_chart, ascii_line_chart, sparkline

__all__ = [
    "GradientFlowProbe",
    "capture_activation",
    "activation_attention",
    "attention_statistics",
    "AttentionStats",
    "render_ascii",
    "compare_first_layer_attention",
    "DistributionSummary",
    "weight_distributions",
    "gradient_distributions",
    "activation_distributions",
    "histogram",
    "ascii_line_chart",
    "ascii_bar_chart",
    "sparkline",
]
