"""Synthetic workload generators standing in for CIFAR / Tiny-ImageNet / VOC / GAN data."""

from .classification import (
    SyntheticImageClassification,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_ilsvrc,
    synthetic_tiny_imagenet,
)
from .detection import (
    VOC_LIKE_CLASSES,
    SyntheticDetectionDataset,
    detection_collate,
)
from .generation import SyntheticGenerationDataset
from .toy import (
    circle_dataset,
    gaussian_clusters,
    polynomial_regression,
    two_spirals,
    xor_dataset,
)

__all__ = [
    "SyntheticImageClassification",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_tiny_imagenet",
    "synthetic_ilsvrc",
    "SyntheticDetectionDataset",
    "detection_collate",
    "VOC_LIKE_CLASSES",
    "SyntheticGenerationDataset",
    "xor_dataset",
    "circle_dataset",
    "two_spirals",
    "polynomial_regression",
    "gaussian_clusters",
]
