"""SNGAN training loop with the hinge objective (paper Sec. 5.3, scaled down)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..data.synthetic.generation import SyntheticGenerationDataset
from ..models.sngan import SNGANDiscriminator, SNGANGenerator
from ..nn import functional as F
from ..optim.adam import Adam


@dataclass
class GANTrainingHistory:
    """Per-step generator/discriminator losses."""

    generator_loss: List[float] = field(default_factory=list)
    discriminator_loss: List[float] = field(default_factory=list)

    @property
    def final_generator_loss(self) -> float:
        return self.generator_loss[-1] if self.generator_loss else float("nan")

    @property
    def final_discriminator_loss(self) -> float:
        return self.discriminator_loss[-1] if self.discriminator_loss else float("nan")


def train_sngan(generator: SNGANGenerator, discriminator: SNGANDiscriminator,
                dataset: SyntheticGenerationDataset, steps: int = 100, batch_size: int = 32,
                lr_generator: float = 2e-4, lr_discriminator: float = 2e-4,
                betas=(0.5, 0.9), discriminator_steps: int = 1,
                seed: int = 0) -> GANTrainingHistory:
    """Adversarial training with the hinge loss (the SNGAN objective).

    ``discriminator_steps`` controls how many discriminator updates run per
    generator update (the original SNGAN uses 5; the scaled benchmark uses 1).
    """
    rng = np.random.default_rng(seed)
    opt_g = Adam(generator.parameters(), lr=lr_generator, betas=betas)
    opt_d = Adam(discriminator.parameters(), lr=lr_discriminator, betas=betas)
    history = GANTrainingHistory()

    generator.train(True)
    discriminator.train(True)
    for _ in range(steps):
        # ---- discriminator update(s)
        d_loss_value = 0.0
        for _ in range(discriminator_steps):
            real = Tensor(dataset.sample(batch_size, rng=rng))
            z = Tensor(generator.sample_latent(batch_size, rng=rng))
            with no_grad():
                fake = generator(z)
            fake = Tensor(fake.data)  # block generator gradients explicitly
            opt_d.zero_grad()
            d_loss = F.hinge_loss_discriminator(discriminator(real), discriminator(fake))
            d_loss.backward()
            opt_d.step()
            d_loss_value = d_loss.item()

        # ---- generator update
        z = Tensor(generator.sample_latent(batch_size, rng=rng))
        opt_g.zero_grad()
        g_loss = F.hinge_loss_generator(discriminator(generator(z)))
        g_loss.backward()
        opt_g.step()

        history.discriminator_loss.append(d_loss_value)
        history.generator_loss.append(g_loss.item())
    return history


def generate_images(generator: SNGANGenerator, num_images: int, batch_size: int = 64,
                    seed: int = 0) -> np.ndarray:
    """Sample images from a trained generator (evaluation helper)."""
    rng = np.random.default_rng(seed)
    generator.train(False)
    batches = []
    with no_grad():
        remaining = num_images
        while remaining > 0:
            n = min(batch_size, remaining)
            z = Tensor(generator.sample_latent(n, rng=rng))
            batches.append(generator(z).data)
            remaining -= n
    generator.train(True)
    return np.concatenate(batches, axis=0)
