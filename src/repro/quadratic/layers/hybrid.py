"""Hybrid back-propagation quadratic layers (the paper's quadratic optimizer).

Default automatic differentiation builds the quadratic layer out of many
primitive nodes — three convolutions plus a Hadamard product — and each node
caches its own inputs for the backward pass.  In particular the Hadamard
product keeps *both* first-order responses ``Wa X`` and ``Wb X`` alive for the
whole forward/backward round trip, which is exactly the extra intermediate
memory the paper's P6 complains about.

The hybrid scheme (paper Sec. 4.3) instead treats the whole quadratic layer
as a *single* autograd node whose backward pass is written symbolically:

.. math::

    \\partial L/\\partial W_a = (\\partial L/\\partial X^{k+1} \\odot W_b X)\\; X^T

so only the layer input ``X`` and the weights need to be cached, and the two
first-order responses are recomputed on demand during backward.  Everything
outside quadratic layers (BatchNorm, pooling, losses) still uses ordinary AD —
hence *hybrid*.

``HybridQuadraticConv2d``/``HybridQuadraticLinear`` are drop-in replacements
for the ``OURS``-type composed layers: same parameters, same forward values,
same gradients (verified by the test suite), lower training memory
(measured by ``bench_fig8_hybrid_bp``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ...autodiff.function import Context, Function
from ...autodiff.ops.conv import col2im, conv_output_size, im2col
from ...autodiff.tensor import Tensor
from ...nn import init
from ...nn.module import Module
from ...nn.parameter import Parameter

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


# --------------------------------------------------------------------------- #
# Raw (ndarray-level) convolution helpers shared by forward and symbolic backward
# --------------------------------------------------------------------------- #

def _conv_forward_raw(x: np.ndarray, w: np.ndarray, stride, padding, groups: int) -> np.ndarray:
    n, c, h, wd = x.shape
    f, c_g, kh, kw = w.shape
    oh = conv_output_size(h, kh, stride[0], padding[0])
    ow = conv_output_size(wd, kw, stride[1], padding[1])
    cols = im2col(x, kh, kw, stride, padding).reshape(n, groups, c_g * kh * kw, oh * ow)
    wmat = w.reshape(groups, f // groups, c_g * kh * kw)
    out = np.einsum("gfk,ngko->ngfo", wmat, cols, optimize=True)
    return out.reshape(n, f, oh, ow)


def _conv_input_grad_raw(grad: np.ndarray, w: np.ndarray, x_shape, stride, padding,
                         groups: int) -> np.ndarray:
    n = grad.shape[0]
    f, c_g, kh, kw = w.shape
    oh, ow = grad.shape[2], grad.shape[3]
    wmat = w.reshape(groups, f // groups, c_g * kh * kw)
    grad_g = grad.reshape(n, groups, f // groups, oh * ow)
    cols_grad = np.einsum("gfk,ngfo->ngko", wmat, grad_g, optimize=True)
    cols_grad = cols_grad.reshape(n, x_shape[1], kh, kw, oh, ow)
    return col2im(cols_grad, x_shape, kh, kw, stride, padding)


def _conv_weight_grad_raw(x: np.ndarray, grad: np.ndarray, w_shape, stride, padding,
                          groups: int) -> np.ndarray:
    n = x.shape[0]
    f, c_g, kh, kw = w_shape
    oh, ow = grad.shape[2], grad.shape[3]
    cols = im2col(x, kh, kw, stride, padding).reshape(n, groups, c_g * kh * kw, oh * ow)
    grad_g = grad.reshape(n, groups, f // groups, oh * ow)
    gw = np.einsum("ngfo,ngko->gfk", grad_g, cols, optimize=True)
    return gw.reshape(f, c_g, kh, kw)


# --------------------------------------------------------------------------- #
# Single-node quadratic convolution (symbolic backward)
# --------------------------------------------------------------------------- #

class HybridQuadraticConv2dFunction(Function):
    """``out = conv(x, Wa) ∘ conv(x, Wb) + conv(x, Wc) + bias`` in one node.

    Only ``x`` and the three weights are saved for backward; the first-order
    responses are recomputed symbolically, mirroring Eq. 7 of the paper.
    """

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, wa: np.ndarray, wb: np.ndarray,
                wc: np.ndarray, bias: Optional[np.ndarray] = None,
                stride=(1, 1), padding=(0, 0), groups: int = 1) -> np.ndarray:
        a = _conv_forward_raw(x, wa, stride, padding, groups)
        b = _conv_forward_raw(x, wb, stride, padding, groups)
        c = _conv_forward_raw(x, wc, stride, padding, groups)
        out = a * b + c
        if bias is not None:
            out += bias.reshape(1, -1, 1, 1)
        ctx.stride, ctx.padding, ctx.groups = stride, padding, groups
        ctx.has_bias = bias is not None
        ctx.x_shape = x.shape
        # Deliberately *not* saving a, b, c — that is the whole point.
        ctx.save_for_backward(x, wa, wb, wc)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x, wa, wb, wc = ctx.saved_tensors
        stride, padding, groups = ctx.stride, ctx.padding, ctx.groups
        grad = np.ascontiguousarray(grad)

        # Recompute the first-order responses (symbolic differentiation step).
        a = _conv_forward_raw(x, wa, stride, padding, groups)
        b = _conv_forward_raw(x, wb, stride, padding, groups)
        grad_a = grad * b
        grad_b = grad * a
        grad_c = grad

        gx = gwa = gwb = gwc = gbias = None
        if ctx.needs_input_grad[0]:
            gx = (
                _conv_input_grad_raw(grad_a, wa, ctx.x_shape, stride, padding, groups)
                + _conv_input_grad_raw(grad_b, wb, ctx.x_shape, stride, padding, groups)
                + _conv_input_grad_raw(grad_c, wc, ctx.x_shape, stride, padding, groups)
            )
        if ctx.needs_input_grad[1]:
            gwa = _conv_weight_grad_raw(x, grad_a, wa.shape, stride, padding, groups)
        if ctx.needs_input_grad[2]:
            gwb = _conv_weight_grad_raw(x, grad_b, wb.shape, stride, padding, groups)
        if ctx.needs_input_grad[3]:
            gwc = _conv_weight_grad_raw(x, grad_c, wc.shape, stride, padding, groups)
        if ctx.has_bias and len(ctx.needs_input_grad) > 4 and ctx.needs_input_grad[4]:
            gbias = grad.sum(axis=(0, 2, 3))
        return gx, gwa, gwb, gwc, gbias, None, None, None


class HybridQuadraticConv2d(Module):
    """Memory-efficient drop-in for ``QuadraticConv2d(neuron_type='OURS')``.

    Identical parameterisation and forward semantics; the backward pass uses
    the symbolic single-node function above so no Hadamard-product operands
    are cached between forward and backward.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrPair = 3,
                 stride: IntOrPair = 1, padding: IntOrPair = 0, groups: int = 1,
                 bias: bool = True) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = int(groups)
        self.neuron_type = "OURS"
        kh, kw = self.kernel_size
        wshape = (out_channels, in_channels // groups, kh, kw)
        self.weight_a = Parameter(init.kaiming_normal(wshape))
        self.weight_b = Parameter(init.kaiming_normal(wshape))
        self.weight_c = Parameter(init.kaiming_normal(wshape, gain=1.0))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        args = [x, self.weight_a, self.weight_b, self.weight_c]
        if self.bias is not None:
            args.append(self.bias)
        return HybridQuadraticConv2dFunction.apply(
            *args, stride=self.stride, padding=self.padding, groups=self.groups
        )

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}, hybrid_bp=True")


# --------------------------------------------------------------------------- #
# Symbolic-backward variants for the other published second-order designs
# --------------------------------------------------------------------------- #

class HybridQuadraticConv2dT4Function(Function):
    """``out = conv(x, Wa) ∘ conv(x, Wb) + bias`` (Bu & Karpatne's T4) in one node."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, wa: np.ndarray, wb: np.ndarray,
                bias: Optional[np.ndarray] = None,
                stride=(1, 1), padding=(0, 0), groups: int = 1) -> np.ndarray:
        a = _conv_forward_raw(x, wa, stride, padding, groups)
        b = _conv_forward_raw(x, wb, stride, padding, groups)
        out = a * b
        if bias is not None:
            out += bias.reshape(1, -1, 1, 1)
        ctx.stride, ctx.padding, ctx.groups = stride, padding, groups
        ctx.has_bias = bias is not None
        ctx.x_shape = x.shape
        ctx.save_for_backward(x, wa, wb)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x, wa, wb = ctx.saved_tensors
        stride, padding, groups = ctx.stride, ctx.padding, ctx.groups
        grad = np.ascontiguousarray(grad)
        a = _conv_forward_raw(x, wa, stride, padding, groups)
        b = _conv_forward_raw(x, wb, stride, padding, groups)
        grad_a = grad * b
        grad_b = grad * a

        gx = gwa = gwb = gbias = None
        if ctx.needs_input_grad[0]:
            gx = (_conv_input_grad_raw(grad_a, wa, ctx.x_shape, stride, padding, groups)
                  + _conv_input_grad_raw(grad_b, wb, ctx.x_shape, stride, padding, groups))
        if ctx.needs_input_grad[1]:
            gwa = _conv_weight_grad_raw(x, grad_a, wa.shape, stride, padding, groups)
        if ctx.needs_input_grad[2]:
            gwb = _conv_weight_grad_raw(x, grad_b, wb.shape, stride, padding, groups)
        if ctx.has_bias and len(ctx.needs_input_grad) > 3 and ctx.needs_input_grad[3]:
            gbias = grad.sum(axis=(0, 2, 3))
        return gx, gwa, gwb, gbias, None, None, None


class HybridQuadraticConv2dFanFunction(Function):
    """``out = conv(x,Wa) ∘ conv(x,Wb) + conv(x², Wsq) + bias`` (Fan et al., T2&4).

    The design of the paper's Fig. 5/Fig. 8 memory study; only ``x`` and the
    weights are cached, both first-order responses and the squared input are
    recomputed symbolically during backward.
    """

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, wa: np.ndarray, wb: np.ndarray,
                wsq: np.ndarray, bias: Optional[np.ndarray] = None,
                stride=(1, 1), padding=(0, 0), groups: int = 1) -> np.ndarray:
        a = _conv_forward_raw(x, wa, stride, padding, groups)
        b = _conv_forward_raw(x, wb, stride, padding, groups)
        s = _conv_forward_raw(x * x, wsq, stride, padding, groups)
        out = a * b + s
        if bias is not None:
            out += bias.reshape(1, -1, 1, 1)
        ctx.stride, ctx.padding, ctx.groups = stride, padding, groups
        ctx.has_bias = bias is not None
        ctx.x_shape = x.shape
        ctx.save_for_backward(x, wa, wb, wsq)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x, wa, wb, wsq = ctx.saved_tensors
        stride, padding, groups = ctx.stride, ctx.padding, ctx.groups
        grad = np.ascontiguousarray(grad)
        a = _conv_forward_raw(x, wa, stride, padding, groups)
        b = _conv_forward_raw(x, wb, stride, padding, groups)
        grad_a = grad * b
        grad_b = grad * a

        gx = gwa = gwb = gwsq = gbias = None
        if ctx.needs_input_grad[0]:
            gx = (_conv_input_grad_raw(grad_a, wa, ctx.x_shape, stride, padding, groups)
                  + _conv_input_grad_raw(grad_b, wb, ctx.x_shape, stride, padding, groups)
                  # ∂(conv(x², Wsq))/∂x = 2x ∘ conv-input-grad — the chain rule of Eq. 7
                  # applied to the squared-input path.
                  + 2.0 * x * _conv_input_grad_raw(grad, wsq, ctx.x_shape, stride, padding,
                                                   groups))
        if ctx.needs_input_grad[1]:
            gwa = _conv_weight_grad_raw(x, grad_a, wa.shape, stride, padding, groups)
        if ctx.needs_input_grad[2]:
            gwb = _conv_weight_grad_raw(x, grad_b, wb.shape, stride, padding, groups)
        if ctx.needs_input_grad[3]:
            gwsq = _conv_weight_grad_raw(x * x, grad, wsq.shape, stride, padding, groups)
        if ctx.has_bias and len(ctx.needs_input_grad) > 4 and ctx.needs_input_grad[4]:
            gbias = grad.sum(axis=(0, 2, 3))
        return gx, gwa, gwb, gwsq, gbias, None, None, None


class HybridQuadraticConv2dT4(Module):
    """Memory-efficient drop-in for ``QuadraticConv2d(neuron_type='T4')``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrPair = 3,
                 stride: IntOrPair = 1, padding: IntOrPair = 0, groups: int = 1,
                 bias: bool = True) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = int(groups)
        self.neuron_type = "T4"
        kh, kw = self.kernel_size
        wshape = (out_channels, in_channels // groups, kh, kw)
        self.weight_a = Parameter(init.kaiming_normal(wshape))
        self.weight_b = Parameter(init.kaiming_normal(wshape))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        args = [x, self.weight_a, self.weight_b]
        if self.bias is not None:
            args.append(self.bias)
        return HybridQuadraticConv2dT4Function.apply(
            *args, stride=self.stride, padding=self.padding, groups=self.groups
        )

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"type=T4, hybrid_bp=True")


class HybridQuadraticConv2dFan(Module):
    """Memory-efficient drop-in for ``QuadraticConv2d(neuron_type='T2_4')`` (Fan et al.)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrPair = 3,
                 stride: IntOrPair = 1, padding: IntOrPair = 0, groups: int = 1,
                 bias: bool = True) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = int(groups)
        self.neuron_type = "T2_4"
        kh, kw = self.kernel_size
        wshape = (out_channels, in_channels // groups, kh, kw)
        self.weight_a = Parameter(init.kaiming_normal(wshape))
        self.weight_b = Parameter(init.kaiming_normal(wshape))
        self.weight_sq = Parameter(init.kaiming_normal(wshape))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        args = [x, self.weight_a, self.weight_b, self.weight_sq]
        if self.bias is not None:
            args.append(self.bias)
        return HybridQuadraticConv2dFanFunction.apply(
            *args, stride=self.stride, padding=self.padding, groups=self.groups
        )

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"type=T2_4, hybrid_bp=True")


# --------------------------------------------------------------------------- #
# Dense variant
# --------------------------------------------------------------------------- #

class HybridQuadraticLinearFunction(Function):
    """``out = (x Waᵀ) ∘ (x Wbᵀ) + x Wcᵀ + bias`` as a single autograd node."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, wa: np.ndarray, wb: np.ndarray,
                wc: np.ndarray, bias: Optional[np.ndarray] = None) -> np.ndarray:
        a = x @ wa.T
        b = x @ wb.T
        out = a * b + x @ wc.T
        if bias is not None:
            out += bias
        ctx.has_bias = bias is not None
        ctx.save_for_backward(x, wa, wb, wc)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x, wa, wb, wc = ctx.saved_tensors
        a = x @ wa.T
        b = x @ wb.T
        grad_a = grad * b
        grad_b = grad * a
        gx = gwa = gwb = gwc = gbias = None
        if ctx.needs_input_grad[0]:
            gx = grad_a @ wa + grad_b @ wb + grad @ wc
        if ctx.needs_input_grad[1]:
            gwa = grad_a.T @ x
        if ctx.needs_input_grad[2]:
            gwb = grad_b.T @ x
        if ctx.needs_input_grad[3]:
            gwc = grad.T @ x
        if ctx.has_bias and len(ctx.needs_input_grad) > 4 and ctx.needs_input_grad[4]:
            gbias = grad.sum(axis=0)
        return gx, gwa, gwb, gwc, gbias


class HybridQuadraticLinear(Module):
    """Memory-efficient drop-in for ``QuadraticLinear(neuron_type='OURS')``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        shape = (out_features, in_features)
        self.weight_a = Parameter(init.kaiming_uniform(shape))
        self.weight_b = Parameter(init.kaiming_uniform(shape))
        self.weight_c = Parameter(init.kaiming_uniform(shape, gain=1.0))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,))) if bias else None
        self.neuron_type = "OURS"

    def forward(self, x: Tensor) -> Tensor:
        args = [x, self.weight_a, self.weight_b, self.weight_c]
        if self.bias is not None:
            args.append(self.bias)
        return HybridQuadraticLinearFunction.apply(*args)

    def extra_repr(self) -> str:
        return (f"in_features={self.in_features}, out_features={self.out_features}, "
                f"hybrid_bp=True")
