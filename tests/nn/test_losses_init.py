"""Tests of loss functions and weight initialisation."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autodiff import Tensor, randn
from repro.nn import functional as F
from repro.nn import init


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = randn(5, 4, requires_grad=True)
        targets = np.array([0, 1, 2, 3, 0])
        loss = F.cross_entropy(logits, targets)
        probs = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        manual = -np.log(probs[np.arange(5), targets]).mean()
        assert np.allclose(loss.data, manual, atol=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.eye(4, dtype=np.float32) * 20.0)
        loss = F.cross_entropy(logits, np.arange(4))
        assert loss.item() < 1e-3

    def test_gradient_is_softmax_minus_onehot(self):
        logits = randn(3, 5, requires_grad=True)
        targets = np.array([1, 0, 4])
        F.cross_entropy(logits, targets).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        onehot = np.zeros_like(probs)
        onehot[np.arange(3), targets] = 1
        assert np.allclose(logits.grad, (probs - onehot) / 3, atol=1e-5)

    def test_label_smoothing_increases_loss_of_perfect_model(self):
        logits = Tensor(np.eye(4, dtype=np.float32) * 20.0)
        plain = F.cross_entropy(logits, np.arange(4)).item()
        smoothed = F.cross_entropy(logits, np.arange(4), label_smoothing=0.1).item()
        assert smoothed > plain

    def test_reduction_modes(self):
        logits = randn(6, 3)
        targets = np.zeros(6, dtype=np.int64)
        total = F.cross_entropy(logits, targets, reduction="sum").item()
        mean = F.cross_entropy(logits, targets, reduction="mean").item()
        none = F.cross_entropy(logits, targets, reduction="none")
        assert np.allclose(total / 6, mean, atol=1e-5)
        assert none.shape == (6,)

    def test_invalid_reduction_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(randn(2, 3), np.zeros(2, dtype=np.int64), reduction="bogus")

    def test_loss_module_wrapper(self):
        loss_fn = nn.CrossEntropyLoss()
        value = loss_fn(randn(4, 3), np.array([0, 1, 2, 0]))
        assert value.data.size == 1

    def test_stable_for_extreme_logits(self):
        logits = Tensor(np.array([[1e4, -1e4, 0.0]], dtype=np.float32), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()


class TestRegressionAndGANLosses:
    def test_mse(self):
        pred = randn(5, 3, requires_grad=True)
        target = randn(5, 3)
        loss = F.mse_loss(pred, target)
        assert np.allclose(loss.data, ((pred.data - target.data) ** 2).mean(), atol=1e-5)

    def test_mse_zero_for_identical(self):
        x = randn(4)
        assert F.mse_loss(x, Tensor(x.data.copy())).item() == pytest.approx(0.0, abs=1e-7)

    def test_l1(self):
        pred = randn(5, requires_grad=True)
        target = np.zeros(5, dtype=np.float32)
        loss = F.l1_loss(pred, target)
        assert np.allclose(loss.data, np.abs(pred.data).mean(), atol=1e-6)

    def test_smooth_l1_quadratic_near_zero(self):
        pred = Tensor(np.array([0.1], dtype=np.float32))
        target = Tensor(np.array([0.0], dtype=np.float32))
        assert F.smooth_l1_loss(pred, target).item() == pytest.approx(0.005, abs=1e-5)

    def test_smooth_l1_linear_far_from_zero(self):
        pred = Tensor(np.array([10.0], dtype=np.float32))
        target = Tensor(np.array([0.0], dtype=np.float32))
        assert F.smooth_l1_loss(pred, target).item() == pytest.approx(9.5, abs=1e-4)

    def test_bce_with_logits_matches_formula(self):
        logits = randn(6, requires_grad=True)
        targets = (np.random.default_rng(0).random(6) > 0.5).astype(np.float32)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert np.allclose(loss.data, manual, atol=1e-5)

    def test_bce_stable_for_large_logits(self):
        logits = Tensor(np.array([100.0, -100.0], dtype=np.float32), requires_grad=True)
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0], dtype=np.float32))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-3

    def test_hinge_losses(self):
        real = Tensor(np.array([[2.0]], dtype=np.float32))
        fake = Tensor(np.array([[-2.0]], dtype=np.float32))
        d_loss = F.hinge_loss_discriminator(real, fake)
        assert d_loss.item() == pytest.approx(0.0, abs=1e-6)  # well-separated -> zero loss
        g_loss = F.hinge_loss_generator(fake)
        assert g_loss.item() == pytest.approx(2.0, abs=1e-6)

    def test_nll_loss_consistent_with_cross_entropy(self):
        logits = randn(4, 6)
        targets = np.array([0, 1, 2, 3])
        ce = F.cross_entropy(logits, targets).item()
        nll = F.nll_loss(F.log_softmax(logits, axis=-1), targets).item()
        assert ce == pytest.approx(nll, abs=1e-5)


class TestInit:
    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((256, 128))
        expected_std = np.sqrt(2.0 / 128)
        assert abs(w.std() - expected_std) / expected_std < 0.15

    def test_kaiming_uniform_bound(self):
        w = init.kaiming_uniform((64, 100))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 100)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        w = init.xavier_normal((200, 200))
        expected = np.sqrt(2.0 / 400)
        assert abs(w.std() - expected) / expected < 0.15

    def test_conv_fan_in_uses_receptive_field(self):
        w = init.kaiming_normal((32, 16, 3, 3))
        expected_std = np.sqrt(2.0 / (16 * 9))
        assert abs(w.std() - expected_std) / expected_std < 0.15

    def test_zeros_ones_constant(self):
        assert np.all(init.zeros((3,)) == 0)
        assert np.all(init.ones((3,)) == 1)
        assert np.all(init.constant((3,), 7.0) == 7.0)

    def test_seed_reproducibility(self):
        init.seed(123)
        a = init.kaiming_normal((10, 10))
        init.seed(123)
        b = init.kaiming_normal((10, 10))
        assert np.allclose(a, b)

    def test_outputs_are_float32(self):
        assert init.kaiming_normal((4, 4)).dtype == np.float32
        assert init.uniform((4,)).dtype == np.float32
