"""Tests of classification, detection and generation metrics."""

import numpy as np
import pytest

from repro.metrics import (
    ProxyInception,
    accuracy,
    average_precision,
    confusion_matrix,
    evaluate_detections,
    evaluate_generator,
    frechet_distance,
    inception_score,
    per_class_accuracy,
    top_k_accuracy,
)


class TestClassificationMetrics:
    def test_accuracy_perfect_and_zero(self):
        logits = np.eye(4)
        assert accuracy(logits, np.arange(4)) == 1.0
        assert accuracy(logits, (np.arange(4) + 1) % 4) == 0.0

    def test_accuracy_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 1, 0])) == 0.5

    def test_top_k(self):
        logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        assert top_k_accuracy(logits, np.array([1, 0]), k=1) == 0.0
        assert top_k_accuracy(logits, np.array([1, 0]), k=2) == 0.5
        assert top_k_accuracy(logits, np.array([1, 0]), k=3) == 1.0

    def test_top_k_larger_than_classes(self):
        logits = np.eye(3)
        assert top_k_accuracy(logits, np.arange(3), k=10) == 1.0

    def test_confusion_matrix(self):
        logits = np.array([[1, 0], [1, 0], [0, 1]], dtype=float)
        matrix = confusion_matrix(logits, np.array([0, 1, 1]), num_classes=2)
        assert matrix[0, 0] == 1 and matrix[1, 0] == 1 and matrix[1, 1] == 1

    def test_per_class_accuracy_handles_missing_class(self):
        logits = np.eye(2)
        values = per_class_accuracy(logits, np.array([0, 0]), num_classes=3)
        assert values[0] == 0.5
        assert np.isnan(values[2])

    def test_accepts_tensors(self):
        from repro.autodiff import Tensor

        logits = Tensor(np.eye(3, dtype=np.float32))
        assert accuracy(logits, Tensor(np.arange(3))) == 1.0


class TestDetectionMetrics:
    def _perfect_case(self):
        gt = [{"boxes": np.array([[0.1, 0.1, 0.4, 0.4]], dtype=np.float32),
               "labels": np.array([0])}]
        pred = [{"boxes": np.array([[0.1, 0.1, 0.4, 0.4]], dtype=np.float32),
                 "scores": np.array([0.9], dtype=np.float32),
                 "labels": np.array([0])}]
        return pred, gt

    def test_perfect_detection_map_1(self):
        pred, gt = self._perfect_case()
        result = evaluate_detections(pred, gt, num_classes=2)
        assert result["per_class_ap"][0] == pytest.approx(1.0)
        assert result["map"] == pytest.approx(1.0)

    def test_missed_detection_ap_0(self):
        gt = [{"boxes": np.array([[0.1, 0.1, 0.4, 0.4]], dtype=np.float32),
               "labels": np.array([0])}]
        pred = [{"boxes": np.zeros((0, 4), dtype=np.float32),
                 "scores": np.zeros(0, dtype=np.float32),
                 "labels": np.zeros(0, dtype=np.int64)}]
        result = evaluate_detections(pred, gt, num_classes=1)
        assert result["map"] == 0.0

    def test_wrong_location_is_false_positive(self):
        gt = [{"boxes": np.array([[0.1, 0.1, 0.3, 0.3]], dtype=np.float32),
               "labels": np.array([0])}]
        pred = [{"boxes": np.array([[0.6, 0.6, 0.9, 0.9]], dtype=np.float32),
                 "scores": np.array([0.9], dtype=np.float32),
                 "labels": np.array([0])}]
        result = evaluate_detections(pred, gt, num_classes=1)
        assert result["map"] == 0.0

    def test_duplicate_detection_counts_once(self):
        gt = [{"boxes": np.array([[0.1, 0.1, 0.4, 0.4]], dtype=np.float32),
               "labels": np.array([0])}]
        pred = [{"boxes": np.array([[0.1, 0.1, 0.4, 0.4], [0.1, 0.1, 0.4, 0.4]],
                                   dtype=np.float32),
                 "scores": np.array([0.9, 0.8], dtype=np.float32),
                 "labels": np.array([0, 0])}]
        result = evaluate_detections(pred, gt, num_classes=1)
        # Precision drops due to the duplicate but AP stays below 1 recall-wise correct.
        assert 0.5 <= result["map"] <= 1.0

    def test_absent_class_excluded_from_map(self):
        pred, gt = self._perfect_case()
        result = evaluate_detections(pred, gt, num_classes=5)
        assert result["map"] == pytest.approx(1.0)
        assert np.isnan(result["per_class_ap"][4])

    def test_11_point_close_to_all_point_for_perfect(self):
        pred, gt = self._perfect_case()
        all_point = evaluate_detections(pred, gt, num_classes=1)["map"]
        eleven = evaluate_detections(pred, gt, num_classes=1, use_11_point=True)["map"]
        assert all_point == pytest.approx(eleven, abs=0.1)

    def test_mismatched_lengths_raise(self):
        pred, gt = self._perfect_case()
        with pytest.raises(ValueError):
            evaluate_detections(pred, gt + gt, num_classes=1)

    def test_average_precision_monotone_interp(self):
        recall = np.array([0.2, 0.5, 1.0])
        precision = np.array([1.0, 0.6, 0.8])
        ap = average_precision(recall, precision)
        assert 0.6 <= ap <= 1.0

    def test_average_precision_empty(self):
        assert average_precision(np.array([]), np.array([])) == 0.0


class TestGenerationMetrics:
    def test_inception_score_bounds(self):
        # Uniform predictions -> IS = 1; confident & diverse -> IS = num classes.
        uniform = np.full((64, 4), 0.25)
        assert inception_score(uniform)[0] == pytest.approx(1.0, abs=1e-5)
        confident = np.tile(np.eye(4), (16, 1))
        assert inception_score(confident)[0] == pytest.approx(4.0, rel=0.05)

    def test_inception_score_collapsed_generator_low(self):
        collapsed = np.zeros((64, 4))
        collapsed[:, 0] = 1.0
        assert inception_score(collapsed)[0] == pytest.approx(1.0, abs=1e-5)

    def test_frechet_distance_zero_for_identical(self):
        rng = np.random.default_rng(0)
        feats = rng.normal(size=(200, 8)).astype(np.float32)
        assert frechet_distance(feats, feats.copy()) == pytest.approx(0.0, abs=1e-2)

    def test_frechet_distance_grows_with_mean_shift(self):
        rng = np.random.default_rng(0)
        real = rng.normal(size=(200, 8)).astype(np.float32)
        near = real + 0.1
        far = real + 3.0
        assert frechet_distance(real, far) > frechet_distance(real, near)

    def test_proxy_inception_end_to_end(self):
        from repro.data.synthetic import SyntheticGenerationDataset

        dataset = SyntheticGenerationDataset(num_samples=96, image_size=16, num_modes=4)
        proxy = ProxyInception(dataset, epochs=2, batch_size=32)
        probs = proxy.probabilities(dataset.images[:32])
        assert probs.shape == (32, 4)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-4)
        feats = proxy.features(dataset.images[:32])
        assert feats.shape[0] == 32 and feats.shape[1] > 1

    def test_evaluate_generator_ranks_real_above_noise(self):
        """Real samples must score a lower FID than pure noise — the property
        that makes Table 5's comparison meaningful."""
        from repro.data.synthetic import SyntheticGenerationDataset

        dataset = SyntheticGenerationDataset(num_samples=128, image_size=16, num_modes=4)
        proxy = ProxyInception(dataset, epochs=2, batch_size=32)
        rng = np.random.default_rng(0)
        real_batch = dataset.sample(64, rng=rng)
        other_real = dataset.sample(64, rng=rng)
        noise = rng.normal(size=other_real.shape).astype(np.float32)
        scores_real = evaluate_generator(proxy, other_real, real=real_batch)
        scores_noise = evaluate_generator(proxy, noise, real=real_batch)
        assert scores_real.fid < scores_noise.fid
