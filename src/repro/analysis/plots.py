"""ASCII plotting for the figure-reproduction benchmarks.

The paper's Figures 5, 7 and 8 are curves (memory vs. model, gradient norm vs.
epoch, memory vs. time within one iteration).  The benchmark harness runs in a
terminal with no plotting backend, so these helpers render the same curves as
fixed-width ASCII charts: a multi-series line chart, a horizontal bar chart
and one-line sparklines.  Output is deterministic, which also makes the charts
diff-able across benchmark runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

#: Plot markers assigned to series in insertion order.
_MARKERS = "*o+x#@%&"

#: Unicode block characters used by :func:`sparkline`, from low to high.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:.3g}"


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character rendering of a series (empty input → '')."""
    data = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
    if data.size == 0:
        return ""
    lo, hi = float(data.min()), float(data.max())
    span = hi - lo
    if span == 0:
        return _BLOCKS[4] * data.size
    indices = np.round((data - lo) / span * (len(_BLOCKS) - 2)).astype(int) + 1
    return "".join(_BLOCKS[i] for i in indices)


def ascii_line_chart(series: Dict[str, Sequence[float]], width: int = 64, height: int = 12,
                     title: str = "", y_label: str = "", x_label: str = "") -> str:
    """Render one or more series as a fixed-width ASCII line chart.

    Parameters
    ----------
    series : dict
        Mapping from series name to its values.  Series may have different
        lengths; each is stretched over the full chart width.
    width, height : int
        Plot area size in characters (excluding axes and labels).
    title, y_label, x_label : str
        Optional annotations.
    """
    if not series:
        raise ValueError("ascii_line_chart needs at least one series")
    if width < 8 or height < 3:
        raise ValueError(f"chart area too small: {width}x{height}")

    finite_values = [v for values in series.values() for v in values if np.isfinite(v)]
    if not finite_values:
        raise ValueError("no finite values to plot")
    lo, hi = float(min(finite_values)), float(max(finite_values))
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        clean = [v if np.isfinite(v) else None for v in values]
        n = len(clean)
        if n == 0:
            continue
        for column in range(width):
            # Map the column back to a position in the series (nearest sample).
            position = column / max(width - 1, 1) * (n - 1) if n > 1 else 0
            value = clean[int(round(position))]
            if value is None:
                continue
            row = int(round((value - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    top_label, bottom_label = _format_value(hi), _format_value(lo)
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    if x_label:
        lines.append(" " * (label_width + 2) + x_label)
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def ascii_bar_chart(labels: Sequence[str], values: Sequence[float], width: int = 50,
                    title: str = "", reference_lines: Optional[Dict[str, float]] = None) -> str:
    """Render labelled values as horizontal ASCII bars.

    Parameters
    ----------
    labels, values :
        Bar names and their (non-negative) magnitudes.
    width : int
        Length in characters of the longest bar.
    reference_lines : dict, optional
        Named reference values (e.g. GPU memory budgets in Fig. 5); each is
        rendered as an extra row marked with ``|`` at its position.
    """
    if len(labels) != len(values):
        raise ValueError(f"labels ({len(labels)}) and values ({len(values)}) differ in length")
    if not labels:
        raise ValueError("ascii_bar_chart needs at least one bar")
    clean = [0.0 if not np.isfinite(v) else float(v) for v in values]
    if any(v < 0 for v in clean):
        raise ValueError("bar values must be non-negative")
    reference_lines = reference_lines or {}
    scale_max = max(list(clean) + list(reference_lines.values()) + [1e-12])

    name_width = max(len(str(l)) for l in list(labels) + list(reference_lines))
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, clean):
        bar = "#" * int(round(value / scale_max * width))
        lines.append(f"{str(label).ljust(name_width)} | {bar} {_format_value(value)}")
    for name, value in reference_lines.items():
        position = int(round(value / scale_max * width))
        marker_row = " " * position + "|"
        lines.append(f"{name.ljust(name_width)} | {marker_row} {_format_value(value)}")
    return "\n".join(lines)
