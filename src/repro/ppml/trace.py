"""Protocol traces: what a secure execution actually did, layer by layer.

The static analysis in :mod:`repro.ppml.cost` *predicts* how many MACs,
garbled-circuit comparisons and Beaver-triple multiplications a model needs.
The runtime (:mod:`repro.ppml.runtime`) *measures* them: every executed step
appends a :class:`LayerTrace` recording the operations it actually performed
on the actual shapes that flowed through it, plus the communication-round
structure of the step.  A :class:`ProtocolTrace` is the resulting record of
one secure forward pass, and is the repo's evidence for the paper's PPML
claim — the cost tables stop being assertions once
``trace.matches_report(analyse_model(...))`` holds.

Converting a trace into protocol time reuses the same
:class:`~repro.ppml.protocols.Protocol` cost constants as the static
analysis, plus the round structure: interactive protocols pay one network
round trip per communication round, which the static per-operation model
cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..utils.logging import format_table
from .cost import CostReport, LayerOperations, estimate_cost
from .protocols import Protocol, resolve_protocol


@dataclass
class LayerTrace:
    """Operations one executed step actually performed.

    ``macs`` / ``relu_ops`` / ``mult_ops`` mirror the three online primitives
    of :class:`~repro.ppml.cost.LayerOperations`; ``truncations`` counts the
    fixed-point rescalings the step paid and ``rounds`` its communication
    rounds (0 for local/pre-processed work, 1 per Beaver reconstruction, 2
    per garbled-circuit evaluation).
    """

    name: str
    layer_type: str
    macs: int = 0
    relu_ops: int = 0
    mult_ops: int = 0
    truncations: int = 0
    rounds: int = 0
    output_shape: Tuple[int, ...] = ()

    def to_operations(self) -> LayerOperations:
        """The equivalent static-analysis record (for shared cost estimation)."""
        return LayerOperations(name=self.name, layer_type=self.layer_type,
                               macs=self.macs, relu_ops=self.relu_ops,
                               mult_ops=self.mult_ops, output_shape=self.output_shape)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (benchmarks persist traces as artifacts)."""
        return {"name": self.name, "layer_type": self.layer_type, "macs": self.macs,
                "relu_ops": self.relu_ops, "mult_ops": self.mult_ops,
                "truncations": self.truncations, "rounds": self.rounds,
                "output_shape": list(self.output_shape)}


@dataclass
class SecureCostEstimate:
    """A trace priced under one protocol: per-op costs plus round latency."""

    protocol: Protocol
    cost: CostReport
    rounds: int

    @property
    def online_microseconds(self) -> float:
        """Per-operation compute/transfer time plus one RTT per round."""
        return self.cost.total.microseconds + self.rounds * self.protocol.round_trip_us

    @property
    def online_milliseconds(self) -> float:
        return self.online_microseconds / 1e3

    @property
    def online_bytes(self) -> float:
        return self.cost.total.bytes

    @property
    def online_megabytes(self) -> float:
        return self.online_bytes / 1e6

    @property
    def runnable(self) -> bool:
        return self.cost.runnable


@dataclass
class ProtocolTrace:
    """The measured record of one secure forward pass."""

    frac_bits: int
    layers: List[LayerTrace] = field(default_factory=list)
    #: protocol the execution was configured with (costing may use another).
    protocol: Optional[Protocol] = None

    # ----------------------------------------------------------------- totals
    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_relu_ops(self) -> int:
        return sum(layer.relu_ops for layer in self.layers)

    @property
    def total_mult_ops(self) -> int:
        return sum(layer.mult_ops for layer in self.layers)

    @property
    def total_truncations(self) -> int:
        return sum(layer.truncations for layer in self.layers)

    @property
    def total_rounds(self) -> int:
        return sum(layer.rounds for layer in self.layers)

    @property
    def garbled_free(self) -> bool:
        """True when the execution needed no garbled-circuit comparison at all —
        the property the paper's quadratic conversion is after."""
        return self.total_relu_ops == 0

    def totals(self) -> Dict[str, int]:
        """All five operation totals as one dict (for JSON and reporting)."""
        return {"macs": self.total_macs, "relu_ops": self.total_relu_ops,
                "mult_ops": self.total_mult_ops,
                "truncations": self.total_truncations, "rounds": self.total_rounds}

    # ---------------------------------------------------------------- costing
    def operations(self) -> List[LayerOperations]:
        """The trace as static-analysis records (one per executed step)."""
        return [layer.to_operations() for layer in self.layers]

    def cost(self, protocol: Union[str, Protocol, None] = None) -> CostReport:
        """Price the measured operations with the static per-op cost model."""
        proto = resolve_protocol(protocol if protocol is not None else self.protocol)
        return estimate_cost(self.operations(), proto)

    def estimate(self, protocol: Union[str, Protocol, None] = None) -> SecureCostEstimate:
        """Full online-cost estimate: per-op costs plus round-trip latency."""
        proto = resolve_protocol(protocol if protocol is not None else self.protocol)
        return SecureCostEstimate(protocol=proto, cost=self.cost(proto),
                                  rounds=self.total_rounds)

    # ------------------------------------------------------------- validation
    def matches_operations(self, operations: Sequence[LayerOperations]) -> bool:
        """Whether the measured totals equal a static count's totals exactly.

        Totals (not per-layer rows) are compared because the two sides
        aggregate differently: the static walk emits one record per leaf
        module (summing repeated invocations, e.g. a ResNet block's shared
        ReLU), while the trace records every executed step.
        """
        return self.count_diff(operations) == {}

    def matches_report(self, report: CostReport) -> bool:
        """Convenience form of :meth:`matches_operations` for a cost report."""
        return self.matches_operations([layer.operations for layer in report.layers])

    def count_diff(self, operations: Sequence[LayerOperations]) -> Dict[str, Tuple[int, int]]:
        """``{primitive: (measured, static)}`` for every total that disagrees."""
        static = {
            "macs": sum(op.macs for op in operations),
            "relu_ops": sum(op.relu_ops for op in operations),
            "mult_ops": sum(op.mult_ops for op in operations),
        }
        measured = {"macs": self.total_macs, "relu_ops": self.total_relu_ops,
                    "mult_ops": self.total_mult_ops}
        return {key: (measured[key], static[key])
                for key in static if measured[key] != static[key]}

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form: totals plus the per-step records."""
        return {
            "frac_bits": self.frac_bits,
            "protocol": self.protocol.name if self.protocol is not None else None,
            "totals": self.totals(),
            "layers": [layer.to_dict() for layer in self.layers],
        }


def format_trace(trace: ProtocolTrace, per_layer: bool = False,
                 protocol: Union[str, Protocol, None] = None) -> str:
    """Render a protocol trace as a fixed-width table (totals, optionally per step)."""
    estimate = trace.estimate(protocol)
    rows = []
    if per_layer:
        for layer in trace.layers:
            rows.append([layer.name, layer.layer_type, layer.macs, layer.relu_ops,
                         layer.mult_ops, layer.truncations, layer.rounds])
    rows.append(["TOTAL", estimate.protocol.name, trace.total_macs, trace.total_relu_ops,
                 trace.total_mult_ops, trace.total_truncations, trace.total_rounds])
    return format_table(
        ["step", "type", "MACs", "GC comparisons", "secure mults", "truncations", "rounds"],
        rows,
        title=(f"Executed protocol trace (frac_bits={trace.frac_bits}, "
               f"online ≈ {estimate.online_milliseconds:.3f} ms under "
               f"{estimate.protocol.name})"),
    )
