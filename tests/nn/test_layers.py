"""Tests for first-order layers: Linear, Conv2d, pooling, BatchNorm, misc."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autodiff import Tensor, no_grad, randn
from repro.nn import functional as F


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(10, 5)
        assert layer(randn(3, 10)).shape == (3, 5)

    def test_matches_manual_affine(self):
        layer = nn.Linear(4, 3)
        x = randn(2, 4)
        expected = x.data @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x).data, expected, atol=1e-5)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_gradients_flow(self):
        layer = nn.Linear(4, 3)
        layer(randn(2, 4)).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConv2dLayer:
    def test_forward_shape(self):
        layer = nn.Conv2d(3, 8, 3, padding=1)
        assert layer(randn(2, 3, 16, 16)).shape == (2, 8, 16, 16)

    def test_stride_halves_resolution(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(randn(2, 3, 16, 16)).shape == (2, 8, 8, 8)

    def test_depthwise_parameter_count(self):
        layer = nn.Conv2d(8, 8, 3, padding=1, groups=8, bias=False)
        assert layer.num_parameters() == 8 * 1 * 3 * 3

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 8, 3, groups=2)

    def test_depthwise_separable_block(self):
        block = nn.DepthwiseSeparableConv2d(8, 16, stride=2)
        assert block(randn(2, 8, 8, 8)).shape == (2, 16, 4, 4)


class TestPoolingLayers:
    def test_max_pool_layer(self):
        assert nn.MaxPool2d(2)(randn(1, 3, 8, 8)).shape == (1, 3, 4, 4)

    def test_avg_pool_layer(self):
        assert nn.AvgPool2d(2)(randn(1, 3, 8, 8)).shape == (1, 3, 4, 4)

    def test_adaptive_avg_pool_to_1(self):
        assert nn.AdaptiveAvgPool2d(1)(randn(2, 5, 8, 8)).shape == (2, 5, 1, 1)

    def test_global_avg_pool_flattens(self):
        assert nn.GlobalAvgPool2d()(randn(2, 5, 8, 8)).shape == (2, 5)

    def test_adaptive_pool_invalid_size_raises(self):
        with pytest.raises(ValueError):
            nn.AdaptiveAvgPool2d(3)(randn(1, 2, 8, 8))


class TestBatchNorm:
    def test_normalises_batch_statistics(self):
        bn = nn.BatchNorm2d(4)
        x = randn(8, 4, 6, 6) * 5.0 + 3.0
        out = bn(x)
        assert abs(float(out.data.mean())) < 0.1
        assert abs(float(out.data.std()) - 1.0) < 0.1

    def test_running_stats_updated(self):
        bn = nn.BatchNorm2d(4)
        x = randn(8, 4, 6, 6) + 2.0
        bn(x)
        assert np.all(bn.running_mean > 0.05)
        assert int(bn.num_batches_tracked[0]) == 1

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(4)
        for _ in range(40):
            bn(randn(16, 4, 4, 4) + 1.0)
        bn.eval()
        x = randn(2, 4, 4, 4) + 1.0
        out_eval = bn(x)
        # With converged running stats the eval output should be roughly normalised
        # (the input mean of +1 is removed).
        assert abs(float(out_eval.data.mean())) < 0.5
        # And the running mean itself should have converged near the true mean.
        assert np.allclose(bn.running_mean, 1.0, atol=0.25)

    def test_affine_parameters_learnable(self):
        bn = nn.BatchNorm2d(3)
        out = bn(randn(4, 3, 5, 5))
        out.sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_batchnorm1d_2d_input(self):
        bn = nn.BatchNorm1d(6)
        out = bn(randn(8, 6) * 3 + 1)
        assert abs(float(out.data.mean())) < 0.1

    def test_layernorm(self):
        ln = nn.LayerNorm(10)
        out = ln(randn(4, 10) * 4 + 2)
        assert abs(float(out.data.mean())) < 0.1
        assert out.shape == (4, 10)


class TestActivationsAndMisc:
    def test_relu_layer(self):
        assert np.all(nn.ReLU()(randn(10)).data >= 0)

    def test_leaky_relu_negative_slope(self):
        layer = nn.LeakyReLU(0.1)
        x = Tensor(np.array([-10.0], dtype=np.float32))
        assert np.allclose(layer(x).data, [-1.0])

    def test_identity(self):
        x = randn(3, 3)
        assert np.allclose(nn.Identity()(x).data, x.data)

    def test_softmax_layer(self):
        out = nn.Softmax(axis=-1)(randn(4, 6))
        assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_flatten_layer(self):
        assert nn.Flatten()(randn(2, 3, 4, 4)).shape == (2, 48)

    def test_dropout_training_vs_eval(self):
        layer = nn.Dropout(0.5, seed=0)
        x = randn(1000)
        layer.train()
        out_train = layer(x)
        assert (out_train.data == 0).mean() > 0.3
        layer.eval()
        out_eval = layer(x)
        assert np.allclose(out_eval.data, x.data)

    def test_dropout_scales_surviving_activations(self):
        layer = nn.Dropout(0.5, seed=1)
        x = Tensor(np.ones(10000, dtype=np.float32))
        out = layer(x)
        # Inverted dropout keeps the expected value approximately unchanged.
        assert abs(float(out.data.mean()) - 1.0) < 0.1

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_upsample_layer(self):
        assert nn.UpsampleNearest2d(2)(randn(1, 3, 4, 4)).shape == (1, 3, 8, 8)

    def test_zero_pad(self):
        assert nn.ZeroPad2d(2)(randn(1, 1, 4, 4)).shape == (1, 1, 8, 8)

    def test_gelu_close_to_relu_for_large_inputs(self):
        x = Tensor(np.array([10.0], dtype=np.float32))
        assert np.allclose(nn.GELU()(x).data, [10.0], atol=1e-3)


class TestSpectralNorm:
    def test_wraps_and_runs(self):
        layer = nn.SpectralNorm(nn.Linear(8, 4))
        assert layer(randn(2, 8)).shape == (2, 4)

    def test_constrains_spectral_norm(self):
        base = nn.Linear(16, 16, bias=False)
        base.weight.data *= 20.0
        layer = nn.SpectralNorm(base, n_power_iterations=3)
        for _ in range(5):
            layer(randn(4, 16))
        sigma = np.linalg.svd(base.weight.data, compute_uv=False)[0]
        assert sigma < 2.0

    def test_requires_weight_parameter(self):
        with pytest.raises(ValueError):
            nn.SpectralNorm(nn.ReLU())

    def test_eval_mode_skips_update(self):
        layer = nn.SpectralNorm(nn.Linear(4, 4))
        layer.eval()
        before = layer.module.weight.data.copy()
        layer(randn(2, 4))
        assert np.allclose(before, layer.module.weight.data)
