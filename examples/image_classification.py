"""Image classification with the QDNN auto-builder (the paper's main workflow).

Run with::

    python examples/image_classification.py

The script takes a first-order convolutional network, converts it to a QDNN
with the auto-builder (layer replacement), trains both on the synthetic
CIFAR-10 stand-in, and compares accuracy, parameter count and training
memory — a miniature version of the paper's Table 3 experiment.
"""

from repro.builder import AutoBuilder, QuadraticModelConfig
from repro.data.synthetic import SyntheticImageClassification
from repro.models import SmallConvNet
from repro.profiler import estimate_training_memory, profile_model
from repro.training import train_classifier
from repro.utils import print_table, seed_everything

EPOCHS = 3
BATCH_SIZE = 32
IMAGE_SIZE = 16
NUM_CLASSES = 6


def main() -> None:
    seed_everything(0)
    train_set = SyntheticImageClassification(num_samples=256, num_classes=NUM_CLASSES,
                                             image_size=IMAGE_SIZE, split_seed=0)
    test_set = SyntheticImageClassification(num_samples=128, num_classes=NUM_CLASSES,
                                            image_size=IMAGE_SIZE, split_seed=1)

    rows = []
    for name, neuron_type, hybrid in (("First-order CNN", "first_order", False),
                                      ("QuadraNN (auto-built)", "OURS", False),
                                      ("QuadraNN (hybrid BP)", "OURS", True)):
        seed_everything(1)
        model = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE,
                             config=QuadraticModelConfig(neuron_type="first_order",
                                                         width_multiplier=0.5))
        if neuron_type != "first_order":
            report = AutoBuilder(neuron_type=neuron_type, hybrid_bp=hybrid).convert(model)
            print(f"{name}: converted {report.converted_layers} layers "
                  f"({report.parameters_before:,} → {report.parameters_after:,} parameters)")

        memory = estimate_training_memory(model, (3, IMAGE_SIZE, IMAGE_SIZE),
                                          num_classes=NUM_CLASSES)
        history = train_classifier(model, train_set, test_set, epochs=EPOCHS,
                                   batch_size=BATCH_SIZE, lr=0.05)
        profile = profile_model(model, (3, IMAGE_SIZE, IMAGE_SIZE))
        rows.append([
            name,
            f"{profile.total_parameters:,}",
            f"{memory.total_bytes(BATCH_SIZE) / 2**20:.1f} MiB",
            f"{history.final_train_accuracy:.3f}",
            f"{history.best_test_accuracy:.3f}",
        ])

    print()
    print_table(["Model", "#Param", "Train memory", "Train acc", "Test acc"], rows,
                title="First-order vs. auto-built QuadraNN on the synthetic CIFAR stand-in")


if __name__ == "__main__":
    main()
