"""Trainable parameter type."""

from __future__ import annotations

import numpy as np

from ..autodiff.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by :class:`Module`.

    Parameters always require gradients unless explicitly frozen with
    ``requires_grad=False`` (used, e.g., when copying a pre-trained backbone
    into a detector and freezing early layers).
    """

    def __init__(self, data, requires_grad: bool = True, name: str = "") -> None:
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(np.asarray(data), requires_grad=requires_grad, name=name)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, requires_grad={self.requires_grad})"
