"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

#: Arguments shared by every training-flavoured smoke invocation to keep the
#: CLI tests fast on a CPU.  The image size stays at 32 for the VGG-8 runs so
#: all five pooling stages still see a non-empty feature map.
FAST = ["--width-multiplier", "0.25", "--image-size", "32", "--num-classes", "4",
        "--samples", "32", "--epochs", "1", "--batch-size", "16", "--max-batches", "2"]

#: Exploration genomes have at most three pooling stages, so a smaller image is safe.
FAST_SMALL_IMAGE = ["--width-multiplier", "0.25", "--image-size", "16", "--num-classes", "4",
                    "--samples", "32", "--epochs", "1", "--batch-size", "16",
                    "--max-batches", "2"]


def run(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


# --------------------------------------------------------------------------- #
# Parser behaviour
# --------------------------------------------------------------------------- #

def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_model():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["profile", "--model", "transformer"])


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #

def test_neurons_lists_every_registered_design(capsys):
    out = run(["neurons"], capsys)
    for name in ("T1", "T2", "T3", "T4", "T2_4", "OURS"):
        assert name in out
    assert "(Wa X) ∘ (Wb X) + Wc X" in out


def test_profile_prints_parameters_and_memory(capsys):
    out = run(["profile", "--model", "vgg8", "--neuron-type", "OURS",
               "--width-multiplier", "0.25", "--image-size", "32", "--num-classes", "4",
               "--batch-size", "32"], capsys)
    assert "parameters" in out
    assert "training memory" in out
    assert "GiB" in out


def test_profile_per_layer_and_latency(capsys):
    out = run(["profile", "--model", "lenet", "--image-size", "32", "--num-classes", "4",
               "--per-layer", "--latency", "--latency-repeats", "1", "--batch-size", "4"],
              capsys)
    assert "Per-layer profile" in out
    assert "train latency / batch" in out


def test_convert_reports_parameter_ratio(capsys):
    out = run(["convert", "--model", "vgg8", "--neuron-type", "OURS",
               "--width-multiplier", "0.25", "--num-classes", "4"], capsys)
    assert "converted layers" in out
    assert "parameter ratio" in out
    # Converting to the three-weight-set neuron must grow the parameter count.
    ratio_line = next(line for line in out.splitlines() if "parameter ratio" in line)
    ratio = float(ratio_line.split("|")[-1].strip().rstrip("x"))
    assert ratio > 1.5


def test_train_smoke(capsys):
    out = run(["train", "--model", "vgg8", "--neuron-type", "OURS", *FAST], capsys)
    assert "Epoch" in out and "Train acc" in out
    assert "1" in out


def test_ppml_smoke(capsys):
    out = run(["ppml", "--model", "vgg8", "--strategy", "quadratic_no_relu",
               "--protocol", "delphi", "--width-multiplier", "0.25", "--image-size", "32",
               "--num-classes", "4"], capsys)
    assert "online latency before" in out
    assert "layers quadratized" in out


def test_ppml_cryptonets_marks_unrunnable_baseline(capsys):
    out = run(["ppml", "--model", "vgg8", "--strategy", "square", "--protocol", "cryptonets",
               "--width-multiplier", "0.25", "--image-size", "32", "--num-classes", "4"],
              capsys)
    assert "not runnable" in out


def test_explore_random_smoke(capsys):
    out = run(["explore", "--strategy", "random", "--budget", "3", *FAST_SMALL_IMAGE], capsys)
    assert "random search over" in out
    assert "Proxy acc" in out


def test_explore_evolution_smoke(capsys):
    out = run(["explore", "--strategy", "evolution", "--budget", "4", *FAST_SMALL_IMAGE],
              capsys)
    assert "evolution search over" in out


def test_infer_smoke(capsys):
    out = run(["infer", "smoke", "--samples", "8", "--repeats", "1",
               "--max-batch-size", "4"], capsys)
    assert "compiled latency / sample" in out
    assert "batched throughput" in out
    # The compiled path must agree with the eager forward (bit-identical on
    # the smoke model).
    diff_line = next(line for line in out.splitlines() if "max |compiled - eager|" in line)
    assert float(diff_line.split("|")[-1].strip()) <= 1e-6


def test_infer_json_output(capsys):
    import json

    out = run(["infer", "smoke", "--samples", "4", "--repeats", "1", "--json"], capsys)
    payload = json.loads(out)
    assert payload["fallback_modules"] == 0
    assert payload["max_abs_diff"] <= 1e-6
    assert payload["compiled_ms_per_sample"] > 0
