"""Fig. 8 — cached-memory profile of one training iteration: default vs. hybrid BP.

The paper instruments a small ConvNet (3 conv + 2 FC layers, batch 256,
32×32 inputs) with ``torch.cuda.memory_allocated()`` and shows that the
hybrid back-propagation scheme reduces the peak memory of a forward+backward
iteration by ~26.7% (3.0 GB → 2.2 GB).  This benchmark reproduces the same
curve with the allocation tracker: cached-intermediate bytes over the events
of one iteration, for the composed (default-AD) quadratic ConvNet and the
hybrid (symbolic-backward) one.
"""

import numpy as np
import pytest

from common import fresh_seed, mb, save_experiment
from repro.analysis import ascii_line_chart
from repro.autodiff import Tensor
from repro.builder import QuadraticModelConfig
from repro.models import SmallConvNet
from repro.nn.losses import CrossEntropyLoss
from repro.profiler import MemoryTracker
from repro.utils import print_table

BATCH = 64          # paper: 256
IMAGE = 32          # paper: 32
NUM_CLASSES = 10


def _one_iteration_peak(model, images, labels):
    loss_fn = CrossEntropyLoss()
    with MemoryTracker() as tracker:
        loss = loss_fn(model(Tensor(images)), labels)
        forward_peak = tracker.current_bytes
        loss.backward()
    model.zero_grad()
    return tracker, forward_peak


def test_fig8_hybrid_bp_memory_curve(benchmark):
    fresh_seed(8)
    rng = np.random.default_rng(0)
    images = rng.standard_normal((BATCH, 3, IMAGE, IMAGE)).astype(np.float32)
    labels = rng.integers(0, NUM_CLASSES, size=BATCH)

    default_model = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE,
                                 config=QuadraticModelConfig(neuron_type="OURS",
                                                             width_multiplier=0.5))
    hybrid_model = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE,
                                config=QuadraticModelConfig(neuron_type="OURS", hybrid_bp=True,
                                                            width_multiplier=0.5))

    default_tracker, default_forward_peak = _one_iteration_peak(default_model, images, labels)
    hybrid_tracker, hybrid_forward_peak = _one_iteration_peak(hybrid_model, images, labels)

    saving = 1.0 - hybrid_tracker.peak_bytes / default_tracker.peak_bytes
    rows = [
        ["Default BP (composed AD)", round(mb(default_forward_peak), 1),
         round(mb(default_tracker.peak_bytes), 1), "-"],
        ["Hybrid BP (symbolic)", round(mb(hybrid_forward_peak), 1),
         round(mb(hybrid_tracker.peak_bytes), 1), f"{saving * 100:.1f}%"],
    ]
    print()
    print_table(["Scheme", "End-of-forward (MiB)", "Peak of iteration (MiB)", "Saving"],
                rows, title=f"Fig. 8 (reproduced, scaled): ConvNet iteration memory, batch {BATCH}")

    # Down-sampled memory curves (the Fig. 8 lines) for the results file.
    def downsample(curve, points=40):
        if len(curve) <= points:
            return [float(v) for v in curve]
        idx = np.linspace(0, len(curve) - 1, points).astype(int)
        return [float(curve[i]) for i in idx]

    default_curve = downsample(default_tracker.timeline_bytes())
    hybrid_curve = downsample(hybrid_tracker.timeline_bytes())
    print()
    print(ascii_line_chart(
        {"Default BP": [mb(v) for v in default_curve],
         "Hybrid BP": [mb(v) for v in hybrid_curve]},
        width=56, height=10,
        title="Fig. 8 (ASCII): cached memory over one iteration (forward then backward)",
        y_label="cached MiB", x_label="iteration progress (start -> end)"))

    save_experiment("fig8_hybrid_bp", {
        "default_peak_bytes": default_tracker.peak_bytes,
        "hybrid_peak_bytes": hybrid_tracker.peak_bytes,
        "saving_fraction": saving,
        "default_curve_bytes": default_curve,
        "hybrid_curve_bytes": hybrid_curve,
    })

    # The paper reports ~26.7% saving; the substrate should land in a broad
    # band around that (the exact fraction depends on layer widths).
    assert 0.10 < saving < 0.80
    # Memory must return to zero after backward in both schemes.
    assert default_tracker.current_bytes == 0
    assert hybrid_tracker.current_bytes == 0

    # Timed kernel: one full hybrid-BP iteration.
    loss_fn = CrossEntropyLoss()

    def hybrid_step():
        hybrid_model.zero_grad()
        loss = loss_fn(hybrid_model(Tensor(images[:16])), labels[:16])
        loss.backward()
        return loss.item()

    benchmark(hybrid_step)
