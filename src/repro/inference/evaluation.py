"""Shared compiled-vs-eager measurement pipeline.

Both user-facing surfaces that report on the inference engine — the
``repro infer`` CLI subcommand and ``benchmarks/bench_inference_throughput``
— need the same three measurements: does the compiled path reproduce the
eager forward, how much faster is a single sample, and what does the
micro-batching predictor sustain.  This module is the single implementation
so the two surfaces can never drift apart in *how* they measure.
"""

from __future__ import annotations

import time
from typing import Any, Dict

import numpy as np

from ..autodiff.tensor import Tensor
from ..nn.module import Module
from ..profiler.latency import median_runtime_ms
from .compiler import CompiledModel
from .predictor import BatchedPredictor


def max_abs_diff(expected: np.ndarray, actual: np.ndarray) -> float:
    """Maximum absolute difference, treating *matching* non-finite values as 0.

    Untrained quadratic models can overflow in eval mode; when both paths
    produce the same ``inf``/``nan`` at the same position that is agreement,
    not error.  A non-finite value on one side only (or differing infinities)
    still surfaces as ``inf``/``nan``.
    """
    agree = (~np.isfinite(expected)) & (expected == actual)
    agree |= np.isnan(expected) & np.isnan(actual)
    diff = np.where(agree, 0.0, np.abs(actual - expected))
    return float(np.max(diff))


def measure_serving(model: Module, compiled: CompiledModel, samples: np.ndarray,
                    *, max_batch_size: int = 8, max_wait: float = 0.002,
                    repeats: int = 5) -> Dict[str, Any]:
    """Run the standard inference-engine comparison on ``samples``.

    Returns a JSON-serializable dict with the correctness check
    (``max_abs_diff`` of compiled vs eager on one sample), the single-sample
    latency pair and speedup, and the micro-batched serving throughput over
    all of ``samples``.  The eager model is measured in eval mode (and
    restored afterwards) — the comparison is against inference semantics, and
    a training-mode forward would corrupt BatchNorm running statistics as a
    side effect of measuring.
    """
    samples = np.asarray(samples, dtype=np.float32)
    single = samples[:1]
    was_training = model.training
    model.train(False)
    try:
        with np.errstate(all="ignore"):
            eager_out = model(Tensor(single)).data
            compiled_out = compiled(single)
            diff = max_abs_diff(eager_out, compiled_out)

            eager_ms = median_runtime_ms(lambda: model(Tensor(single)),
                                         iterations=repeats)
            compiled_ms = median_runtime_ms(lambda: compiled(single),
                                            iterations=repeats)

            predictor = BatchedPredictor(compiled, max_batch_size=max_batch_size,
                                         max_wait=max_wait, autostart=False)
            try:
                handles = [predictor.submit(sample) for sample in samples]
                start = time.perf_counter()
                predictor.start()
                for handle in handles:
                    handle.result()
                elapsed = time.perf_counter() - start
            finally:
                predictor.close()
    finally:
        model.train(was_training)
    stats = predictor.stats
    return {
        "compiled_steps": compiled.num_steps,
        "fallback_modules": len(compiled.fallback_modules),
        "max_abs_diff": diff,
        "eager_ms_per_sample": eager_ms,
        "compiled_ms_per_sample": compiled_ms,
        "speedup": eager_ms / compiled_ms if compiled_ms else None,
        "samples": int(len(samples)),
        "serve_seconds": elapsed,
        "throughput_samples_per_s": (len(samples) / elapsed if elapsed > 0
                                     else float("inf")),
        "batches": stats.batches,
        "mean_batch_size": stats.mean_batch_size,
    }
