"""SNGAN training with the hinge objective (paper Sec. 5.3, scaled down).

The adversarial loop now runs through the unified engine
(:class:`repro.engine.GANAdapter`, which owns the two-optimizer step);
:func:`train_sngan` is a thin adapter preserving the original signature and
history semantics bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..data.synthetic.generation import SyntheticGenerationDataset
from ..models.sngan import SNGANDiscriminator, SNGANGenerator


@dataclass
class GANTrainingHistory:
    """Per-step generator/discriminator losses."""

    generator_loss: List[float] = field(default_factory=list)
    discriminator_loss: List[float] = field(default_factory=list)

    @property
    def final_generator_loss(self) -> float:
        return self.generator_loss[-1] if self.generator_loss else float("nan")

    @property
    def final_discriminator_loss(self) -> float:
        return self.discriminator_loss[-1] if self.discriminator_loss else float("nan")

    # ------------------------------------------------------------ persistence
    def to_dict(self) -> Dict[str, Any]:
        return {
            "generator_loss": [float(v) for v in self.generator_loss],
            "discriminator_loss": [float(v) for v in self.discriminator_loss],
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "GANTrainingHistory":
        """Tolerant inverse of :meth:`to_dict` (missing/None fields → empty)."""
        data = data or {}
        return cls(
            generator_loss=[float(v) for v in (data.get("generator_loss") or [])],
            discriminator_loss=[float(v) for v in (data.get("discriminator_loss") or [])],
        )


def train_sngan(generator: SNGANGenerator, discriminator: SNGANDiscriminator,
                dataset: SyntheticGenerationDataset, steps: int = 100, batch_size: int = 32,
                lr_generator: float = 2e-4, lr_discriminator: float = 2e-4,
                betas=(0.5, 0.9), discriminator_steps: int = 1,
                seed: int = 0) -> GANTrainingHistory:
    """Adversarial training with the hinge loss (the SNGAN objective).

    ``discriminator_steps`` controls how many discriminator updates run per
    generator update (the original SNGAN uses 5; the scaled benchmark uses 1).
    """
    from ..engine import run_gan

    return run_gan(generator, discriminator, dataset, steps=steps, batch_size=batch_size,
                   lr_generator=lr_generator, lr_discriminator=lr_discriminator,
                   betas=betas, discriminator_steps=discriminator_steps, seed=seed)


def generate_images(generator: SNGANGenerator, num_images: int, batch_size: int = 64,
                    seed: int = 0) -> np.ndarray:
    """Sample images from a trained generator (evaluation helper)."""
    rng = np.random.default_rng(seed)
    generator.train(False)
    batches = []
    with no_grad():
        remaining = num_images
        while remaining > 0:
            n = min(batch_size, remaining)
            z = Tensor(generator.sample_latent(n, rng=rng))
            batches.append(generator(z).data)
            remaining -= n
    generator.train(True)
    return np.concatenate(batches, axis=0)
