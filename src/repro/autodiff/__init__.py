"""``repro.autodiff`` — a reverse-mode automatic differentiation engine.

This package is the substrate that replaces PyTorch's autograd for the
QuadraLib reproduction: a dynamically-built operation graph over NumPy
arrays, a ``Function`` class with user-definable backward passes (needed for
the paper's hybrid back-propagation), gradient-mode control, and gradient
checkpointing.
"""

from .checkpoint import checkpoint
from .function import Context, Function, unbroadcast
from .grad_mode import (
    enable_grad,
    inference_mode,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from .tensor import (
    Tensor,
    arange,
    cat,
    concatenate,
    einsum,
    full,
    ones,
    ones_like,
    rand,
    randn,
    stack,
    tensor,
    where,
    zeros,
    zeros_like,
)

__all__ = [
    "Tensor",
    "Function",
    "Context",
    "unbroadcast",
    "checkpoint",
    "no_grad",
    "inference_mode",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "full",
    "zeros_like",
    "ones_like",
    "arange",
    "randn",
    "rand",
    "concatenate",
    "cat",
    "stack",
    "where",
    "einsum",
]
