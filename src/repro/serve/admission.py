"""Latency-budget admission control for the serving pool.

The watermark (:class:`~repro.serve.pool.PoolSaturated` → HTTP 503) protects
the *pool* from unbounded buffering; it says nothing about latency.  A pool
with a deep watermark happily accepts a request that will sit behind two
hundred others — the caller gets a 200 thirty seconds too late, which for
an SLO-bound client is worse than an honest, immediate rejection.

:class:`AdmissionController` sheds on *predicted wait* instead.  It keeps an
exponentially weighted moving average of the measured per-request service
time (observed by the pool on every completed request: everything after the
backlog — transport + compute) and estimates the queue delay a new arrival
would see as

    estimated_wait_ms = queued_requests x ewma_service_ms / workers

which is Little's-law bookkeeping for a FIFO backlog over ``workers``
parallel servers, deliberately ignoring batching speedups — admission should
err on the honest side.  When the estimate exceeds the configured budget the
request is rejected *before* it enters the backlog, with a ``Retry-After``
hint computed from how long the excess backlog needs to drain.  The HTTP
front door maps the rejection to ``429 Too Many Requests`` (load the client
caused, unlike the pool-health 503s) and ``/healthz`` stays green: a pool
over its latency budget is busy, not broken.

A budget of ``0`` disables the controller — every request is admitted, and
only the watermark sheds.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional


def littles_law_wait_ms(queued: int, service_ms: float, workers: int) -> float:
    """Predicted FIFO queue delay: ``queued x service_ms / workers``.

    The one Little's-law estimate shared by the runtime and the planner:
    :meth:`AdmissionController.estimated_wait_ms` uses it to shed live
    traffic, and :class:`repro.capacity.CapacityModel` uses it to predict
    backlog drain times offline — so a capacity plan and the admission
    controller can never disagree about what a backlog of N requests costs.
    """
    return queued * service_ms / max(workers, 1)


class AdmissionRejected(RuntimeError):
    """Admitting this request would blow the latency budget — shed it.

    Carries the controller's estimate so transports can answer with a
    meaningful ``Retry-After`` instead of a bare rejection.
    """

    def __init__(self, message: str, estimated_wait_ms: float,
                 budget_ms: float, retry_after_s: int) -> None:
        super().__init__(message)
        self.estimated_wait_ms = estimated_wait_ms
        self.budget_ms = budget_ms
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class AdmissionDecision:
    """One admit/shed verdict plus the numbers behind it."""

    admitted: bool
    estimated_wait_ms: float
    budget_ms: float
    retry_after_s: int = 0


class AdmissionController:
    """EWMA service-time tracker + budget gate (thread-safe).

    Parameters
    ----------
    budget_ms : float
        The latency budget: reject once the estimated queue wait for a new
        request exceeds this.  ``0`` disables admission control entirely.
    alpha : float
        EWMA smoothing factor in (0, 1]; higher weights recent requests
        more.  The default 0.2 converges in a few dozen requests while
        riding out single-request noise.
    """

    def __init__(self, budget_ms: float, alpha: float = 0.2) -> None:
        if budget_ms < 0:
            raise ValueError(f"budget_ms must be >= 0 (0 = disabled), got {budget_ms}")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.budget_ms = float(budget_ms)
        self.alpha = float(alpha)
        self._lock = threading.Lock()
        self._service_ms: Optional[float] = None
        self.observations = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.budget_ms > 0

    @property
    def service_ms(self) -> Optional[float]:
        """Current per-request service-time estimate (None before traffic)."""
        with self._lock:
            return self._service_ms

    def observe(self, service_ms: float) -> None:
        """Feed one measured per-request service time (post-backlog)."""
        if service_ms < 0 or not math.isfinite(service_ms):
            return
        with self._lock:
            self.observations += 1
            if self._service_ms is None:
                self._service_ms = float(service_ms)
            else:
                self._service_ms += self.alpha * (service_ms - self._service_ms)

    def estimated_wait_ms(self, queued: int, workers: int) -> float:
        """Predicted queue delay for a request arriving behind ``queued``."""
        with self._lock:
            service = self._service_ms
        if service is None:
            return 0.0
        return littles_law_wait_ms(queued, service, workers)

    def decide(self, queued: int, workers: int) -> AdmissionDecision:
        """Admit or shed a new arrival; never raises (the pool raises).

        ``queued`` should count everything the arrival would wait behind —
        the backlog plus requests already dispatched to workers.  Until the
        first observation the controller admits unconditionally: with no
        service-time evidence, rejecting would be guessing.
        """
        if not self.enabled:
            return AdmissionDecision(True, 0.0, self.budget_ms)
        estimate = self.estimated_wait_ms(queued, workers)
        if estimate <= self.budget_ms:
            with self._lock:
                self.admitted += 1
            return AdmissionDecision(True, estimate, self.budget_ms)
        # How long until the backlog shrinks enough to fit the budget again.
        retry_after = max(1, math.ceil((estimate - self.budget_ms) / 1000.0))
        with self._lock:
            self.rejected += 1
        return AdmissionDecision(False, estimate, self.budget_ms, retry_after)

    def reject(self, decision: AdmissionDecision) -> AdmissionRejected:
        """The exception for a shed decision (the pool raises it)."""
        return AdmissionRejected(
            f"estimated queue wait {decision.estimated_wait_ms:.1f} ms exceeds "
            f"the latency budget {decision.budget_ms:.1f} ms; retry in "
            f"{decision.retry_after_s}s",
            estimated_wait_ms=decision.estimated_wait_ms,
            budget_ms=decision.budget_ms,
            retry_after_s=decision.retry_after_s)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            service = self._service_ms
            return {
                "enabled": self.enabled,
                "budget_ms": self.budget_ms,
                "service_ms_ewma": round(service, 3) if service is not None else None,
                "observations": self.observations,
                "admitted": self.admitted,
                "rejected": self.rejected,
            }

    def __repr__(self) -> str:
        state = f"budget={self.budget_ms}ms" if self.enabled else "disabled"
        return f"AdmissionController({state}, ewma={self._service_ms})"
