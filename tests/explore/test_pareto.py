"""Tests for the multi-objective (Pareto) utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import (
    ArchitectureGenome,
    CandidateEvaluation,
    crowding_distance,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front,
)


def make_eval(accuracy: float, parameters: int, macs: int = 1000,
              memory: float = 1e6, width: int = 8) -> CandidateEvaluation:
    """A synthetic evaluation (no training involved)."""
    genome = ArchitectureGenome((1,), (width,), neuron_type="OURS")
    return CandidateEvaluation(genome=genome, accuracy=accuracy, train_accuracy=accuracy,
                               parameters=parameters, macs=macs,
                               training_memory_bytes=memory, seconds=0.0)


def distinct_evals(points):
    """Evaluations with distinct genome keys (widths double as identifiers)."""
    return [make_eval(acc, params, width=8 * (i + 1))
            for i, (acc, params) in enumerate(points)]


def test_dominates_strictly_better():
    better = make_eval(0.9, 100)
    worse = make_eval(0.8, 200)
    assert dominates(better, worse)
    assert not dominates(worse, better)


def test_dominates_requires_strict_improvement_somewhere():
    a = make_eval(0.9, 100)
    b = make_eval(0.9, 100)
    assert not dominates(a, b)
    assert not dominates(b, a)


def test_dominates_incomparable_points():
    cheap_but_weak = make_eval(0.7, 50)
    strong_but_big = make_eval(0.9, 500)
    assert not dominates(cheap_but_weak, strong_but_big)
    assert not dominates(strong_but_big, cheap_but_weak)


def test_dominates_unknown_objective_raises():
    with pytest.raises(KeyError):
        dominates(make_eval(0.9, 10), make_eval(0.8, 20), maximize=("latency",))


def test_pareto_front_simple_case():
    evals = distinct_evals([(0.9, 500), (0.7, 50), (0.8, 600), (0.6, 60)])
    front = pareto_front(evals)
    accuracies = sorted(e.accuracy for e in front)
    assert accuracies == [0.7, 0.9]  # (0.8, 600) dominated by (0.9, 500); (0.6, 60) by (0.7, 50)


def test_pareto_front_deduplicates_identical_genomes():
    single = make_eval(0.8, 100)
    front = pareto_front([single, single])
    assert len(front) == 1


def test_non_dominated_sort_partitions_everything():
    evals = distinct_evals([(0.9, 500), (0.7, 50), (0.8, 600), (0.6, 60), (0.5, 700)])
    fronts = non_dominated_sort(evals)
    assert sum(len(front) for front in fronts) == len(evals)
    # Every candidate in a later front is dominated by someone in an earlier front.
    for level in range(1, len(fronts)):
        for candidate in fronts[level]:
            assert any(dominates(prior, candidate) for prior in fronts[level - 1])


def test_crowding_distance_boundaries_are_infinite():
    front = distinct_evals([(0.9, 500), (0.8, 300), (0.7, 100)])
    distances = crowding_distance(front)
    assert math.isinf(distances[front[0].genome.key()])
    assert math.isinf(distances[front[2].genome.key()])
    assert math.isfinite(distances[front[1].genome.key()])
    assert distances[front[1].genome.key()] > 0


def test_crowding_distance_tiny_front_all_infinite():
    front = distinct_evals([(0.9, 500), (0.7, 100)])
    assert all(math.isinf(d) for d in crowding_distance(front).values())


def test_hypervolume_empty_and_single_point():
    assert hypervolume_2d([]) == 0.0
    single = make_eval(0.5, 100)
    # Reference cost defaults to the worst (=only) cost, so the rectangle is flat.
    assert hypervolume_2d([single]) == 0.0
    assert hypervolume_2d([single], reference=(0.0, 200)) == pytest.approx(0.5 * 100)


def test_hypervolume_monotone_under_added_dominating_point():
    evals = distinct_evals([(0.6, 400), (0.7, 600)])
    base = hypervolume_2d(evals, reference=(0.0, 1000))
    improved = evals + [make_eval(0.9, 300, width=64)]
    assert hypervolume_2d(improved, reference=(0.0, 1000)) > base


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1.0),
                          st.integers(min_value=1, max_value=10_000)),
                min_size=1, max_size=12))
@settings(max_examples=50, deadline=None)
def test_pareto_front_properties(points):
    evals = distinct_evals(points)
    front = pareto_front(evals)
    assert 1 <= len(front) <= len(evals)
    # No member of the front dominates another member.
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b)
    # Every candidate is dominated by or equal in objectives to some front member.
    for candidate in evals:
        assert any(
            f is candidate or dominates(f, candidate)
            or f.objectives() == candidate.objectives()
            for f in front
        )
