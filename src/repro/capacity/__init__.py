"""``repro.capacity`` — first-principles capacity planning for serving.

Answers the deployment questions *before* a load test runs: what throughput
will this model sustain on this host, what p50/p99 will an offered QPS see,
and how many workers does a target QPS require?  The prediction is built
from measurements, not curve fits:

* per-request work from the model itself — :func:`request_work` buckets the
  profiler's exact per-layer MAC counts by kernel class,
* per-kernel host rates from micro-probes —
  :meth:`repro.backends.Backend.measure_rates`, cached per (backend, host),
* queueing from the pool's actual shape — ``c`` workers behind one FIFO
  backlog is an M/M/c system (:class:`MMcQueue`), the same Little's-law
  arithmetic the admission controller applies online,
* secure deployments add the measured protocol round structure and the
  offline-material ledger (:func:`secure_work`).

Entry points: ``repro plan spec.json --qps 200`` on the CLI,
:meth:`repro.experiment.Experiment.plan` in code, or assemble a
:class:`CapacityModel` by hand from the pieces above.  The serving
benchmarks validate plans against measured throughput/latency within a
declared error band; see ``docs/capacity.md`` for the model's derivation.
"""

from .model import TARGET_UTILIZATION, CapacityModel, CapacityPlan, SecureCapacity
from .queueing import MMcQueue, erlang_c
from .workload import RequestWork, SecureWork, request_work, secure_work

__all__ = [
    "CapacityModel",
    "CapacityPlan",
    "MMcQueue",
    "RequestWork",
    "SecureCapacity",
    "SecureWork",
    "TARGET_UTILIZATION",
    "erlang_c",
    "request_work",
    "secure_work",
]
