"""CLI checkpoint workflows: run --checkpoint-dir / train --resume /
serve --from-checkpoint, plus the deprecation shim for the old loop internals."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.experiment import Experiment, ExperimentSpec, get_preset
from repro.utils import load_training_checkpoint, reset_deprecation_warnings


def run(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


@pytest.fixture()
def tiny_spec_path(tmp_path):
    """A 3-epoch spec file small enough for CLI round trips."""
    spec = get_preset("smoke").with_(name="resume-check")
    spec = spec.with_(train=spec.train.with_(epochs=3), steps=["build", "fit"])
    path = tmp_path / "spec.json"
    spec.save(str(path))
    return str(path)


class TestRunCheckpointFlags:
    def test_stop_after_epoch_writes_resumable_checkpoint(self, tiny_spec_path,
                                                          tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        run(["run", tiny_spec_path, "--checkpoint-dir", str(ckpt_dir),
             "--stop-after-epoch", "1"], capsys)
        payload = load_training_checkpoint(str(ckpt_dir / "latest.npz"))
        assert payload["epoch"] == 1
        # The whole spec is embedded, with the CLI overrides applied.
        assert payload["spec"]["train"]["checkpoint_dir"] == str(ckpt_dir)
        assert payload["spec"]["train"]["stop_after_epoch"] == 1

    def test_train_resume_completes_the_run(self, tiny_spec_path, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        run(["run", tiny_spec_path, "--checkpoint-dir", str(ckpt_dir),
             "--stop-after-epoch", "1"], capsys)
        out = run(["train", "--resume", str(ckpt_dir / "latest.npz")], capsys)
        assert "Resumed 'resume-check' from epoch 1 of 3" in out
        # All three epochs appear: one restored, two trained after the resume.
        assert any(line.startswith("3 ") for line in out.splitlines())
        final = load_training_checkpoint(str(ckpt_dir / "latest.npz"))
        assert final["epoch"] == 3

    def test_resumed_run_matches_uninterrupted_bit_for_bit(self, tiny_spec_path,
                                                           tmp_path, capsys):
        spec = ExperimentSpec.load(tiny_spec_path)
        uninterrupted = Experiment(spec)
        full_history = uninterrupted.fit()

        ckpt_dir = tmp_path / "ckpts"
        run(["run", tiny_spec_path, "--checkpoint-dir", str(ckpt_dir),
             "--stop-after-epoch", "1"], capsys)
        run(["train", "--resume", str(ckpt_dir / "latest.npz")], capsys)
        final = load_training_checkpoint(str(ckpt_dir / "latest.npz"))
        assert final["adapter"]["history"]["train_loss"] == full_history.to_dict()["train_loss"]
        full_state = uninterrupted.model.state_dict()
        for name, value in final["adapter"]["model"].items():
            assert np.array_equal(value, full_state[name]), name

    def test_run_prefetch_flag_matches_sync_numerics(self, tiny_spec_path, capsys):
        sync = json.loads(run(["run", tiny_spec_path, "--json"], capsys))
        prefetched = json.loads(run(["run", tiny_spec_path, "--prefetch", "--json"],
                                    capsys))
        assert (prefetched["results"]["fit"]["history"]["train_loss"]
                == sync["results"]["fit"]["history"]["train_loss"])

    def test_resume_with_bad_checkpoint_fails_readably(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.npz")
        assert main(["train", "--resume", missing]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestServeFromCheckpoint:
    def test_spec_and_checkpoint_are_mutually_exclusive(self, capsys):
        assert main(["serve", "smoke", "--from-checkpoint", "x.npz"]) == 2
        assert "not both" in capsys.readouterr().err
        assert main(["serve"]) == 2
        assert "not both and not neither" in capsys.readouterr().err

    def test_serves_trained_weights_bit_identically(self, tiny_spec_path, tmp_path,
                                                    capsys):
        ckpt_dir = tmp_path / "ckpts"
        run(["run", tiny_spec_path, "--checkpoint-dir", str(ckpt_dir)], capsys)
        out = run(["serve", "--from-checkpoint", str(ckpt_dir / "latest.npz"),
                   "--workers", "1", "--port", "0", "--self-test", "2", "--json"],
                  capsys)
        results = json.loads(out.split("\n", 1)[1])
        assert results["bit_identical"] is True

    def test_gan_checkpoint_is_rejected(self, tmp_path, capsys):
        from repro.data.synthetic import SyntheticGenerationDataset
        from repro.engine import run_gan
        from repro.models import sngan_pair

        gen, disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        run_gan(gen, disc, SyntheticGenerationDataset(num_samples=16, image_size=16),
                steps=1, batch_size=4, checkpoint_dir=str(tmp_path))
        assert main(["serve", "--from-checkpoint", str(tmp_path / "latest.npz")]) == 2
        assert "classification" in capsys.readouterr().err


class TestLoopInternalsShim:
    def test_old_impl_import_warns_once_and_still_trains(self):
        reset_deprecation_warnings()
        import repro.training.classification as classification

        with pytest.warns(DeprecationWarning, match="repro.engine"):
            impl = classification._train_classifier_impl
        # Second access is silent (single-warning policy).
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            classification._train_classifier_impl  # noqa: B018
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]

        from repro.data import TensorDataset
        from repro.data.synthetic.toy import xor_dataset
        from repro.models import QuadraticMLP

        x, y = xor_dataset(64)
        history = impl(QuadraticMLP([2, 8, 2]), TensorDataset(x, y), epochs=1,
                       batch_size=16)
        assert len(history.train_loss) == 1
        reset_deprecation_warnings()

    def test_unknown_attribute_still_raises(self):
        import repro.training.classification as classification

        with pytest.raises(AttributeError):
            classification._no_such_loop
