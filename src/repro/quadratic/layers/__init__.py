"""Quadratic layer modules."""

from .base import QuadraticLayerBase
from .hybrid import (
    HybridQuadraticConv2d,
    HybridQuadraticConv2dFan,
    HybridQuadraticConv2dFanFunction,
    HybridQuadraticConv2dFunction,
    HybridQuadraticConv2dT4,
    HybridQuadraticConv2dT4Function,
    HybridQuadraticLinear,
    HybridQuadraticLinearFunction,
)
from .qconv import QuadraticConv2d, QuadraticConv2dT1
from .qlinear import QuadraticLinear

__all__ = [
    "QuadraticLayerBase",
    "QuadraticLinear",
    "QuadraticConv2d",
    "QuadraticConv2dT1",
    "HybridQuadraticConv2d",
    "HybridQuadraticConv2dT4",
    "HybridQuadraticConv2dFan",
    "HybridQuadraticLinear",
    "HybridQuadraticConv2dFunction",
    "HybridQuadraticConv2dT4Function",
    "HybridQuadraticConv2dFanFunction",
    "HybridQuadraticLinearFunction",
]
