"""The worker-process side of the serving pool.

Each worker is an independent OS process that receives the experiment spec
and the trained weights over IPC (both pickle cleanly: the spec as a plain
dict, the weights as a name → ``np.ndarray`` state dict), rebuilds the model,
compiles it, and executes the batch frames the pool's continuous batcher
cuts for it.  Because every worker starts from the same serialized weights
and the compiled path is deterministic, any worker answers any request with
the same bits.

Wire protocol (control frames are picklable tuples; tensor payloads travel
either inline or through the worker's shared-memory rings):

* parent → worker::

      ("batch", batch_id, [request_ids], payload[, meta])   # the data plane
      ("predict", request_id, sample)               # legacy single-sample
      ("sleep", request_id, seconds)                # drain tests, warm-up
      None                                          # drain and exit

  where ``payload`` is ``("shm", ShmFrame)`` — the stacked float32 batch is
  parked in the request ring — or ``("inline", ndarray)`` for the pipe
  transport and for tensors that outgrew a slot.  The optional fifth
  element ``meta`` only appears on secure pools: ``None`` for the default
  secure configuration, or ``{"protocol", "frac_bits", "truncation"}`` for
  a per-request override (the worker compiles that variant lazily).

* worker → parent::

      ("ready", worker_id, pid)                     # serving can begin
      ("okb", batch_id, [request_ids], payload, timings)
      ("errb", batch_id, [request_ids], message)
      ("ok", request_id, output) / ("err", request_id, message)
      ("bye", worker_id)

  ``timings`` is ``{"read_ms": float, "compute_ms": [per-request floats]}``
  — durations measured on the worker's own clock, so the parent never has
  to compare timestamps across processes.  Secure workers add a
  ``"secure"`` key: one ``ProtocolTrace.totals()`` dict per request, which
  is how per-request protocol accounting reaches ``GET /stats``.

Batch execution honors the pool's bit-exactness contract: by default every
request in a frame runs as its own batch-of-1 forward (identical bits to
``Experiment.predictor(max_batch_size=1)`` no matter how requests were
coalesced); ``fused_batching`` trades that for one fused forward per frame.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: Message kinds a worker understands.
REQUEST_KINDS = ("batch", "predict", "sleep")


def execute_request(predictor, kind: str, payload: Any, timeout: float) -> Any:
    """Run one already-parsed single-request frame on this worker's predictor."""
    if kind == "predict":
        return predictor.predict(np.asarray(payload, dtype=np.float32), timeout=timeout)
    if kind == "sleep":
        time.sleep(float(payload))
        return None
    raise ValueError(f"unknown request kind '{kind}'; valid: {REQUEST_KINDS}")


def build_serving_predictor(spec_dict: Dict[str, Any], state: Dict[str, np.ndarray],
                            max_batch_size: int, max_wait: float,
                            backend: str = "numpy",
                            secure: Optional[Dict[str, Any]] = None):
    """Rebuild the model from its IPC form and wrap it for serving.

    Split out of :func:`worker_main` so tests can exercise the
    deserialize → build → load → compile path in-process.  ``backend`` is the
    compute backend each worker compiles with (a :mod:`repro.backends` name).

    When ``secure`` is given (a dict with ``protocol`` / ``frac_bits`` /
    ``truncation`` / ``strategy``, i.e. the secure fields of
    ``ServeConfig.to_dict()``), the model is converted PPML-friendly and
    wrapped in a :class:`~repro.ppml.SecurePredictor` instead — the same
    deserialize → build → load path, one code path either way, which is what
    keeps served secure answers bit-identical to the single-process
    ``Experiment.secure_predictor()``.  Empty ``protocol`` / ``strategy``
    defer to the spec's ``ppml`` section; strategy ``"none"`` serves the
    model unconverted (ReLUs cost garbled comparisons).

    Either return type satisfies the :class:`repro.inference.Predictor`
    protocol.
    """
    from ..experiment import ExperimentSpec
    from ..inference import BatchedPredictor
    from ..utils.seed import seed_everything

    spec = ExperimentSpec.from_dict(spec_dict)
    # Seeded exactly like Experiment.build(), so even a worker that receives
    # no weights reproduces the parent's freshly built model.
    seed_everything(spec.seed)
    model = spec.model.build()
    if state:
        model.load_state_dict(dict(state))
    model.eval()
    if secure is not None:
        from .. import ppml

        strategy = secure.get("strategy") or spec.ppml.strategy
        if strategy != "none":
            model, _ = ppml.to_ppml_friendly(model, strategy=strategy,
                                             inplace=False)
        return ppml.SecurePredictor(
            model,
            protocol=secure.get("protocol") or spec.ppml.protocol,
            frac_bits=int(secure.get("frac_bits", 12)),
            truncation=str(secure.get("truncation", "nearest")),
            seed=spec.seed)
    return BatchedPredictor(model, max_batch_size=max_batch_size,
                            max_wait=max_wait, backend=backend)


def run_batch(compiled, batch: np.ndarray,
              fused: bool) -> Tuple[np.ndarray, List[float], Optional[List[Dict[str, int]]]]:
    """Execute one stacked batch; returns (outputs, per-request compute ms,
    per-request secure totals — or ``None`` on the float path).

    ``fused=False`` runs each sample as its own batch-of-1 forward — the
    exact compute path of ``BatchedPredictor`` serving one sample, so the
    answer is bit-identical regardless of how the pool coalesced requests.
    ``fused=True`` runs the whole stack in one forward (maximum throughput;
    float-associativity drift between batch sizes, as documented on
    ``BatchedPredictor``).

    When ``compiled`` is a :class:`~repro.ppml.SecureCompiledModel`, each
    batch-of-1 forward leaves its measured ``ProtocolTrace`` on
    ``last_trace``; the totals are collected per request so the pool can
    account for the offline material every answer consumed.  (Secure pools
    never fuse — ``ServeConfig`` rejects the combination.)
    """
    with np.errstate(all="ignore"):          # serving tolerates non-finite
        if fused:
            clock = time.perf_counter()
            outputs = compiled(batch)
            elapsed_ms = (time.perf_counter() - clock) * 1000.0
            return outputs, [elapsed_ms / len(batch)] * len(batch), None
        rows = []
        timings = []
        secure_totals: List[Dict[str, int]] = []
        for index in range(len(batch)):
            clock = time.perf_counter()
            rows.append(compiled(batch[index:index + 1]))
            timings.append((time.perf_counter() - clock) * 1000.0)
            trace = getattr(compiled, "last_trace", None)
            if trace is not None:
                secure_totals.append(trace.totals())
        return (np.concatenate(rows, axis=0), timings,
                secure_totals if secure_totals else None)


class ResponseArena:
    """Per-worker reusable output storage — the allocation-free answer path.

    A warm float worker should not touch the heap per batch: request rows
    arrive as views on the request ring, and this arena gives the compiled
    model somewhere persistent to put the answers.  Preferred storage is a
    leased **response-ring slot** (``ShmRing.assemble``): each per-request
    forward runs with ``out=`` straight into its row of the slot, so the
    response is ready to ship the moment the last row lands — zero copies,
    zero allocations.  When the ring is full (parent stalled) the rows land
    in a pooled arena buffer instead (:class:`~repro.inference.buffers.
    BufferPool`, the PR-6 machinery — one allocation ever per output
    geometry), and the respond step retries the ring with a copy.

    The output row geometry for an input row shape is discovered on the
    first batch (one ordinary allocating forward) and cached; every later
    batch of that shape is served without asking the heap.  Secure batches
    never come here — their compiled models trace protocol rounds and do
    not take ``out=``.
    """

    __slots__ = ("ring", "pool", "_row_geometry")

    def __init__(self, ring=None) -> None:
        from ..inference.buffers import BufferPool

        self.ring = ring
        self.pool = BufferPool()
        #: input row (shape, dtype) -> output row (shape, dtype)
        self._row_geometry: Dict[tuple, Tuple[tuple, np.dtype]] = {}

    def serve(self, compiled, batch: np.ndarray, fused: bool, batch_id: int,
              request_ids, read_ms: float, response_queue) -> None:
        """Execute one float batch into arena storage and ship the answer.

        Raises like :func:`run_batch` would — the caller turns any failure
        into an ``errb`` frame; a response slot leased before the failure is
        released here first.
        """
        n = len(batch)
        key = (batch.shape[1:], str(batch.dtype))
        first = None
        first_ms = 0.0
        geometry = self._row_geometry.get(key)
        if geometry is None:
            # Cold path: one ordinary forward discovers the output row
            # geometry (and is kept — row 0 of this very batch).
            with np.errstate(all="ignore"):
                clock = time.perf_counter()
                first = compiled(batch[0:1])
                first_ms = (time.perf_counter() - clock) * 1000.0
            geometry = (tuple(first.shape[1:]), first.dtype)
            self._row_geometry[key] = geometry
        row_shape, dtype = geometry
        out_shape = (n,) + row_shape
        slot = seq = None
        view = out_frame = None
        if self.ring is not None:
            try:
                slot, seq = self.ring.lease()
                view, out_frame = self.ring.assemble(slot, seq, out_shape, dtype)
            except Exception:
                # Ring full or the batch outgrew a slot — arena buffer below.
                if slot is not None:
                    try:
                        self.ring.release(slot, seq)
                    except Exception:
                        pass
                view = out_frame = None
        if view is None:
            view = self.pool.get("response", out_shape, dtype)
        try:
            timings: List[float] = []
            with np.errstate(all="ignore"):
                if fused:
                    clock = time.perf_counter()
                    compiled(batch, out=view)
                    timings = [(time.perf_counter() - clock) * 1000.0 / n] * n
                else:
                    start = 0
                    if first is not None:
                        np.copyto(view[0:1], first, casting="same_kind")
                        timings.append(first_ms)
                        start = 1
                    for index in range(start, n):
                        clock = time.perf_counter()
                        compiled(batch[index:index + 1],
                                 out=view[index:index + 1])
                        timings.append((time.perf_counter() - clock) * 1000.0)
        except BaseException:
            if out_frame is not None:
                try:
                    self.ring.release(slot, seq)
                except Exception:
                    pass
            raise
        payload_timings = {"read_ms": read_ms, "compute_ms": timings}
        if out_frame is not None:
            response_queue.put(("okb", batch_id, request_ids,
                                ("shm", out_frame), payload_timings))
            return
        # Arena-buffer fallback: retry the ring at respond time (write()
        # copies the rows in — still allocation-free), and if even that
        # fails the inline path must *copy*: the queue's feeder thread
        # pickles asynchronously, and the pooled buffer will be overwritten
        # by the next batch.
        _respond_batch(response_queue, self.ring, batch_id, request_ids,
                       view, payload_timings, copy_inline=True)


def _batch_tensor(payload, request_ring) -> Tuple[np.ndarray, Optional[Any]]:
    """Materialize a batch payload; returns (array, frame-to-release)."""
    via, data = payload
    if via == "shm":
        if request_ring is None:
            raise RuntimeError("received a shm frame but this worker has no rings")
        return request_ring.read(data), data
    return np.asarray(data, dtype=np.float32), None


def _respond_batch(response_queue, response_ring, batch_id, request_ids,
                   outputs: np.ndarray, timings: Dict[str, Any],
                   copy_inline: bool = False) -> None:
    """Ship a batch result back, through the response ring when it fits.

    ``copy_inline=True`` marks ``outputs`` as living in reused storage (a
    pooled arena buffer): the inline fallback then snapshots it first,
    because ``Queue.put`` pickles on a feeder thread *after* this returns —
    by which time the next batch may have overwritten the buffer.
    """
    if response_ring is not None:
        try:
            slot, seq = response_ring.lease()
            frame = response_ring.write(slot, seq, outputs)
            response_queue.put(("okb", batch_id, request_ids,
                                ("shm", frame), timings))
            return
        except Exception:
            # Ring full (parent stalled) or tensor outgrew the slot — the
            # inline path is always available, just not zero-copy.
            pass
    if copy_inline:
        outputs = np.array(outputs)
    response_queue.put(("okb", batch_id, request_ids, ("inline", outputs), timings))


def _resolve_compiled(predictor, meta: Optional[Dict[str, Any]]):
    """The compiled model a batch frame should execute on.

    ``meta`` is ``None`` for float pools and for secure requests in the
    pool's default configuration; a per-request override dict selects (and
    lazily compiles) the matching :meth:`SecurePredictor.variant`.
    """
    if not meta:
        return predictor.compiled
    return predictor.variant(protocol=meta.get("protocol"),
                             frac_bits=meta.get("frac_bits"),
                             truncation=meta.get("truncation"))


def _serve_batch(predictor, message, request_ring, response_ring,
                 response_queue, fused: bool,
                 arena: Optional[ResponseArena] = None) -> None:
    """Answer one ("batch", ...) frame, isolating failures to its requests.

    Float batches take the arena's allocation-free path when one is given;
    secure batches (their compiled models trace protocol rounds and take no
    ``out=``) keep the classic allocate-and-copy :func:`run_batch` path.
    """
    _, batch_id, request_ids, payload = message[:4]
    meta = message[4] if len(message) > 4 else None
    frame = None
    try:
        clock = time.perf_counter()
        compiled = _resolve_compiled(predictor, meta)
        batch, frame = _batch_tensor(payload, request_ring)
        read_ms = (time.perf_counter() - clock) * 1000.0
        if arena is not None and not hasattr(compiled, "last_trace"):
            arena.serve(compiled, batch, fused, batch_id, request_ids,
                        read_ms, response_queue)
            return
        outputs, compute_ms, secure_totals = run_batch(compiled, batch, fused)
    except BaseException as error:  # noqa: BLE001 — must answer the callers
        response_queue.put(("errb", batch_id, request_ids,
                            f"{type(error).__name__}: {error}"))
        return
    finally:
        if frame is not None:
            try:
                request_ring.release(frame.slot, frame.seq)
            except Exception:   # reclaimed under us — the parent gave up on us
                pass
    timings: Dict[str, Any] = {"read_ms": read_ms, "compute_ms": compute_ms}
    if secure_totals is not None:
        timings["secure"] = secure_totals
    _respond_batch(response_queue, response_ring, batch_id, request_ids,
                   outputs, timings)


def worker_main(worker_id: int, spec_dict: Dict[str, Any], state: Dict[str, np.ndarray],
                config_dict: Dict[str, Any], ring_descriptor: Optional[Dict[str, Any]],
                request_queue, response_queue) -> None:
    """Entry point executed inside each pool process.

    Top-level (not a closure) so it imports cleanly under the ``spawn`` start
    method.  ``config_dict`` is the pool's ``ServeConfig.to_dict()`` and
    ``ring_descriptor`` the worker's :meth:`WorkerRings.descriptor` (``None``
    for the pipe transport).
    """
    import signal

    # A terminal Ctrl+C delivers SIGINT to the whole foreground process
    # group.  The *parent* owns the shutdown (drain, then sentinel/terminate)
    # — a worker that died on the KeyboardInterrupt would fail every request
    # it had in flight instead of draining gracefully.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass

    request_ring = response_ring = None
    if ring_descriptor is not None:
        from .shm import WorkerRings

        request_ring, response_ring = WorkerRings.attach(ring_descriptor)

    predictor = build_serving_predictor(
        spec_dict, state,
        max_batch_size=config_dict.get("max_batch_size", 8),
        max_wait=config_dict.get("max_wait", 0.002),
        backend=config_dict.get("backend", "numpy"),
        secure=config_dict if config_dict.get("secure") else None)
    fused = bool(config_dict.get("fused_batching", False))
    request_timeout = float(config_dict.get("request_timeout", 30.0))
    arena = ResponseArena(response_ring)
    response_queue.put(("ready", worker_id, os.getpid()))
    try:
        while True:
            message = request_queue.get()
            if message is None:
                break
            if message[0] == "batch":
                _serve_batch(predictor, message, request_ring,
                             response_ring, response_queue, fused,
                             arena=arena)
                continue
            kind, request_id, payload = message
            try:
                result = execute_request(predictor, kind, payload, request_timeout)
                response_queue.put(("ok", request_id, result))
            except BaseException as error:  # noqa: BLE001
                response_queue.put(("err", request_id,
                                    f"{type(error).__name__}: {error}"))
    finally:
        predictor.close()      # every Predictor implementation exposes close()
        response_queue.put(("bye", worker_id))
        for ring in (request_ring, response_ring):
            if ring is not None:
                try:
                    ring.close()
                except Exception:
                    pass
