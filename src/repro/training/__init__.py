"""``repro.training`` — classification / GAN / detection training loops."""

from .classification import TrainingHistory, evaluate_classifier, train_classifier
from .detection import DetectionTrainingHistory, evaluate_detector, train_detector
from .gan import GANTrainingHistory, generate_images, train_sngan
from .pretrain import BackbonePretrainNet, load_pretrained_backbone, pretrain_backbone

__all__ = [
    "TrainingHistory",
    "train_classifier",
    "evaluate_classifier",
    "GANTrainingHistory",
    "train_sngan",
    "generate_images",
    "DetectionTrainingHistory",
    "train_detector",
    "evaluate_detector",
    "BackbonePretrainNet",
    "pretrain_backbone",
    "load_pretrained_backbone",
]
