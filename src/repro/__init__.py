"""QuadraLib reproduction — a quadratic neural network library.

The package reproduces *QuadraLib: A Performant Quadratic Neural Network
Library for Architecture Optimization and Design Exploration* (MLSys 2022)
on top of a from-scratch NumPy autodiff substrate.

Subpackages
-----------
``experiment`` the unified experiment API: registries, declarative specs and
               the ``Experiment`` facade (core entry point)
``autodiff``   reverse-mode autodiff engine (Tensor, Function, checkpointing)
``nn``         Module/Parameter layer library, losses, initialisation
``optim``      SGD/Adam optimizers and learning-rate schedulers
``data``       datasets, loaders and the synthetic workload generators
``quadratic``  quadratic neuron types, layers, hybrid back-propagation (core)
``builder``    configuration-driven construction and the QDNN auto-builder (core)
``explore``    architecture search / design exploration over QDNN structures
``inference``  compiled no-grad forward paths, fused quadratic kernels and
               the micro-batching ``BatchedPredictor`` serving entry point
``serve``      scale-out serving: multi-process worker pool, HTTP front door,
               response cache, backpressure (``repro serve``)
``engine``     the unified callback-driven training engine: one ``Trainer``
               under every task loop, checkpoint/resume, task adapters
``models``     VGG / ResNet / MobileNet / SNGAN / SSD model zoo
``profiler``   training-memory, latency and FLOPs profilers
``ppml``       privacy-preserving inference cost models and ReLU→quadratic conversion
``analysis``   activation attention and gradient/weight distribution tools
``training``   classification / GAN / detection trainers
``metrics``    accuracy, VOC mAP, IS/FID (proxy feature network)
``utils``      seeding, logging/tables, checkpoint serialisation

Quickstart
----------
Everything in the library is driven by one declarative spec and one facade:

>>> from repro.experiment import Experiment, ExperimentSpec, ModelSpec, TrainSpec
>>> spec = ExperimentSpec(
...     model=ModelSpec(name="vgg8", neuron_type="OURS", width_multiplier=0.25),
...     train=TrainSpec(epochs=1, max_batches_per_epoch=2),
... )
>>> exp = Experiment(spec)
>>> model = exp.build()        # registry model + auto-builder switches
>>> history = exp.fit()        # the paper's SGD + cosine recipe
>>> costs = exp.profile()      # parameters / MACs / training memory
>>> _, ppml = exp.to_ppml()    # ReLU→quadratic PPML conversion + online cost

Specs round-trip through JSON, so the same run works from the shell::

    python -m repro run spec.json --out results.json
    python -m repro list models        # what a spec may reference
    python -m repro run smoke          # bundled end-to-end preset

Quadratic layers remain ordinary modules for ad-hoc composition:

>>> from repro import nn
>>> from repro import quadratic as qua
>>> block = nn.Sequential(
...     qua.typenew(3, 16, kernel_size=3, padding=1),   # the paper's neuron
...     nn.BatchNorm2d(16),
...     nn.ReLU(),
... )
"""

__version__ = "0.3.0"

from . import (
    analysis,
    autodiff,
    builder,
    data,
    engine,
    experiment,
    explore,
    inference,
    metrics,
    models,
    nn,
    optim,
    ppml,
    profiler,
    quadratic,
    serve,
    training,
    utils,
)

__all__ = [
    "autodiff",
    "nn",
    "optim",
    "data",
    "quadratic",
    "builder",
    "engine",
    "experiment",
    "explore",
    "inference",
    "serve",
    "models",
    "ppml",
    "profiler",
    "analysis",
    "training",
    "metrics",
    "utils",
    "__version__",
]
