"""Functional forms of the quadratic neuron computations.

Every quadratic neuron in the library is evaluated in two stages, and this
module is the single place where that split is defined:

* **Projection** — first-order responses of the input, computed with the
  standard linear/conv primitives a layer owns: ``Wa X``, ``Wb X``, ``Wc X``,
  the squared-input projection ``W X²``, the raw identity path ``X`` and (for
  the T1 family only) the full-rank bilinear term ``Xᵀ W X``.  Projections
  live in the layer classes (:mod:`repro.quadratic.layers`), because they
  depend on the layer kind (dense vs convolutional).
* **Combination** — the cheap element-wise step that assembles those
  responses into the neuron output: Hadamard products and sums.  Combinations
  live here, as one ``combine_*`` function per neuron type, because they are
  identical for dense and convolutional layers.

Keeping the combination separate from the projection is what makes the
paper's implementation-feasibility point concrete (P4): every quadratic
design except T1 can be assembled from first-order layers plus element-wise
operations that any DNN library already provides.

Two parallel families are exposed:

* ``combine_*`` / ``COMBINERS`` operate on autodiff :class:`Tensor` values and
  participate in the gradient graph — the training path.
* ``fused_combine_*`` / ``FUSED_COMBINERS`` operate on raw NumPy arrays and
  fuse the Hadamard-product-plus-sum into ``multiply``/``add`` calls with
  ``out=`` buffers — the inference path used by :mod:`repro.inference`,
  where no graph is recorded and intermediate allocations can be recycled
  across calls.  The element-wise primitives are resolved through the
  ``ops`` argument (default: NumPy itself) so a compute backend
  (:mod:`repro.backends`) can redirect them by passing itself — the fused
  kernels dispatch through the backend rather than hard-wiring NumPy.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..autodiff.tensor import Tensor


def combine_t2(square_response: Tensor) -> Tensor:
    """T2 (Goyal et al.): ``Wa X²`` — the projection of the squared input,
    already projected, so the combination is the identity."""
    return square_response


def combine_t3(response_a: Tensor) -> Tensor:
    """T3 (Bu & Karpatne): ``(Wa X)²`` — square of a first-order response."""
    return response_a * response_a


def combine_t4(response_a: Tensor, response_b: Tensor) -> Tensor:
    """T4 (Bu & Karpatne): ``(Wa X) ∘ (Wb X)`` — Hadamard product of two
    first-order responses."""
    return response_a * response_b


def combine_t4_identity(response_a: Tensor, response_b: Tensor, identity: Tensor) -> Tensor:
    """T4 + identity mapping: ``(Wa X) ∘ (Wb X) + X`` (Table 2 baseline)."""
    return response_a * response_b + identity


def combine_t2_4(response_a: Tensor, response_b: Tensor, square_response: Tensor) -> Tensor:
    """T2&4 (Fan et al., 2018): ``(Wa X) ∘ (Wb X) + Wc X²``."""
    return response_a * response_b + square_response


def combine_ours(response_a: Tensor, response_b: Tensor, linear_response: Tensor) -> Tensor:
    """The paper's neuron (Eq. 2): ``(Wa X) ∘ (Wb X) + Wc X``.

    The linear term both adds approximation capability (extra polynomial
    orders, Sec. 3.2 Eq. 3) and acts as an identity-style path that keeps
    gradients alive in deep plain networks (Sec. 3.2 Eq. 4).
    """
    return response_a * response_b + linear_response


def combine_t1(bilinear_response: Tensor, linear_response: Optional[Tensor] = None) -> Tensor:
    """T1 (Cheung & Leung): ``Xᵀ Wa X + Wb X`` — the full-rank bilinear term
    plus an optional linear term (omit it for the pure ``Xᵀ Wa X`` variant)."""
    if linear_response is None:
        return bilinear_response
    return bilinear_response + linear_response


def combine_t1_2(bilinear_response: Tensor, square_response: Tensor) -> Tensor:
    """T1&2 (Milenkovic et al., 1996): ``Xᵀ Wa X + Wb X²``."""
    return bilinear_response + square_response


#: Which first-order responses each neuron type needs.  Keys are canonical
#: type names; values are the projection kinds, in the order the ``combine_*``
#: function expects them.  ``"a"``/``"b"``/``"c"`` are plain projections of X,
#: ``"sq"`` is a projection of X², ``"bilinear"`` is the full-rank Xᵀ W X term
#: and ``"id"`` is the un-projected input.
REQUIRED_RESPONSES: Dict[str, tuple] = {
    "T1": ("bilinear", "b"),
    "T1_PURE": ("bilinear",),
    "T2": ("sq",),
    "T3": ("a",),
    "T4": ("a", "b"),
    "T4_ID": ("a", "b", "id"),
    "T1_2": ("bilinear", "sq"),
    "T2_4": ("a", "b", "sq"),
    "OURS": ("a", "b", "c"),
}

#: Combination function per canonical type name (autodiff / training path).
COMBINERS: Dict[str, Callable[..., Tensor]] = {
    "T1": combine_t1,
    "T1_PURE": combine_t1,
    "T2": combine_t2,
    "T3": combine_t3,
    "T4": combine_t4,
    "T4_ID": combine_t4_identity,
    "T1_2": combine_t1_2,
    "T2_4": combine_t2_4,
    "OURS": combine_ours,
}


# --------------------------------------------------------------------------- #
# Fused raw-ndarray combiners (inference path)
# --------------------------------------------------------------------------- #
#
# Each fused combiner computes exactly the same arithmetic as its Tensor
# counterpart above — same operations, same order, so compiled inference
# outputs are bit-identical to the eager forward — but writes through an
# ``out=`` buffer so the quadratic combination performs no allocation at all
# when the caller recycles buffers across calls (repro.inference.BufferPool).
# ``ops`` supplies the element-wise primitives (``multiply``/``add``/
# ``copyto`` with NumPy ufunc signatures); compute backends pass themselves.

def fused_combine_t2(sq: np.ndarray, out: Optional[np.ndarray] = None,
                     ops=np) -> np.ndarray:
    """T2: the combination is the identity; copy only when a buffer is given."""
    if out is None:
        return sq
    ops.copyto(out, sq)
    return out


def fused_combine_t3(a: np.ndarray, out: Optional[np.ndarray] = None,
                     ops=np) -> np.ndarray:
    """T3: ``a²`` in one ``multiply`` pass."""
    return ops.multiply(a, a, out=out)


def fused_combine_t4(a: np.ndarray, b: np.ndarray,
                     out: Optional[np.ndarray] = None, ops=np) -> np.ndarray:
    """T4: ``a ∘ b`` in one ``multiply`` pass."""
    return ops.multiply(a, b, out=out)


def fused_combine_t4_identity(a: np.ndarray, b: np.ndarray, identity: np.ndarray,
                              out: Optional[np.ndarray] = None, ops=np) -> np.ndarray:
    """T4_ID: ``a ∘ b + X`` — one multiply, one add, zero temporaries."""
    out = ops.multiply(a, b, out=out)
    return ops.add(out, identity, out=out)


def fused_combine_t2_4(a: np.ndarray, b: np.ndarray, sq: np.ndarray,
                       out: Optional[np.ndarray] = None, ops=np) -> np.ndarray:
    """T2&4: ``a ∘ b + Wc X²`` — one multiply, one add."""
    out = ops.multiply(a, b, out=out)
    return ops.add(out, sq, out=out)


def fused_combine_ours(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                       out: Optional[np.ndarray] = None, ops=np) -> np.ndarray:
    """The paper's neuron: ``a ∘ b + c`` — one multiply, one add."""
    out = ops.multiply(a, b, out=out)
    return ops.add(out, c, out=out)


def fused_combine_t1(bilinear: np.ndarray, linear: Optional[np.ndarray] = None,
                     out: Optional[np.ndarray] = None, ops=np) -> np.ndarray:
    """T1: bilinear term plus optional linear term."""
    if linear is None:
        if out is None:
            return bilinear
        ops.copyto(out, bilinear)
        return out
    return ops.add(bilinear, linear, out=out)


def fused_combine_t1_2(bilinear: np.ndarray, sq: np.ndarray,
                       out: Optional[np.ndarray] = None, ops=np) -> np.ndarray:
    """T1&2: ``Xᵀ Wa X + Wb X²`` — a single add."""
    return ops.add(bilinear, sq, out=out)


#: Fused combination function per canonical type name (inference path).
#: Signatures mirror ``COMBINERS`` with trailing optional ``out=`` buffer and
#: ``ops=`` element-wise provider (NumPy or a :class:`repro.backends.Backend`).
FUSED_COMBINERS: Dict[str, Callable[..., np.ndarray]] = {
    "T1": fused_combine_t1,
    "T1_PURE": fused_combine_t1,
    "T2": fused_combine_t2,
    "T3": fused_combine_t3,
    "T4": fused_combine_t4,
    "T4_ID": fused_combine_t4_identity,
    "T1_2": fused_combine_t1_2,
    "T2_4": fused_combine_t2_4,
    "OURS": fused_combine_ours,
}
