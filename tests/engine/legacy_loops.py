"""Frozen copies of the pre-engine training loops (parity oracles).

These are the four loop bodies exactly as they existed before the
``repro.engine`` refactor (commit 3809355), kept verbatim so the parity tests
can assert that the engine reproduces the old behaviour *bit for bit*:
identical histories (timing columns excluded — wall-clock is never
reproducible) and identical final weights.

Do not "improve" this file; its only value is staying frozen.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.data.synthetic.detection import detection_collate
from repro.metrics.classification import accuracy
from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import CosineAnnealingLR, LRScheduler, MultiStepLR
from repro.optim.sgd import SGD
from repro.quadratic.gradients import GradientFlowProbe
from repro.training.classification import TrainingHistory, evaluate_classifier
from repro.training.detection import DetectionTrainingHistory
from repro.training.gan import GANTrainingHistory


def legacy_train_classifier(model: Module, train_dataset: Dataset,
                            test_dataset: Optional[Dataset] = None,
                            epochs: int = 5, batch_size: int = 64, lr: float = 0.1,
                            momentum: float = 0.9, weight_decay: float = 5e-4,
                            scheduler: str = "cosine", label_smoothing: float = 0.0,
                            grad_probe_layers: Optional[Sequence[str]] = None,
                            max_batches_per_epoch: Optional[int] = None,
                            seed: int = 0,
                            optimizer_factory: Optional[Callable] = None) -> TrainingHistory:
    loader = DataLoader(train_dataset, batch_size=batch_size, shuffle=True, drop_last=True,
                        seed=seed)
    test_loader = (DataLoader(test_dataset, batch_size=batch_size) if test_dataset is not None
                   else None)
    if optimizer_factory is not None:
        optimizer = optimizer_factory(model.parameters())
    else:
        optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                        weight_decay=weight_decay)
    lr_scheduler: Optional[LRScheduler] = None
    if scheduler == "cosine":
        lr_scheduler = CosineAnnealingLR(optimizer, t_max=max(epochs, 1))
    loss_fn = CrossEntropyLoss(label_smoothing=label_smoothing)
    probe = GradientFlowProbe(model, layer_filter=grad_probe_layers) if grad_probe_layers else None

    history = TrainingHistory()
    model.train(True)
    for _ in range(epochs):
        epoch_losses, epoch_accs, batch_times = [], [], []
        for batch_index, (images, labels) in enumerate(loader):
            if max_batches_per_epoch is not None and batch_index >= max_batches_per_epoch:
                break
            start = time.perf_counter()
            optimizer.zero_grad()
            logits = model(Tensor(np.asarray(images, dtype=np.float32)))
            loss = loss_fn(logits, labels)
            loss.backward()
            optimizer.step()
            batch_times.append(time.perf_counter() - start)

            loss_value = loss.item()
            if not np.isfinite(loss_value):
                history.train_loss.append(float("inf"))
                history.train_accuracy.append(1.0 / logits.shape[-1])
                if test_loader is not None:
                    history.test_accuracy.append(1.0 / logits.shape[-1])
                return history
            epoch_losses.append(loss_value)
            epoch_accs.append(accuracy(logits, labels))
        if probe is not None:
            probe.snapshot()

        history.train_loss.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        history.train_accuracy.append(float(np.mean(epoch_accs)) if epoch_accs else float("nan"))
        history.seconds_per_batch.append(float(np.mean(batch_times)) if batch_times else float("nan"))
        if test_loader is not None:
            history.test_accuracy.append(evaluate_classifier(model, test_loader))
            model.train(True)
        if lr_scheduler is not None:
            lr_scheduler.step()

    if probe is not None:
        history.gradient_norms = {name: list(values) for name, values in probe.history.items()}
    return history


def legacy_train_detector(model, dataset, epochs: int = 3,
                          batch_size: int = 8, lr: float = 1e-3, momentum: float = 0.9,
                          weight_decay: float = 5e-4, milestones: Sequence[int] = (),
                          max_batches_per_epoch: Optional[int] = None,
                          seed: int = 0) -> DetectionTrainingHistory:
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, drop_last=True,
                        collate_fn=detection_collate, seed=seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    scheduler = MultiStepLR(optimizer, milestones=milestones) if milestones else None
    history = DetectionTrainingHistory()

    model.train(True)
    for _ in range(epochs):
        epoch_losses = []
        for batch_index, (images, targets) in enumerate(loader):
            if max_batches_per_epoch is not None and batch_index >= max_batches_per_epoch:
                break
            optimizer.zero_grad()
            cls_logits, box_offsets = model(Tensor(np.asarray(images, dtype=np.float32)))
            loss = model.multibox_loss(cls_logits, box_offsets, targets)
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        history.loss.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        if scheduler is not None:
            scheduler.step()
    return history


def legacy_train_sngan(generator, discriminator, dataset, steps: int = 100,
                       batch_size: int = 32, lr_generator: float = 2e-4,
                       lr_discriminator: float = 2e-4, betas=(0.5, 0.9),
                       discriminator_steps: int = 1, seed: int = 0) -> GANTrainingHistory:
    rng = np.random.default_rng(seed)
    opt_g = Adam(generator.parameters(), lr=lr_generator, betas=betas)
    opt_d = Adam(discriminator.parameters(), lr=lr_discriminator, betas=betas)
    history = GANTrainingHistory()

    generator.train(True)
    discriminator.train(True)
    for _ in range(steps):
        d_loss_value = 0.0
        for _ in range(discriminator_steps):
            real = Tensor(dataset.sample(batch_size, rng=rng))
            z = Tensor(generator.sample_latent(batch_size, rng=rng))
            with no_grad():
                fake = generator(z)
            fake = Tensor(fake.data)
            opt_d.zero_grad()
            d_loss = F.hinge_loss_discriminator(discriminator(real), discriminator(fake))
            d_loss.backward()
            opt_d.step()
            d_loss_value = d_loss.item()

        z = Tensor(generator.sample_latent(batch_size, rng=rng))
        opt_g.zero_grad()
        g_loss = F.hinge_loss_generator(discriminator(generator(z)))
        g_loss.backward()
        opt_g.step()

        history.discriminator_loss.append(d_loss_value)
        history.generator_loss.append(g_loss.item())
    return history
