"""Fig. 10 — activation attention: first-order layers see edges, quadratic layers see objects.

The paper visualises first-layer activations of a first-order CNN and a QDNN
and observes that the quadratic layer's attention covers whole objects while
the first-order layer highlights edges.  The scaled reproduction trains two
small classifiers on images that contain a single bright object (from the
synthetic detection generator), computes first-layer attention maps, and
summarises them with the object-interior vs. edge-band attention statistic.
The qualitative maps are also rendered as ASCII so the benchmark output is a
self-contained figure.
"""

import numpy as np
import pytest

from common import fresh_seed, save_experiment
from repro.analysis import activation_attention, attention_statistics, capture_activation, render_ascii
from repro.builder import QuadraticModelConfig
from repro.data import TensorDataset
from repro.data.synthetic import SyntheticDetectionDataset
from repro.models import SmallConvNet
from repro.training import train_classifier
from repro.utils import print_table

IMAGE = 32
NUM_CLASSES = 3
WIDTH = 0.5


def _single_object_dataset(num_samples: int, seed: int):
    """Images with exactly one object; labels are the object class; masks mark its box."""
    base = SyntheticDetectionDataset(num_samples=num_samples, image_size=IMAGE,
                                     num_classes=NUM_CLASSES, max_objects=1, seed=seed)
    images = np.stack([base[i][0] for i in range(len(base))]).astype(np.float32)
    labels = np.array([int(base[i][1]["labels"][0]) for i in range(len(base))])
    masks = np.zeros((len(base), IMAGE, IMAGE), dtype=bool)
    for i in range(len(base)):
        x0, y0, x1, y1 = (base[i][1]["boxes"][0] * IMAGE).astype(int)
        masks[i, max(y0, 0):y1, max(x0, 0):x1] = True
    return images, labels, masks


def test_fig10_activation_attention(benchmark):
    fresh_seed(100)
    images, labels, masks = _single_object_dataset(96, seed=3)
    dataset = TensorDataset(images, labels)

    fresh_seed(101)
    first_order = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE,
                               config=QuadraticModelConfig(neuron_type="first_order",
                                                           width_multiplier=WIDTH))
    fresh_seed(102)
    quadratic = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE,
                             config=QuadraticModelConfig(neuron_type="OURS",
                                                         width_multiplier=WIDTH))
    train_classifier(first_order, dataset, epochs=2, batch_size=16, lr=0.05,
                     max_batches_per_epoch=5, seed=19)
    train_classifier(quadratic, dataset, epochs=2, batch_size=16, lr=0.05,
                     max_batches_per_epoch=5, seed=19)

    probe_images = images[:8]
    probe_masks = masks[:8]
    act_first = capture_activation(first_order, first_order.features[0], probe_images)
    act_quad = capture_activation(quadratic, quadratic.features[0], probe_images)
    attention_first = activation_attention(act_first)
    attention_quad = activation_attention(act_quad)

    ratios_first, ratios_quad = [], []
    for i in range(len(probe_images)):
        ratios_first.append(
            attention_statistics(attention_first[i], probe_masks[i]).object_to_edge_ratio)
        ratios_quad.append(
            attention_statistics(attention_quad[i], probe_masks[i]).object_to_edge_ratio)

    rows = [
        ["First-order conv layer", round(float(np.mean(ratios_first)), 3)],
        ["Quadratic conv layer", round(float(np.mean(ratios_quad)), 3)],
    ]
    print()
    print_table(["First layer", "object / edge attention ratio (mean over images)"], rows,
                title="Fig. 10 (reproduced, scaled): activation attention statistics")
    print("\nExample attention maps (image 0):")
    print("First-order layer:")
    print(render_ascii(attention_first[0], width=32))
    print("Quadratic layer:")
    print(render_ascii(attention_quad[0], width=32))

    save_experiment("fig10_activation_attention", {
        "first_order_object_edge_ratio": float(np.mean(ratios_first)),
        "quadratic_object_edge_ratio": float(np.mean(ratios_quad)),
        "per_image_first": [float(r) for r in ratios_first],
        "per_image_quadratic": [float(r) for r in ratios_quad],
    })

    # Both statistics are finite and positive; the paper's qualitative claim is
    # that the quadratic ratio is the larger one — reported, and softly checked
    # (the quadratic layer should at least not be *less* object-focused by a
    # large margin at this scale).
    assert np.isfinite(ratios_first).all() and np.isfinite(ratios_quad).all()
    assert float(np.mean(ratios_quad)) > 0.5 * float(np.mean(ratios_first))

    # Timed kernel: computing one attention map.
    benchmark(lambda: activation_attention(act_quad))
