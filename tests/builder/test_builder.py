"""Tests of configs, construction functions, the RI indicator and the auto-builder."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import randn
from repro.builder import (
    MOBILENET_CFGS,
    RESNET_BLOCKS,
    VGG_CFGS,
    AutoBuilder,
    QuadraticModelConfig,
    build_classifier_head,
    build_mlp,
    build_plain_convnet,
    compute_layer_indicators,
    conv_block,
    conv_layer_count,
    make_conv,
    measure_accuracy_drop,
    quadratize_module,
    reduce_mobilenet_cfg,
    reduce_resnet_blocks,
    reduce_vgg_cfg,
    removal_order,
    scale_vgg_cfg,
)
from repro.models import SmallConvNet
from repro.quadratic import HybridQuadraticConv2d, QuadraticConv2d, QuadraticLinear


class TestConfig:
    def test_paper_configurations_present(self):
        assert conv_layer_count(VGG_CFGS["VGG16"]) == 13
        assert conv_layer_count(VGG_CFGS["VGG16_QUADRA"]) == 7
        assert conv_layer_count(VGG_CFGS["VGG8"]) == 5
        assert RESNET_BLOCKS["RESNET32"] == [5, 5, 5]
        assert RESNET_BLOCKS["RESNET32_QUADRA"] == [2, 2, 2]
        assert len(MOBILENET_CFGS["MOBILENET13"]) == 13
        assert len(MOBILENET_CFGS["MOBILENET8"]) == 8

    def test_scale_vgg_cfg(self):
        scaled = scale_vgg_cfg([64, "M", 128], 0.5)
        assert scaled == [32, "M", 64]

    def test_scale_has_minimum_width(self):
        assert scale_vgg_cfg([16], 0.1) == [8]

    def test_config_scaled_and_flags(self):
        config = QuadraticModelConfig(neuron_type="OURS", width_multiplier=0.5)
        assert config.scaled(64) == 32
        assert not config.is_first_order
        assert QuadraticModelConfig(neuron_type="first_order").is_first_order

    def test_config_with_changes(self):
        config = QuadraticModelConfig(neuron_type="OURS")
        changed = config.with_(use_activation=False)
        assert changed.use_activation is False
        assert config.use_activation is True  # original untouched


class TestConstructors:
    def test_make_conv_first_order_vs_quadratic(self):
        first = make_conv(QuadraticModelConfig(neuron_type="first_order"), 3, 8)
        quad = make_conv(QuadraticModelConfig(neuron_type="OURS"), 3, 8)
        hybrid = make_conv(QuadraticModelConfig(neuron_type="OURS", hybrid_bp=True), 3, 8)
        assert isinstance(first, nn.Conv2d)
        assert isinstance(quad, QuadraticConv2d)
        assert isinstance(hybrid, HybridQuadraticConv2d)

    def test_conv_block_respects_design_insights(self):
        config = QuadraticModelConfig(neuron_type="OURS", use_batchnorm=True, use_activation=True)
        block = conv_block(config, 3, 8)
        types = [type(m).__name__ for m in block]
        assert types == ["QuadraticConv2d", "BatchNorm2d", "ReLU"]

    def test_conv_block_without_bn_or_relu(self):
        config = QuadraticModelConfig(neuron_type="OURS", use_batchnorm=False,
                                      use_activation=False)
        block = conv_block(config, 3, 8)
        assert len(block) == 1

    def test_build_plain_convnet_structure(self):
        config = QuadraticModelConfig(neuron_type="first_order")
        features, out_channels = build_plain_convnet([16, "M", 32, "M"], config)
        assert out_channels == 32
        assert features(randn(1, 3, 16, 16)).shape == (1, 32, 4, 4)

    def test_build_plain_convnet_quadratic(self):
        config = QuadraticModelConfig(neuron_type="T4")
        features, _ = build_plain_convnet([8, "M"], config)
        assert any(isinstance(m, QuadraticConv2d) for m in features.modules())

    def test_classifier_head(self):
        head = build_classifier_head(32, 10)
        assert head(randn(2, 32, 4, 4)).shape == (2, 10)

    def test_classifier_head_with_hidden(self):
        head = build_classifier_head(32, 10, hidden=64, dropout=0.1)
        assert head(randn(2, 32, 4, 4)).shape == (2, 10)

    def test_build_mlp_quadratic_hidden(self):
        config = QuadraticModelConfig(neuron_type="OURS")
        mlp = build_mlp([4, 16, 2], config)
        assert isinstance(mlp[0], QuadraticLinear)
        assert isinstance(mlp[-1], nn.Linear)  # output head stays first-order
        assert mlp(randn(3, 4)).shape == (3, 2)


class TestLayerReplacement:
    def test_quadratize_replaces_convs(self):
        model = SmallConvNet(num_classes=4)
        converted = quadratize_module(model, neuron_type="OURS")
        assert converted == 3
        quad_layers = [m for m in model.modules() if isinstance(m, QuadraticConv2d)]
        assert len(quad_layers) == 3
        assert model(randn(2, 3, 32, 32)).shape == (2, 4)

    def test_quadratize_increases_parameters_3x_for_convs(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1, bias=False))
        before = model.num_parameters()
        quadratize_module(model, neuron_type="OURS")
        assert model.num_parameters() == 3 * before

    def test_quadratize_skips_depthwise(self):
        model = nn.Sequential(nn.Conv2d(8, 8, 3, groups=8, padding=1), nn.Conv2d(8, 16, 1))
        converted = quadratize_module(model, neuron_type="OURS", skip_depthwise=True)
        assert converted == 1
        assert isinstance(model[0], nn.Conv2d)

    def test_quadratize_linear_opt_in(self):
        model = nn.Sequential(nn.Linear(8, 4))
        assert quadratize_module(model, neuron_type="OURS", convert_linear=False) == 0
        assert quadratize_module(model, neuron_type="OURS", convert_linear=True) == 1
        assert isinstance(model[0], QuadraticLinear)

    def test_quadratize_skip_names(self):
        model = SmallConvNet(num_classes=4)
        converted = quadratize_module(model, skip_names=["features"])
        assert converted == 0

    def test_quadratize_hybrid(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3))
        quadratize_module(model, neuron_type="OURS", hybrid_bp=True)
        assert isinstance(model[0], HybridQuadraticConv2d)

    def test_autobuilder_convert_report(self):
        model = SmallConvNet(num_classes=4)
        before = model.num_parameters()
        report = AutoBuilder(neuron_type="OURS").convert(model)
        assert report.converted_layers == 3
        assert report.parameters_before == before
        assert report.parameters_after > before
        assert report.parameter_ratio > 1.0


class TestStructureReduction:
    def test_reduce_vgg_matches_paper_target(self):
        reduced = reduce_vgg_cfg(VGG_CFGS["VGG16"], target_conv_layers=7)
        assert conv_layer_count(reduced) == 7
        # Pooling structure (5 stages) must be preserved.
        assert reduced.count("M") == VGG_CFGS["VGG16"].count("M")

    def test_reduce_vgg_keeps_at_least_one_conv_per_stage(self):
        reduced = reduce_vgg_cfg(VGG_CFGS["VGG16"], target_conv_layers=1)
        assert conv_layer_count(reduced) == 5  # one per stage is the floor

    def test_reduce_resnet_blocks(self):
        assert reduce_resnet_blocks([5, 5, 5], 2) == [2, 2, 2]
        assert reduce_resnet_blocks([1, 2, 3], 2) == [1, 2, 2]

    def test_reduce_mobilenet_keeps_stride2_blocks(self):
        reduced = reduce_mobilenet_cfg(MOBILENET_CFGS["MOBILENET13"], target_blocks=8)
        assert len(reduced) == 8
        stride2_original = [c for c in MOBILENET_CFGS["MOBILENET13"] if c[1] == 2]
        assert all(c in reduced for c in stride2_original)

    def test_reduce_mobilenet_noop_when_target_larger(self):
        cfg = MOBILENET_CFGS["MOBILENET8"]
        assert reduce_mobilenet_cfg(cfg, 20) == list(cfg)


class TestRIIndicator:
    def test_indicator_cost_only_ranking(self):
        model = SmallConvNet(num_classes=4, config=QuadraticModelConfig(neuron_type="first_order"))
        indicators = compute_layer_indicators(model, (3, 32, 32))
        assert len(indicators) > 0
        # Sorted descending by RI.
        ris = [item.ri for item in indicators]
        assert ris == sorted(ris, reverse=True)
        # Ratios are valid fractions.
        for item in indicators:
            assert 0 <= item.param_ratio <= 1
            assert 0 <= item.compute_ratio <= 1

    def test_indicator_with_eval_fn(self):
        model = nn.Sequential(nn.Linear(8, 8), nn.ReLU(), nn.Linear(8, 8), nn.ReLU(),
                              nn.Linear(8, 2))
        x = randn(16, 8)

        def eval_fn(m):
            # Pseudo-accuracy: negative loss magnitude on a fixed batch.
            out = m(x)
            return float(-np.abs(out.data).mean())

        indicators = compute_layer_indicators(model, (8,), eval_fn=eval_fn,
                                              candidate_layers=["0", "2"])
        assert {item.name for item in indicators} <= {"0", "2"}
        assert all(np.isfinite(item.ri) for item in indicators)

    def test_measure_accuracy_drop_restores_layer(self):
        model = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.Linear(4, 2))
        original = model[0]
        measure_accuracy_drop(model, "0", lambda m: 1.0)
        assert model[0] is original

    def test_measure_accuracy_drop_shape_breaking_layer(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        x = randn(4, 4)

        def eval_fn(m):
            return float(m(x).data.mean())

        drop = measure_accuracy_drop(model, "0", eval_fn)
        assert drop == float("inf")

    def test_removal_order_skips_zero_ri(self):
        from repro.builder.indicator import LayerIndicator

        order = removal_order([
            LayerIndicator("a", 0.5, 0.5, 0.001, 10.0),
            LayerIndicator("b", 0.5, 0.5, float("inf"), 0.0),
        ])
        assert order == ["a"]

    def test_autobuilder_reduce_structure(self):
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1), nn.ReLU(),
            nn.Conv2d(8, 8, 3, padding=1), nn.ReLU(),
            nn.Conv2d(8, 8, 3, padding=1), nn.ReLU(),
            nn.GlobalAvgPool2d(), nn.Linear(8, 2),
        )
        builder = AutoBuilder(neuron_type="OURS")
        builder.convert(model)
        report = builder.reduce_structure(model, (3, 16, 16), max_removals=1)
        assert len(report.removed_layers) <= 1
        # Model must still run after reduction.
        assert model(randn(2, 3, 16, 16)).shape == (2, 2)
        if report.removed_layers:
            assert report.parameters_after < report.parameters_before
