"""The training-checkpoint container: nested payloads, atomicity, RNG state."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.utils import (
    load_training_checkpoint,
    rng_state,
    save_training_checkpoint,
    set_rng_state,
)


def _payload():
    return {
        "format": 1,
        "task": "classification",
        "epoch": 3,
        "spec": {"name": "demo", "steps": ["build", "fit"], "seed": 0},
        "adapter": {
            "model": {"conv.weight": np.arange(12, dtype=np.float32).reshape(3, 4),
                      "bn.num_batches_tracked": np.array([7], dtype=np.int64)},
            "optimizer": {"state": {"0": {"step": 5,
                                          "exp_avg": np.ones(4, dtype=np.float32)}}},
            "scheduler": None,
            "history": {"train_loss": [1.0, 0.5, 0.25]},
        },
    }


class TestRoundTrip:
    def test_nested_payload_round_trips(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_training_checkpoint(path, _payload())
        loaded = load_training_checkpoint(path)
        original = _payload()
        assert loaded["format"] == 1
        assert loaded["task"] == "classification"
        assert loaded["epoch"] == 3
        assert loaded["spec"] == original["spec"]
        model = loaded["adapter"]["model"]
        assert np.array_equal(model["conv.weight"], original["adapter"]["model"]["conv.weight"])
        assert model["conv.weight"].dtype == np.float32
        assert model["bn.num_batches_tracked"].dtype == np.int64
        opt_state = loaded["adapter"]["optimizer"]["state"]["0"]
        assert opt_state["step"] == 5
        assert np.array_equal(opt_state["exp_avg"], np.ones(4, dtype=np.float32))
        assert loaded["adapter"]["scheduler"] is None
        assert loaded["adapter"]["history"]["train_loss"] == [1.0, 0.5, 0.25]

    def test_rng_state_round_trips(self, tmp_path):
        rng = np.random.default_rng(42)
        rng.standard_normal(100)  # advance the stream
        path = str(tmp_path / "rng.npz")
        save_training_checkpoint(path, {"rng": rng_state(rng)})
        expected = rng.standard_normal(8)

        fresh = np.random.default_rng(0)
        set_rng_state(fresh, load_training_checkpoint(path)["rng"])
        assert np.array_equal(fresh.standard_normal(8), expected)

    def test_unserialisable_values_are_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="object"):
            save_training_checkpoint(str(tmp_path / "bad.npz"), {"oops": object()})


class TestAtomicity:
    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_training_checkpoint(path, _payload())
        assert os.listdir(tmp_path) == ["ckpt.npz"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_training_checkpoint(path, _payload())
        second = _payload()
        second["epoch"] = 9
        save_training_checkpoint(path, second)
        assert load_training_checkpoint(path)["epoch"] == 9
        assert os.listdir(tmp_path) == ["ckpt.npz"]

    def test_failed_save_keeps_the_previous_checkpoint(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_training_checkpoint(path, _payload())
        with pytest.raises(TypeError):
            save_training_checkpoint(path, {"oops": object()})
        assert load_training_checkpoint(path)["epoch"] == 3
        assert os.listdir(tmp_path) == ["ckpt.npz"]

    def test_model_only_npz_is_rejected_with_guidance(self, tmp_path):
        path = str(tmp_path / "weights.npz")
        np.savez(path, weight=np.zeros(3))
        with pytest.raises(ValueError, match="load_checkpoint"):
            load_training_checkpoint(path)
