"""``repro.backends`` — pluggable compute backends for compiled inference.

One :class:`Backend` object supplies every numerical primitive the compiled
inference path executes (GEMM, ``im2col``, grouped conv projections, the
fused quadratic combination, pooling, element-wise glue and scratch-buffer
allocation).  The compiler's rules dispatch through it instead of calling
NumPy directly, so execution engines are swappable per compile:

>>> from repro.inference import compile_model
>>> compiled = compile_model(model, backend="threaded")   # all cores, exact
>>> quantized = compile_model(model, backend="int8")      # fast, approximate

Registered engines live in :data:`BACKENDS`; ``repro list backends`` prints
the table.  New engines subclass :class:`Backend`, override the primitives
they accelerate and self-register:

>>> from repro.backends import Backend, register_backend
>>> @register_backend
... class MyBackend(Backend):
...     '''My accelerated engine.'''
...     name = "mybackend"
"""

from .base import (
    BACKENDS,
    Backend,
    backend_description,
    backend_names,
    get_backend,
    register_backend,
)
from .rates import KernelRates, measure_backend_rates
# Imported in registration order: the reference engine lists first wherever
# the registry is printed (CLI tables, help text, error messages).
from .numpy_backend import NumpyBackend
from .threaded import ThreadedBackend
from .int8 import INT8_MAX, Int8Backend

__all__ = [
    "BACKENDS",
    "Backend",
    "NumpyBackend",
    "ThreadedBackend",
    "Int8Backend",
    "INT8_MAX",
    "KernelRates",
    "measure_backend_rates",
    "backend_description",
    "backend_names",
    "get_backend",
    "register_backend",
]
