"""Latency-budget admission control: the EWMA gate and its HTTP face (429)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    ServeConfig,
    ServingApp,
    ServingServer,
)


class TestAdmissionController:
    def test_budget_zero_disables_the_gate(self):
        controller = AdmissionController(0.0)
        assert controller.enabled is False
        controller.observe(10_000.0)
        decision = controller.decide(queued=10_000, workers=1)
        assert decision.admitted is True

    def test_admits_unconditionally_before_any_observation(self):
        controller = AdmissionController(1.0)
        assert controller.decide(queued=10_000, workers=1).admitted is True

    def test_ewma_converges_on_the_service_time(self):
        controller = AdmissionController(50.0, alpha=0.2)
        controller.observe(100.0)
        assert controller.service_ms == 100.0            # first sample seeds
        controller.observe(50.0)
        assert controller.service_ms == pytest.approx(90.0)  # 100 + .2*(50-100)
        for _ in range(100):
            controller.observe(50.0)
        assert controller.service_ms == pytest.approx(50.0, rel=0.01)

    def test_non_finite_and_negative_observations_are_ignored(self):
        controller = AdmissionController(50.0)
        controller.observe(float("nan"))
        controller.observe(float("inf"))
        controller.observe(-1.0)
        assert controller.service_ms is None
        assert controller.observations == 0

    def test_littles_law_wait_estimate(self):
        controller = AdmissionController(50.0)
        controller.observe(10.0)
        assert controller.estimated_wait_ms(queued=8, workers=2) == pytest.approx(40.0)
        assert controller.estimated_wait_ms(queued=0, workers=2) == 0.0

    def test_rejects_once_the_estimate_exceeds_the_budget(self):
        controller = AdmissionController(budget_ms=20.0)
        controller.observe(10.0)
        assert controller.decide(queued=2, workers=1).admitted is True   # 20 <= 20
        decision = controller.decide(queued=3, workers=1)                # 30 > 20
        assert decision.admitted is False
        assert decision.estimated_wait_ms == pytest.approx(30.0)
        assert decision.retry_after_s == 1       # ceil((30-20)/1000) floored at 1s
        stats = controller.stats()
        assert stats["admitted"] == 1 and stats["rejected"] == 1

    def test_retry_after_scales_with_the_excess_backlog(self):
        controller = AdmissionController(budget_ms=100.0)
        controller.observe(1000.0)
        decision = controller.decide(queued=5, workers=1)    # 5000ms est
        assert decision.admitted is False
        assert decision.retry_after_s == 5       # ceil((5000-100)/1000)

    def test_reject_builds_a_carrying_exception(self):
        controller = AdmissionController(10.0)
        controller.observe(100.0)
        decision = controller.decide(queued=5, workers=1)
        error = controller.reject(decision)
        assert isinstance(error, AdmissionRejected)
        assert error.estimated_wait_ms == decision.estimated_wait_ms
        assert error.budget_ms == 10.0
        assert error.retry_after_s == decision.retry_after_s
        assert "latency budget" in str(error)

    def test_invalid_construction_raises(self):
        with pytest.raises(ValueError):
            AdmissionController(-1.0)
        with pytest.raises(ValueError):
            AdmissionController(10.0, alpha=0.0)


class StubPool:
    """Raises AdmissionRejected like an over-budget pool would."""

    def __init__(self):
        self.config = ServeConfig(workers=1, latency_budget_ms=25.0)
        self.accepting = True

    def predict(self, sample, timeout=None):
        raise AdmissionRejected("estimated queue wait 80.0 ms exceeds the "
                                "latency budget 25.0 ms; retry in 1s",
                                estimated_wait_ms=80.0, budget_ms=25.0,
                                retry_after_s=1)

    def alive_workers(self):
        return 1

    def stats(self):
        return {}


class TestAppLevel429:
    def test_over_budget_predict_is_429_with_retry_hint(self):
        app = ServingApp(StubPool(), (3, 32, 32))
        sample = np.ones((3, 32, 32), dtype=np.float32)
        status, body = app.predict_payload({"input": sample.tolist()})
        assert status == 429
        assert body["retry_after_s"] == 1
        assert body["estimated_wait_ms"] == 80.0
        assert body["budget_ms"] == 25.0
        assert "latency budget" in body["error"]

    def test_healthz_is_unaffected_by_budget_pressure(self):
        app = ServingApp(StubPool(), (3, 32, 32))
        status, body = app.healthz()
        assert status == 200 and body["status"] == "ok"   # busy is not broken


# --------------------------------------------------------------------------- #
# Integration: a real server with a (near-impossible) latency budget
# --------------------------------------------------------------------------- #

class TestAdmissionOverHTTP:
    def test_429_with_retry_after_header_and_green_healthz(self, smoke):
        # A 0.01 ms budget rejects the moment anything is queued and the EWMA
        # has one observation — deterministic without timing games.  Cache off
        # so every request reaches the pool.
        config = ServeConfig(workers=1, port=0, cache_size=0,
                             latency_budget_ms=0.01, startup_timeout=120.0)
        with ServingServer(smoke.spec, state=smoke.state, config=config) as server:
            payload = json.dumps({"input": smoke.samples[0].tolist()}).encode()

            def post():
                request = urllib.request.Request(
                    f"{server.url}/predict", data=payload,
                    headers={"Content-Type": "application/json"}, method="POST")
                try:
                    with urllib.request.urlopen(request, timeout=60) as response:
                        return response.status, dict(response.headers), \
                            json.loads(response.read())
                except urllib.error.HTTPError as error:
                    return error.code, dict(error.headers), json.loads(error.read())

            status, _, _ = post()                # seeds the service-time EWMA
            assert status == 200
            blocker = server.pool.submit_sleep(1.0)   # one queued request
            status, headers, body = post()
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] >= 1
            assert body["budget_ms"] == 0.01
            # Over-budget is busy, not broken: health stays green and the
            # rejection is visible in the stats counters.
            health_status, health = json.loads(urllib.request.urlopen(
                f"{server.url}/healthz", timeout=30).read()), None
            assert health_status["status"] == "ok"
            stats = json.loads(urllib.request.urlopen(
                f"{server.url}/stats", timeout=30).read())
            assert stats["pool"]["rejected_budget"] >= 1
            assert stats["pool"]["admission"]["enabled"] is True
            assert stats["pool"]["admission"]["rejected"] >= 1
            assert stats["serving"]["endpoints"]["/predict"]["shed"] >= 1
            assert blocker.result(timeout=60.0) is None

    def test_budget_disabled_by_default_never_429s(self, smoke):
        config = ServeConfig(workers=1, port=0, cache_size=0,
                             startup_timeout=120.0)
        with ServingServer(smoke.spec, state=smoke.state, config=config) as server:
            app = server.app
            for sample in smoke.samples[:3]:
                status, _ = app.predict_payload({"input": sample.tolist()})
                assert status == 200
            assert server.pool.stats()["rejected_budget"] == 0
