"""M/M/c queueing arithmetic for the capacity planner.

The serving pool is modelled as ``c`` parallel servers (the workers) fed by
one FIFO backlog (exactly the PR 7 architecture: a single
:class:`~repro.serve.batching.RequestBacklog`, batches cut for whichever
worker has capacity).  Arrivals are Poisson at the offered QPS — the same
process the open-loop load generator (``tests/serve/loadgen.py``) replays —
and each request occupies one server for the model's per-request service
time.

The classical M/M/c results used here:

* offered load ``a = λ / μ`` (in Erlangs) and utilization ``ρ = a / c``;
* the **Erlang-C** probability that an arrival has to queue at all,

  .. math::  C(c, a) = \\frac{a^c / (c! \\, (1 - ρ))}
                            {\\sum_{k<c} a^k/k! + a^c/(c! \\, (1-ρ))}

  computed in log space so a 10⁶-QPS plan with hundreds of workers does
  not overflow ``c!``;
* mean queue wait ``Wq = C(c, a) / (cμ - λ)`` and its exponential tail
  ``P(wait > t) = C(c, a) · exp(-(cμ - λ) t)``, whose quantiles give the
  planner's p50/p99 wait predictions.

Response-time quantiles add the (near-deterministic) service time to the
wait quantile.  Compiled NumPy forwards have tiny service-time variance
compared to queueing delay, so modelling service as a constant keeps the
math honest where it matters — the tail is queueing, not compute jitter —
and makes ``plan(qps → 0)`` converge exactly to the pure service time,
which the property suite asserts.

Little's law (``L = λ·W``) holds by construction and is exposed directly
(:meth:`MMcQueue.mean_in_system`) so tests can check self-consistency, and
so the planner's backlog estimate agrees with the admission controller's
:func:`repro.serve.admission.littles_law_wait_ms`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MMcQueue", "erlang_c"]


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an M/M/c arrival waits (Erlang-C), in log space.

    ``offered_load`` is ``a = λ/μ`` in Erlangs.  Returns 1.0 when the
    system is saturated (``a >= servers``): every arrival queues.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be >= 0, got {offered_load}")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    rho = offered_load / servers
    log_a = math.log(offered_load)
    # log of a^k / k! for k = 0..c, accumulated iteratively.
    log_terms = [0.0]
    for k in range(1, servers + 1):
        log_terms.append(log_terms[-1] + log_a - math.log(k))
    log_queue_term = log_terms[servers] - math.log(1.0 - rho)
    log_max = max(max(log_terms[:servers]), log_queue_term)
    denominator = sum(math.exp(term - log_max) for term in log_terms[:servers])
    denominator += math.exp(log_queue_term - log_max)
    return math.exp(log_queue_term - log_max) / denominator


@dataclass(frozen=True)
class MMcQueue:
    """One M/M/c operating point: ``c`` servers, arrival and service rates.

    ``arrival_rps`` is λ (offered requests/second) and ``service_rps`` is μ
    (requests/second *one* server sustains).  All derived quantities are in
    seconds; the planner converts to milliseconds at the reporting edge.
    """

    servers: int
    arrival_rps: float
    service_rps: float

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers}")
        if self.arrival_rps < 0:
            raise ValueError(f"arrival_rps must be >= 0, got {self.arrival_rps}")
        if self.service_rps <= 0:
            raise ValueError(f"service_rps must be > 0, got {self.service_rps}")

    # ------------------------------------------------------------ occupancy
    @property
    def service_s(self) -> float:
        """Per-request service time (1/μ)."""
        return 1.0 / self.service_rps

    @property
    def offered_load(self) -> float:
        """``a = λ/μ`` in Erlangs — busy servers if none ever queued."""
        return self.arrival_rps / self.service_rps

    @property
    def utilization(self) -> float:
        """``ρ = a/c`` (may exceed 1: that is the unstable regime)."""
        return self.offered_load / self.servers

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    @property
    def capacity_rps(self) -> float:
        """The hard throughput ceiling ``c·μ``."""
        return self.servers * self.service_rps

    @property
    def wait_probability(self) -> float:
        """Erlang-C: the fraction of arrivals that queue."""
        return erlang_c(self.servers, self.offered_load)

    # -------------------------------------------------------------- waiting
    @property
    def mean_wait_s(self) -> float:
        """Mean queue delay ``Wq``; infinite when unstable."""
        if not self.stable:
            return math.inf
        drain_rps = self.capacity_rps - self.arrival_rps
        return self.wait_probability / drain_rps

    def wait_quantile_s(self, q: float) -> float:
        """The ``q``-quantile of queue delay (0 for quantiles below
        ``1 - wait_probability``: those arrivals never queue)."""
        if not 0 < q < 1:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if not self.stable:
            return math.inf
        p_wait = self.wait_probability
        if p_wait <= 0 or (1.0 - q) >= p_wait:
            return 0.0
        drain_rps = self.capacity_rps - self.arrival_rps
        return math.log(p_wait / (1.0 - q)) / drain_rps

    # ------------------------------------------------------------- response
    @property
    def mean_response_s(self) -> float:
        """``W = Wq + service`` (service modelled as near-deterministic)."""
        return self.mean_wait_s + self.service_s

    def response_quantile_s(self, q: float) -> float:
        return self.wait_quantile_s(q) + self.service_s

    # ---------------------------------------------------------- Little's law
    @property
    def mean_in_queue(self) -> float:
        """``Lq = λ·Wq`` — requests sitting in the backlog."""
        return self.arrival_rps * self.mean_wait_s

    @property
    def mean_in_system(self) -> float:
        """``L = λ·W`` — Little's law over the whole pool."""
        return self.arrival_rps * self.mean_response_s
