"""The :class:`Predictor` protocol — one interface for every serving front end.

:class:`repro.inference.BatchedPredictor` (float path, micro-batching) and
:class:`repro.ppml.SecurePredictor` (int64 fixed-point path, one query at a
time) grew the same surface independently; this module writes that implicit
contract down so the serving worker can host either behind a single code
path.  Anything that wants to be served must provide:

* ``predict(sample, timeout=...)`` — answer one un-batched sample,
* ``predict_batch(samples)`` — answer a stacked batch in one call,
* ``stats`` — a cumulative accounting object with a ``to_dict()``-style or
  dataclass shape (``PredictorStats`` or ``SecureStats``),
* ``close(timeout=...)`` — release resources, idempotent,
* context-manager use (``__enter__`` returns the predictor, ``__exit__``
  closes it).

The class is a :func:`typing.runtime_checkable` structural protocol:
``isinstance(obj, Predictor)`` checks method presence, and the worker's
tests assert both concrete predictors satisfy it.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["Predictor"]


@runtime_checkable
class Predictor(Protocol):
    """Structural interface shared by every servable predictor.

    Implemented by :class:`repro.inference.BatchedPredictor` and
    :class:`repro.ppml.SecurePredictor`; the serving worker
    (:mod:`repro.serve.worker`) only ever talks to this surface.
    """

    #: Cumulative request/batch accounting (``PredictorStats`` or
    #: ``SecureStats``); readable at any time, including after ``close``.
    stats: Any

    def predict(self, sample: np.ndarray,
                timeout: Optional[float] = None) -> np.ndarray:
        """Answer one un-batched sample, blocking up to ``timeout`` seconds."""
        ...

    def predict_batch(self, samples: np.ndarray) -> np.ndarray:
        """Answer a stacked batch in one call, preserving row order."""
        ...

    def close(self, timeout: float = 5.0) -> None:
        """Release resources; must be idempotent."""
        ...

    def __enter__(self) -> "Predictor":
        ...

    def __exit__(self, *exc_info: Any) -> None:
        ...
