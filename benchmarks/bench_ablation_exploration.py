"""Ablation A4 — design exploration over QDNN structures (paper P5).

The paper argues that identifying a good QDNN structure needs NAS-style design
effort (P5) and that quadratic models can afford shallower structures than
first-order ones.  This ablation runs the exploration layer on the synthetic
classification proxy task and checks two things:

* the search machinery itself behaves (respects its budget, produces a
  non-trivial Pareto front, evolutionary search is no worse than random search
  at equal budget on the cached evaluator), and
* the accuracy-vs-parameters front contains a quadratic candidate that is at
  least as accurate as the best first-order candidate while being shallower or
  not larger — the auto-builder's depth-reduction claim restated as a search
  outcome.
"""

import numpy as np
import pytest

from common import NUM_CLASSES, classification_data, fresh_seed, save_experiment
from repro import explore
from repro.utils import print_table

IMAGE_SIZE = 16
RANDOM_BUDGET = 8


def make_evaluator() -> explore.ProxyEvaluator:
    train_set, test_set = classification_data(image_size=IMAGE_SIZE)
    return explore.ProxyEvaluator(train_set, test_set, num_classes=NUM_CLASSES,
                                  image_size=IMAGE_SIZE, epochs=2, batch_size=16,
                                  max_batches_per_epoch=4, width_multiplier=0.25,
                                  lr=0.05, seed=0)


def make_space() -> explore.SearchSpace:
    return explore.SearchSpace(
        min_stages=2, max_stages=3, min_convs_per_stage=1, max_convs_per_stage=2,
        width_choices=(16, 32, 64),
        neuron_types=("first_order", "OURS"),
        allow_no_activation=True,
    )


def test_ablation_design_exploration(benchmark):
    fresh_seed(70)
    space = make_space()
    evaluator = make_evaluator()

    with np.errstate(all="ignore"):
        random_result = explore.random_search(space, evaluator, budget=RANDOM_BUDGET, seed=11)
        config = explore.EvolutionConfig(population_size=4, generations=2, elite_count=1)
        seeds = [explore.ArchitectureGenome((1, 1), (32, 64), neuron_type="OURS")]
        evolution_result = explore.evolutionary_search(space, evaluator, config, seed=12,
                                                       initial_population=seeds)

    # Merge both searches (the evaluator cache makes repeats free).
    merged = explore.SearchResult(
        history=list({e.genome.key(): e for e in
                      random_result.history + evolution_result.history}.values()),
        evaluations_used=random_result.evaluations_used + evolution_result.evaluations_used,
    )
    front = merged.pareto_front(maximize=("accuracy",), minimize=("parameters",))

    rows = [[
        e.genome.key(), e.genome.neuron_type, e.genome.num_conv_layers, e.parameters,
        round(e.accuracy, 3),
    ] for e in sorted(front, key=lambda e: e.parameters)]
    print()
    print_table(["Pareto candidate", "Neuron", "#Conv", "#Param", "Proxy accuracy"], rows,
                title="Ablation A4 (design exploration): accuracy vs. parameters front")

    best = merged.best
    first_order = [e for e in merged.history if not e.genome.is_quadratic]
    quadratic = [e for e in merged.history if e.genome.is_quadratic]

    results = {
        "space_cardinality": space.cardinality(),
        "evaluations": merged.evaluations_used,
        "unique_candidates": len(merged.history),
        "best": {"key": best.genome.key(), "accuracy": best.accuracy,
                 "parameters": best.parameters},
        "pareto_front": [{"key": e.genome.key(), "accuracy": e.accuracy,
                          "parameters": e.parameters, "conv_layers": e.genome.num_conv_layers,
                          "neuron": e.genome.neuron_type}
                         for e in front],
        "hypervolume": explore.hypervolume_2d(merged.history),
        "random_best_accuracy": random_result.best.accuracy,
        "evolution_best_accuracy": evolution_result.best.accuracy,
    }

    # --- structural checks --------------------------------------------------------
    assert random_result.evaluations_used == RANDOM_BUDGET
    assert len(front) >= 1
    assert all(space.contains(e.genome) for e in merged.history)
    # The searches must have explored both neuron families (the evolutionary seed
    # guarantees at least one quadratic candidate was visited).
    assert first_order and quadratic
    assert any(e.genome.key() == seeds[0].key() for e in merged.history)
    # Every candidate trained (finite objectives) and the front is consistent:
    # nothing on the front is dominated by any explored candidate.
    assert all(np.isfinite(e.accuracy) for e in merged.history)
    for member in front:
        assert not any(explore.dominates(other, member) for other in merged.history)
    # Record (rather than assert) the relative accuracy of the two neuron families:
    # at the scaled proxy budget the ordering is within noise, which EXPERIMENTS.md
    # documents; the structural depth-reduction claim is asserted in Table 3 / A2.
    best_first_order = max(first_order, key=lambda e: e.accuracy)
    best_quadratic = max(quadratic, key=lambda e: e.accuracy)
    results["best_first_order_accuracy"] = best_first_order.accuracy
    results["best_quadratic_accuracy"] = best_quadratic.accuracy
    save_experiment("ablation_exploration", results)

    # Timed kernel: one cached evaluation + Pareto extraction over the history.
    cached_genome = merged.history[0].genome
    benchmark(lambda: (evaluator(cached_genome),
                       explore.pareto_front(merged.history)))
