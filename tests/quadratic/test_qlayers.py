"""Tests of the quadratic dense and convolution layers (all neuron types)."""

import numpy as np
import pytest

from repro import quadratic as qua
from repro.autodiff import Tensor, randn
from repro.quadratic import QuadraticConv2d, QuadraticConv2dT1, QuadraticLinear

ALL_LINEAR_TYPES = ["T1", "T1_PURE", "T2", "T3", "T4", "T4_ID", "T1_2", "T2_4", "OURS"]
COMPOSABLE_CONV_TYPES = ["T2", "T3", "T4", "T4_ID", "T2_4", "OURS"]


class TestQuadraticLinearForward:
    """Each neuron type must compute exactly its Table 1 formula."""

    def _layer(self, neuron_type, in_f=6, out_f=4, bias=False):
        return QuadraticLinear(in_f, out_f, neuron_type=neuron_type, bias=bias)

    def test_t2_formula(self):
        layer = self._layer("T2")
        x = randn(3, 6)
        expected = (x.data ** 2) @ layer.weight_sq.data.T
        assert np.allclose(layer(x).data, expected, atol=1e-5)

    def test_t3_formula(self):
        layer = self._layer("T3")
        x = randn(3, 6)
        expected = (x.data @ layer.weight_a.data.T) ** 2
        assert np.allclose(layer(x).data, expected, atol=1e-5)

    def test_t4_formula(self):
        layer = self._layer("T4")
        x = randn(3, 6)
        a = x.data @ layer.weight_a.data.T
        b = x.data @ layer.weight_b.data.T
        assert np.allclose(layer(x).data, a * b, atol=1e-5)

    def test_t4_identity_formula(self):
        layer = QuadraticLinear(6, 6, neuron_type="T4_ID", bias=False)
        x = randn(3, 6)
        a = x.data @ layer.weight_a.data.T
        b = x.data @ layer.weight_b.data.T
        assert np.allclose(layer(x).data, a * b + x.data, atol=1e-5)

    def test_ours_formula(self):
        layer = self._layer("OURS")
        x = randn(3, 6)
        a = x.data @ layer.weight_a.data.T
        b = x.data @ layer.weight_b.data.T
        c = x.data @ layer.weight_c.data.T
        assert np.allclose(layer(x).data, a * b + c, atol=1e-5)

    def test_fan_t2_4_formula(self):
        layer = self._layer("T2_4")
        x = randn(3, 6)
        a = x.data @ layer.weight_a.data.T
        b = x.data @ layer.weight_b.data.T
        sq = (x.data ** 2) @ layer.weight_sq.data.T
        assert np.allclose(layer(x).data, a * b + sq, atol=1e-5)

    def test_t1_formula(self):
        layer = self._layer("T1", in_f=5, out_f=3)
        x = randn(2, 5)
        bilinear = np.einsum("ni,oij,nj->no", x.data, layer.weight_bilinear.data, x.data)
        linear = x.data @ layer.weight_b.data.T
        assert np.allclose(layer(x).data, bilinear + linear, atol=1e-4)

    def test_t1_pure_formula(self):
        layer = self._layer("T1_PURE", in_f=5, out_f=3)
        x = randn(2, 5)
        bilinear = np.einsum("ni,oij,nj->no", x.data, layer.weight_bilinear.data, x.data)
        assert np.allclose(layer(x).data, bilinear, atol=1e-4)

    def test_bias_added_after_combination(self):
        layer = QuadraticLinear(4, 4, neuron_type="OURS", bias=True)
        x = randn(2, 4)
        no_bias = QuadraticLinear(4, 4, neuron_type="OURS", bias=False)
        for name in ("weight_a", "weight_b", "weight_c"):
            getattr(no_bias, name).data[...] = getattr(layer, name).data
        assert np.allclose(layer(x).data - no_bias(x).data, layer.bias.data, atol=1e-6)

    def test_t4_id_requires_matching_dims(self):
        with pytest.raises(ValueError):
            QuadraticLinear(4, 8, neuron_type="T4_ID")

    @pytest.mark.parametrize("neuron_type", ALL_LINEAR_TYPES)
    def test_all_types_gradients_flow(self, neuron_type):
        layer = QuadraticLinear(6, 6, neuron_type=neuron_type)
        x = randn(3, 6, requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()
        for _, param in layer.named_parameters():
            assert param.grad is not None and np.isfinite(param.grad).all()

    @pytest.mark.parametrize("neuron_type", ["T2", "T4", "OURS"])
    def test_numeric_weight_gradients(self, neuron_type, numgrad):
        layer = QuadraticLinear(4, 3, neuron_type=neuron_type, bias=False)
        x = randn(2, 4)
        name = layer.weight_parameter_names()[0]
        weight = getattr(layer, name)

        def run():
            return float(layer(Tensor(x.data)).sum().data)

        layer(x).sum().backward()
        expected = numgrad(run, weight.data)
        assert np.allclose(weight.grad, expected, atol=5e-2)


class TestQuadraticConv:
    @pytest.mark.parametrize("neuron_type", COMPOSABLE_CONV_TYPES)
    def test_shapes_all_types(self, neuron_type):
        layer = QuadraticConv2d(4, 6 if neuron_type != "T4_ID" else 4, kernel_size=3,
                                padding=1, neuron_type=neuron_type)
        out = layer(randn(2, 4, 8, 8))
        assert out.shape[0] == 2 and out.shape[2:] == (8, 8)

    def test_ours_conv_matches_composed_convs(self):
        layer = QuadraticConv2d(3, 5, kernel_size=3, padding=1, neuron_type="OURS", bias=False)
        x = randn(2, 3, 6, 6)
        a = x.conv2d(layer.weight_a, padding=1).data
        b = x.conv2d(layer.weight_b, padding=1).data
        c = x.conv2d(layer.weight_c, padding=1).data
        assert np.allclose(layer(x).data, a * b + c, atol=1e-5)

    def test_stride_and_padding(self):
        layer = QuadraticConv2d(3, 8, kernel_size=3, stride=2, padding=1, neuron_type="OURS")
        assert layer(randn(1, 3, 16, 16)).shape == (1, 8, 8, 8)

    def test_grouped_quadratic_conv(self):
        layer = QuadraticConv2d(8, 8, kernel_size=1, groups=8, neuron_type="OURS")
        assert layer(randn(2, 8, 4, 4)).shape == (2, 8, 4, 4)

    def test_parameter_counts_match_weight_sets(self):
        first_order_params = 6 * 4 * 3 * 3
        t4 = QuadraticConv2d(4, 6, 3, neuron_type="T4", bias=False)
        ours = QuadraticConv2d(4, 6, 3, neuron_type="OURS", bias=False)
        assert t4.num_parameters() == 2 * first_order_params
        assert ours.num_parameters() == 3 * first_order_params

    def test_gradients_flow_through_conv(self):
        layer = QuadraticConv2d(3, 4, kernel_size=3, padding=1, neuron_type="T2_4")
        x = randn(2, 3, 6, 6, requires_grad=True)
        layer(x).sum().backward()
        assert np.isfinite(x.grad).all()
        assert layer.weight_sq.grad is not None

    def test_full_rank_type_rejected_by_composable_class(self):
        with pytest.raises(ValueError):
            QuadraticConv2d(3, 4, neuron_type="T1")

    def test_t4_id_channel_constraint(self):
        with pytest.raises(ValueError):
            QuadraticConv2d(3, 8, neuron_type="T4_ID")

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            QuadraticConv2d(3, 4, groups=2, neuron_type="OURS")

    def test_output_shape_helper(self):
        layer = QuadraticConv2d(3, 4, kernel_size=3, stride=2, padding=1, neuron_type="OURS")
        assert layer.output_shape((32, 32)) == (16, 16)


class TestQuadraticConvT1:
    def test_forward_shape(self):
        layer = QuadraticConv2dT1(3, 4, kernel_size=3, padding=1, neuron_type="T1_PURE")
        assert layer(randn(1, 3, 6, 6)).shape == (1, 4, 6, 6)

    def test_parameter_explosion_versus_ours(self):
        # The P2 argument: T1's full-rank weights dwarf the composable designs.
        t1 = QuadraticConv2dT1(16, 16, kernel_size=3, neuron_type="T1_PURE", bias=False)
        ours = QuadraticConv2d(16, 16, kernel_size=3, neuron_type="OURS", bias=False)
        assert t1.num_parameters() > 20 * ours.num_parameters()

    def test_gradients_flow(self):
        layer = QuadraticConv2dT1(2, 3, kernel_size=3, padding=1, neuron_type="T1")
        x = randn(1, 2, 5, 5, requires_grad=True)
        layer(x).sum().backward()
        assert np.isfinite(x.grad).all()
        assert layer.weight_bilinear.grad is not None

    def test_composable_type_rejected(self):
        with pytest.raises(ValueError):
            QuadraticConv2dT1(3, 4, neuron_type="OURS")


class TestFactory:
    def test_typenew_builds_conv_or_linear(self):
        conv = qua.typenew(3, 8, kernel_size=3, padding=1)
        dense = qua.typenew(16, 8)
        assert isinstance(conv, QuadraticConv2d)
        assert isinstance(dense, QuadraticLinear)

    def test_type1_builds_full_rank_conv(self):
        layer = qua.type1(3, 4, kernel_size=3)
        assert isinstance(layer, QuadraticConv2dT1)

    def test_hybrid_flag_selects_hybrid_class(self):
        from repro.quadratic import HybridQuadraticConv2d, HybridQuadraticLinear

        conv = qua.quadratic_layer("OURS", 3, 8, kernel_size=3, hybrid_bp=True)
        dense = qua.quadratic_layer("OURS", 16, 8, hybrid_bp=True)
        assert isinstance(conv, HybridQuadraticConv2d)
        assert isinstance(dense, HybridQuadraticLinear)

    def test_hybrid_flag_ignored_for_types_without_symbolic_backward(self):
        # T2/T3 have no symbolic-backward implementation, so the flag falls back
        # to the composed layer; T4 and Fan do (see test_hybrid_general.py).
        layer = qua.quadratic_layer("T2", 3, 8, kernel_size=3, hybrid_bp=True)
        assert isinstance(layer, QuadraticConv2d)

    def test_all_factories_runnable(self):
        x = randn(2, 4, 6, 6)
        for factory in (qua.type2, qua.type3, qua.type4, qua.type_fan, qua.typenew):
            layer = factory(4, 4, kernel_size=3, padding=1)
            assert layer(x).shape == (2, 4, 6, 6)
