"""Cross-process determinism of the load generator's arrival schedules.

The trajectory gate compares runs recorded *days apart, on different
processes* — it is only meaningful if the offered load was byte-identical
every time.  ``test_loadgen.py`` already asserts seeded determinism within
one interpreter; these tests assert the stronger property the benchmarks
rely on: a fresh process (fresh NumPy, fresh hash seed) replays the exact
same schedules bit for bit, and the closed loop issues exactly the same
request set regardless of thread interleaving.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from loadgen import poisson_schedule, run_closed_loop

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: (rate, count, seed) cases covering the benches' actual operating points.
CASES = [(293.0, 80, 7), (60.0, 200, 0), (1000.0, 16, 1234)]

_CHILD = """
import json, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {here!r})
from loadgen import poisson_schedule
cases = json.loads(sys.stdin.read())
schedules = [poisson_schedule(rate, count, seed) for rate, count, seed in cases]
print(json.dumps(schedules))
"""


def child_schedules(cases) -> list:
    """Run ``poisson_schedule`` for each case in a brand-new interpreter."""
    script = _CHILD.format(src=str(REPO_SRC), here=str(Path(__file__).parent))
    result = subprocess.run(
        [sys.executable, "-c", script], input=json.dumps(cases),
        capture_output=True, text=True, timeout=60, check=True)
    return json.loads(result.stdout)


class TestPoissonScheduleAcrossProcesses:
    def test_schedules_are_bit_identical_across_processes(self):
        parent = [poisson_schedule(rate, count, seed)
                  for rate, count, seed in CASES]
        child = child_schedules(CASES)
        # Floats survive the JSON round trip exactly (repr round-trips
        # float64), so == here really is bit-for-bit equality.
        assert child == parent

    def test_two_child_processes_agree_with_each_other(self):
        assert child_schedules(CASES) == child_schedules(CASES)

    def test_different_seeds_still_differ_across_processes(self):
        child = child_schedules([(100.0, 20, 1), (100.0, 20, 2)])
        assert child[0] != child[1]


class TestClosedLoopDeterminism:
    def test_request_set_is_exactly_the_grid_regardless_of_interleaving(self):
        # The closed loop has no RNG: determinism means every (client,
        # request) slot fires exactly once, whatever the thread schedule.
        report = run_closed_loop(lambda index: 200, clients=4,
                                 requests_per_client=25)
        indices = sorted(record.index for record in report.records)
        assert indices == list(range(100))

    def test_repeat_runs_issue_the_same_request_set(self):
        first = run_closed_loop(lambda index: 200, clients=3,
                                requests_per_client=10)
        second = run_closed_loop(lambda index: 200, clients=3,
                                 requests_per_client=10)
        assert sorted(r.index for r in first.records) \
            == sorted(r.index for r in second.records)
