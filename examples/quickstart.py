"""Quickstart: build quadratic layers and see why they beat linear neurons on XOR.

Run with::

    python examples/quickstart.py

The script builds the paper's quadratic neuron (``f(X) = (Wa X) ∘ (Wb X) + Wc X``)
via the ``qua.typenew`` factory, trains a one-hidden-layer quadratic network and a
linear classifier on the XOR problem, and prints their accuracies — the classic
demonstration that a quadratic neuron separates what a linear neuron cannot.
"""

from repro import nn
from repro import quadratic as qua
from repro.autodiff import randn
from repro.data import TensorDataset
from repro.data.synthetic import circle_dataset, xor_dataset
from repro.models import FirstOrderMLP, QuadraticMLP
from repro.training import train_classifier
from repro.utils import print_table, seed_everything


def build_a_quadratic_model() -> nn.Module:
    """The paper's construction-function pattern: quadratic layers are ordinary modules."""
    layers = []
    in_channels = 3
    for width in (16, 32):
        layers += [qua.typenew(in_channels, width, kernel_size=3, padding=1),
                   nn.BatchNorm2d(width), nn.ReLU(), nn.MaxPool2d(2)]
        in_channels = width
    layers += [nn.GlobalAvgPool2d(), nn.Linear(in_channels, 10)]
    return nn.Sequential(*layers)


def main() -> None:
    seed_everything(0)

    # 1. Quadratic layers compose exactly like first-order layers (paper P4).
    model = build_a_quadratic_model()
    logits = model(randn(4, 3, 32, 32))
    print(f"Quadratic CNN built with qua.typenew(): output shape {logits.shape}, "
          f"{model.num_parameters():,} parameters\n")

    # 2. XOR and the circle boundary: one quadratic hidden layer vs. a linear model.
    rows = []
    for task_name, (x, y) in (("XOR gate", xor_dataset(400)),
                              ("circle boundary", circle_dataset(400))):
        dataset = TensorDataset(x, y)
        quadratic = QuadraticMLP([2, 4, 2], neuron_type="OURS")
        linear = FirstOrderMLP([2, 2], activation=False)
        acc_quadratic = train_classifier(quadratic, dataset, epochs=15, batch_size=64,
                                         lr=0.05).final_train_accuracy
        acc_linear = train_classifier(linear, dataset, epochs=15, batch_size=64,
                                      lr=0.05).final_train_accuracy
        rows.append([task_name, f"{acc_quadratic:.3f}", f"{acc_linear:.3f}"])

    print_table(["Task", "Quadratic (1 hidden layer)", "Linear classifier"], rows,
                title="Quadratic vs. linear neurons on toy tasks")

    # 3. The neuron-type registry: every design from the paper's Table 1.
    print("\nRegistered quadratic neuron designs (paper Table 1):")
    for name in qua.available_types():
        print(f"  {qua.resolve_type(name).describe()}")


if __name__ == "__main__":
    main()
