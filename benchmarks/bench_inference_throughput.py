"""Inference-engine benchmark: compiled vs eager forward, and serving throughput.

Measures three things on the ``smoke`` preset model (quadratic VGG-8, the CI
canary workload), through the same :func:`repro.inference.measure_serving`
pipeline the ``repro infer`` CLI reports:

1. **Correctness** — the compiled no-grad path must reproduce the default
   autodiff forward to 1e-6 (on this model the two are bit-identical).
2. **Single-sample latency** — the compiled path must be at least 2× faster
   than the default autodiff forward.  The win comes from three places: no
   ``Function``/``Context`` graph construction, one shared ``im2col`` per
   quadratic layer instead of one per weight projection, and the fused
   ``out=``-buffered combination kernels.
3. **Batched throughput** — samples/second of the compiled path across batch
   sizes, plus the ``BatchedPredictor`` micro-batching pipeline fed one
   sample at a time (the serving scenario).

Run with ``PYTHONPATH=src python benchmarks/bench_inference_throughput.py``.
``--quick`` (or ``REPRO_BENCH_QUICK=1``) is the CI regression-gate mode:
fewer repetitions and a shorter sweep, same assertions — it still fails the
build if the compiled path stops being ≥ 2x faster than eager or stops
matching it numerically, and it still writes the JSON result artifact.
"""

from __future__ import annotations

import numpy as np

from common import fresh_seed, quick_mode, save_experiment

from repro.experiment import Experiment, get_preset
from repro.inference import measure_serving
from repro.profiler.latency import median_runtime_ms
from repro.utils.logging import format_table

#: timing repetitions per measurement (median is reported)
REPEATS = 30
#: samples pushed through the micro-batching predictor
SERVE_SAMPLES = 128
#: batch sizes for the throughput sweep
BATCH_SIZES = (1, 2, 4, 8, 16)

#: quick (CI gate) mode: same checks, smaller measurement budget
QUICK_REPEATS = 10
QUICK_SERVE_SAMPLES = 32
QUICK_BATCH_SIZES = (1, 4, 8)

#: acceptance thresholds (the issue's bar for this subsystem)
MIN_SPEEDUP = 2.0
MAX_ABS_DIFF = 1e-6


def main() -> None:
    quick = quick_mode()
    repeats = QUICK_REPEATS if quick else REPEATS
    serve_samples = QUICK_SERVE_SAMPLES if quick else SERVE_SAMPLES
    batch_sizes = QUICK_BATCH_SIZES if quick else BATCH_SIZES
    fresh_seed()
    experiment = Experiment(get_preset("smoke"))
    model = experiment.build()
    model.eval()
    compiled = experiment.compile_inference()

    rng = np.random.default_rng(0)
    shape = experiment.spec.data.input_shape
    samples = rng.standard_normal((serve_samples,) + shape).astype(np.float32)

    # ---- 1 + 2 + serving: the shared measurement pipeline
    results = measure_serving(model, compiled, samples, max_batch_size=8,
                              max_wait=0.002, repeats=repeats)
    assert results["max_abs_diff"] <= MAX_ABS_DIFF, (
        f"compiled forward diverges from eager: "
        f"max |diff| = {results['max_abs_diff']:.3e}")
    assert results["speedup"] >= MIN_SPEEDUP, (
        f"compiled single-sample forward only {results['speedup']:.2f}x faster "
        f"than eager ({results['compiled_ms_per_sample']:.2f} ms vs "
        f"{results['eager_ms_per_sample']:.2f} ms); expected >= {MIN_SPEEDUP}x")

    # ---- 3. batched throughput sweep
    sweep_rows = []
    sweep_results = []
    for batch_size in batch_sizes:
        batch = rng.standard_normal((batch_size,) + shape).astype(np.float32)
        batch_ms = median_runtime_ms(lambda b=batch: compiled(b),
                                     iterations=max(repeats // 2, 5))
        throughput = batch_size / (batch_ms / 1000.0)
        sweep_rows.append([batch_size, f"{batch_ms:.2f}", f"{throughput:,.0f}"])
        sweep_results.append({"batch_size": batch_size, "ms_per_batch": batch_ms,
                              "samples_per_s": throughput})

    print(format_table(
        ["Metric", "Value"],
        [
            ["max |compiled - eager|",
             f"{results['max_abs_diff']:.2e} (<= {MAX_ABS_DIFF:.0e})"],
            ["eager forward / sample", f"{results['eager_ms_per_sample']:.2f} ms"],
            ["compiled forward / sample",
             f"{results['compiled_ms_per_sample']:.2f} ms"],
            ["speedup", f"{results['speedup']:.2f}x (>= {MIN_SPEEDUP:.0f}x required)"],
            ["serving throughput",
             f"{results['throughput_samples_per_s']:,.0f} samples/s"],
            ["micro-batches", f"{results['batches']} "
                              f"(mean size {results['mean_batch_size']:.1f})"],
        ],
        title="Compiled inference engine (smoke preset, quadratic VGG-8)"
              + (" — quick/CI mode" if quick else ""),
    ))
    print()
    print(format_table(["Batch size", "ms / batch", "samples / s"], sweep_rows,
                       title="Compiled throughput sweep"))

    save_experiment("inference_throughput", {
        "quick_mode": quick,
        **results,
        "throughput_sweep": sweep_results,
    })


if __name__ == "__main__":
    main()
