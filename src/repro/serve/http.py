"""Async (asyncio) HTTP front door over the worker pool.

Three endpoints, all JSON:

* ``POST /predict`` — body ``{"input": <nested list>}`` shaped like the
  spec's ``data.input_shape``.  Answers ``{"output": [...], "cached": bool}``.
  Malformed JSON or a wrong shape is ``400``; over the latency budget is
  ``429`` with a ``Retry-After`` header (admission control — the client's
  load, not our failure); a saturated pool or a draining server is ``503``
  (load shedding); a worker failure that exhausted its retries is ``500``.
* ``GET /healthz`` — ``200 {"status": "ok"}`` while serving, ``503`` with
  ``"draining"``/``"unhealthy"`` while shutting down or with dead workers.
  A pool over its latency *budget* stays ``200``: busy is not broken.
* ``GET /stats`` — cache, per-endpoint latency percentiles, pool counters
  (transport/assembly fallbacks, the adaptive ``pipeline`` depth subtree,
  per-stage latency reservoirs, and the ``secure`` accounting section).

The server is a single-threaded :func:`asyncio.start_server` loop running in
one background thread.  Handlers do no inference — they parse, consult the
LRU cache, submit to the pool and ``await`` the answer, so thousands of
connections can wait on the pool with no thread per connection (the old
``ThreadingHTTPServer`` spent one OS thread per in-flight request, and its
thread wake-ups were a measurable slice of the p99).  The bridge from the
pool's dispatcher thread back into the loop is
:meth:`~repro.serve.pool.PoolFuture.add_done_callback` →
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .admission import AdmissionRejected
from .cache import LRUCache, input_digest
from .config import ServeConfig
from .metrics import ServingMetrics
from .pool import PoolClosed, PoolFuture, PoolSaturated, WorkerCrashed, WorkerPool

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServingApp:
    """Transport-free request handling: parse → cache → pool → JSON.

    Separated from the HTTP plumbing so tests (and in-process callers like
    ``ServingServer.predict``) can drive the exact request path without a
    socket.  The blocking entry points (:meth:`predict_array`,
    :meth:`predict_payload`) and the async ones the front door uses share
    all their validation and error mapping.
    """

    def __init__(self, pool: WorkerPool, input_shape: Tuple[int, ...],
                 config: Optional[ServeConfig] = None) -> None:
        self.pool = pool
        self.input_shape = tuple(input_shape)
        self.config = config or getattr(pool, "config", ServeConfig())
        self.cache = LRUCache(self.config.cache_size)
        self.metrics = ServingMetrics()
        self.draining = False

    # ----------------------------------------------------------------- /predict
    def predict_array(self, sample: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Answer one sample through cache + pool; returns (output, cached)."""
        sample = np.asarray(sample, dtype=np.float32)
        key = input_digest(sample)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        output = np.asarray(self.pool.predict(sample))
        return self._finish(key, output), False

    async def predict_array_async(self, sample: np.ndarray) -> Tuple[np.ndarray, bool]:
        """:meth:`predict_array` without blocking the event loop."""
        sample = np.asarray(sample, dtype=np.float32)
        key = input_digest(sample)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        future = self.pool.submit(sample)      # admission/watermark raise here
        output = np.asarray(await asyncio.wait_for(
            _awaitable(future), timeout=self.config.request_timeout))
        return self._finish(key, output), False

    def _finish(self, key: str, output: np.ndarray) -> np.ndarray:
        # The same array is handed to the caller and kept by the cache, so
        # freeze it — a caller mutating its result would otherwise silently
        # corrupt every future cache hit for this input.
        output.setflags(write=False)
        self.cache.put(key, output)
        return output

    def _parse(self, payload: Any):
        """Shared validation; returns (sample, None) or (None, (status, body))."""
        if self.draining:
            return None, (503, {"error": "server is draining; no new requests accepted"})
        if not isinstance(payload, dict) or "input" not in payload:
            return None, (400, {"error": 'request body must be a JSON object {"input": [...]}'})
        try:
            sample = np.asarray(payload["input"], dtype=np.float32)
        except (TypeError, ValueError) as error:
            return None, (400, {"error": f"could not parse 'input' as a float array: {error}"})
        if sample.shape != self.input_shape:
            return None, (400, {"error": f"'input' has shape {list(sample.shape)}; this model "
                                         f"serves shape {list(self.input_shape)}"})
        return sample, None

    @staticmethod
    def _error_response(error: BaseException) -> Tuple[int, Dict[str, Any]]:
        if isinstance(error, AdmissionRejected):
            return 429, {"error": f"over latency budget: {error}",
                         "estimated_wait_ms": round(error.estimated_wait_ms, 3),
                         "budget_ms": error.budget_ms,
                         "retry_after_s": error.retry_after_s}
        if isinstance(error, PoolSaturated):
            return 503, {"error": f"overloaded: {error}"}
        if isinstance(error, PoolClosed):
            return 503, {"error": f"shutting down: {error}"}
        return 500, {"error": f"{type(error).__name__}: {error}"}

    def predict_payload(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """The full ``POST /predict`` semantics; returns (status, body)."""
        sample, failure = self._parse(payload)
        if failure is not None:
            return failure
        try:
            output, was_cached = self.predict_array(sample)
        except (AdmissionRejected, PoolSaturated, PoolClosed, WorkerCrashed,
                TimeoutError, RuntimeError) as error:
            return self._error_response(error)
        return 200, {"output": np.asarray(output).tolist(), "cached": was_cached}

    async def predict_payload_async(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """What the async front door calls for ``POST /predict``."""
        sample, failure = self._parse(payload)
        if failure is not None:
            return failure
        try:
            output, was_cached = await self.predict_array_async(sample)
        except (AdmissionRejected, PoolSaturated, PoolClosed, WorkerCrashed,
                TimeoutError, asyncio.TimeoutError, RuntimeError) as error:
            return self._error_response(error)
        return 200, {"output": np.asarray(output).tolist(), "cached": was_cached}

    # ----------------------------------------------------------------- /healthz
    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        alive = self.pool.alive_workers()
        total = self.config.workers
        if self.draining:
            return 503, {"status": "draining", "workers_alive": alive,
                         "workers_total": total}
        if alive == 0 or not self.pool.accepting:
            return 503, {"status": "unhealthy", "workers_alive": alive,
                         "workers_total": total}
        return 200, {"status": "ok", "workers_alive": alive, "workers_total": total}

    # ------------------------------------------------------------------- /stats
    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "serving": self.metrics.to_dict(),
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "draining": self.draining,
        }


def _awaitable(future: PoolFuture) -> "asyncio.Future":
    """Bridge a :class:`PoolFuture` into the running event loop.

    The pool settles futures on its dispatcher thread; the only thread-safe
    way into asyncio is ``call_soon_threadsafe``, so the done-callback hops
    the result across.
    """
    loop = asyncio.get_running_loop()
    aio_future = loop.create_future()

    def _settle() -> None:
        if aio_future.done():          # wait_for cancelled it already
            return
        try:
            aio_future.set_result(future.result(timeout=0))
        except BaseException as error:  # noqa: BLE001 — forwarded, not handled
            aio_future.set_exception(error)

    future.add_done_callback(lambda _: loop.call_soon_threadsafe(_settle))
    return aio_future


class AsyncFrontDoor:
    """One listening socket, one event loop, one background thread.

    The socket is bound synchronously in ``__init__`` so an address conflict
    surfaces as :class:`OSError` in the caller (and the pool can be torn
    down) instead of dying later inside the serving thread.  Connections are
    plain HTTP/1.1 with keep-alive — enough for ``urllib``, ``http.client``
    and every load generator in this repo, with zero dependencies.
    """

    def __init__(self, app: ServingApp, host: str, port: int) -> None:
        self.app = app
        self._sock = socket.create_server((host, port), backlog=128)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self._sock.getsockname()[1]

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "AsyncFrontDoor":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-http")
        self._thread.start()
        if not self._started.wait(10.0):
            raise RuntimeError("HTTP front door failed to start within 10s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(self._serve_connection,
                                                sock=self._sock)
        except BaseException as error:  # surface in start(), not a dead thread
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        server.close()
        await server.wait_closed()
        # Cancel lingering keep-alive connections so the loop closes clean.
        tasks = [task for task in asyncio.all_tasks()
                 if task is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def shutdown(self, timeout: float = 5.0) -> None:
        if self._loop is not None and self._stop is not None \
                and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:     # loop already closed between checks
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        with contextlib.suppress(OSError):
            self._sock.close()

    # --------------------------------------------------------------- connection
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                started = time.perf_counter()
                try:
                    method, path, version = request_line.decode("latin-1").split()
                except ValueError:
                    break                      # not HTTP; hang up
                headers = await self._read_headers(reader)
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length > 0 else b""
                endpoint, status, payload, extra = await self._route(method, path, body)
                close = (headers.get("connection", "").lower() == "close"
                         or version == "HTTP/1.0")
                await self._respond(writer, status, payload, extra, close)
                latency_ms = (time.perf_counter() - started) * 1000.0
                self.app.metrics.endpoint(endpoint).record(
                    latency_ms, status,
                    shed=endpoint == "/predict" and status in (429, 503))
                if close:
                    break
        except (asyncio.IncompleteReadError, asyncio.CancelledError,
                ConnectionError, TimeoutError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
            # A shutdown-time cancel can land on this await; CancelledError is
            # a BaseException, so suppress it explicitly — the task must end
            # *finished*, not *cancelled*, or asyncio's stream protocol logs a
            # spurious traceback when its done-callback inspects the task.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _route(self, method: str, path: str, body: bytes):
        """Dispatch one request; returns (endpoint, status, payload, headers)."""
        if method == "GET" and path == "/healthz":
            status, payload = self.app.healthz()
            return "/healthz", status, payload, []
        if method == "GET" and path == "/stats":
            status, payload = self.app.stats()
            return "/stats", status, payload, []
        if method == "POST" and path == "/predict":
            try:
                parsed = json.loads(body or b"")
            except (TypeError, ValueError) as error:
                return "/predict", 400, \
                    {"error": f"request body is not valid JSON: {error}"}, []
            status, payload = await self.app.predict_payload_async(parsed)
            extra: List[Tuple[str, str]] = []
            if status == 429:
                extra.append(("Retry-After", str(payload.get("retry_after_s", 1))))
            return "/predict", status, payload, extra
        # Metrics-bucket unknown paths under one key: per-path entries would
        # let a fuzzer grow the counter map without bound.
        return "other", 404, {"error": f"no such endpoint: {path}"}, []

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, Any], extra: List[Tuple[str, str]],
                       close: bool) -> None:
        data = json.dumps(payload).encode()
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Server: repro-serve",
                 "Content-Type: application/json",
                 f"Content-Length: {len(data)}"]
        lines.extend(f"{name}: {value}" for name, value in extra)
        lines.append("Connection: close" if close else "Connection: keep-alive")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + data)
        await writer.drain()


class ServingServer:
    """The deployable unit: worker pool + HTTP front door, one lifecycle.

    Built by :meth:`repro.experiment.Experiment.serve` and the ``repro
    serve`` CLI.  Construction is cheap; :meth:`start` spawns the workers,
    waits until they are ready, and binds the HTTP socket.

    Example
    -------
    >>> server = experiment.serve(workers=2, port=0)   # port 0: OS-assigned
    >>> with server:                                   # start() ... close()
    ...     print(server.url)                          # http://127.0.0.1:PORT
    ...     out = server.predict(sample)               # in-process request path
    """

    def __init__(self, spec, state: Optional[Dict[str, np.ndarray]] = None,
                 config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.pool = WorkerPool(spec, state=state, config=self.config)
        self.app: Optional[ServingApp] = None
        self._door: Optional[AsyncFrontDoor] = None
        self._input_shape = self._infer_input_shape(self.pool.spec_dict)
        self._closed = False

    @staticmethod
    def _infer_input_shape(spec_dict: Dict[str, Any]) -> Tuple[int, ...]:
        from ..experiment import ExperimentSpec

        return tuple(ExperimentSpec.from_dict(spec_dict).data.input_shape)

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "ServingServer":
        """Start workers, then bind and serve HTTP in a background thread."""
        if self._closed:
            raise RuntimeError("this server has been closed; build a new one")
        if self._door is not None:
            return self
        self.pool.start()
        try:
            self.app = ServingApp(self.pool, self._input_shape, self.config)
            self._door = AsyncFrontDoor(self.app, self.config.host,
                                        self.config.port).start()
        except BaseException:
            # e.g. EADDRINUSE — the already-running workers must not leak.
            self.pool.close(timeout=5.0)
            raise
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful once started; resolves ``port=0``)."""
        if self._door is None:
            return self.config.port
        return self._door.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def predict(self, sample: np.ndarray) -> np.ndarray:
        """In-process request through the exact cache + pool path HTTP uses."""
        if self.app is None:
            raise RuntimeError("server not started; call start() first")
        output, _ = self.app.predict_array(sample)
        return output

    def drain(self, wait: bool = True, timeout: Optional[float] = None) -> bool:
        """Flip /healthz to draining, stop admissions, optionally wait empty."""
        if self.app is not None:
            self.app.draining = True
        if not wait:
            self.pool.stop_accepting()
            return False
        return self.pool.drain(timeout=timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Drain, stop the HTTP listener, shut the pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.drain(wait=True, timeout=min(timeout, self.config.drain_timeout))
        if self._door is not None:
            self._door.shutdown()
        self.pool.close(timeout=timeout)

    def __enter__(self) -> "ServingServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("serving" if self._door else "new")
        return f"ServingServer({self.url}, workers={self.config.workers}, {state})"
