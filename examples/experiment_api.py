"""Tour of the unified experiment API: spec → Experiment → fit / profile / to_ppml.

Run with::

    python examples/experiment_api.py

One declarative :class:`~repro.experiment.ExperimentSpec` drives the whole
QuadraLib workflow for a quadratic VGG-8 on synthetic CIFAR-shaped data:

1. the spec is defined as plain data (and shown surviving a JSON round-trip),
2. ``Experiment.build()`` instantiates the model through the registries,
3. ``fit()`` / ``evaluate()`` train and score it with the paper's recipe,
4. ``profile()`` reports parameters / MACs / training memory,
5. ``to_ppml()`` converts it for private inference and prices the savings,
6. the collected results are serialized back to JSON.

The identical run from the shell::

    python -m repro run spec.json --out results.json
"""

import json
import os
import tempfile

from repro.experiment import (
    DataSpec,
    Experiment,
    ExperimentSpec,
    ModelSpec,
    PPMLSpec,
    ProfileSpec,
    TrainSpec,
)
from repro.utils import print_table


def make_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="experiment-api-tour",
        seed=0,
        model=ModelSpec(name="vgg8", neuron_type="OURS", num_classes=6,
                        width_multiplier=0.25),
        data=DataSpec(num_samples=192, test_samples=96, num_classes=6, image_size=32),
        train=TrainSpec(epochs=2, batch_size=16, lr=0.05, max_batches_per_epoch=6),
        profile=ProfileSpec(batch_size=64),
        ppml=PPMLSpec(strategy="quadratic_no_relu", protocol="delphi"),
    )


def main() -> None:
    # 1. A spec is pure data: JSON out, JSON in, nothing lost.
    spec = make_spec()
    spec = ExperimentSpec.from_json(spec.to_json())
    print(f"spec '{spec.name}' round-tripped through JSON "
          f"({len(spec.to_json())} bytes)\n")

    experiment = Experiment(spec)

    # 2. Build through the registries (models / neurons / datasets by name).
    model = experiment.build()
    print(f"built {spec.model.name} with neuron type {spec.model.neuron_type}: "
          f"{model.num_parameters():,} parameters")

    # 3. Train and evaluate with the paper's SGD + cosine recipe.
    history = experiment.fit()
    accuracy = experiment.evaluate()
    print(f"trained {spec.train.epochs} epochs: "
          f"final train acc {history.final_train_accuracy:.3f}, test acc {accuracy:.3f}")

    # 4. Analytical cost profile.
    profile = experiment.profile()
    print(f"profile: {profile['macs']:,} MACs/sample, "
          f"{profile['training_memory_bytes'] / 2**20:.1f} MiB training memory "
          f"@ batch {spec.profile.batch_size}")

    # 5. PPML conversion and online-cost savings.
    _, ppml = experiment.to_ppml()
    print_table(
        ["Metric", "Before (ReLU)", "After (quadratic)"],
        [["online latency (ms)",
          f"{ppml['online_latency_ms_before']:.1f}", f"{ppml['online_latency_ms_after']:.1f}"],
         ["online comm (MB)",
          f"{ppml['online_comm_mb_before']:.1f}", f"{ppml['online_comm_mb_after']:.1f}"]],
        title=f"PPML savings under {spec.ppml.protocol}",
    )

    # 6. Everything the run produced, serialized back to JSON.
    out_path = os.path.join(tempfile.gettempdir(), "experiment_api_results.json")
    experiment.save_results(out_path)
    with open(out_path) as fh:
        steps = sorted(json.load(fh)["results"])
    print(f"\nresults for steps {steps} written to {out_path}")


if __name__ == "__main__":
    main()
