"""Reverse-mode backward engine.

Given a root tensor, the engine topologically sorts the recorded graph and
propagates gradients from the root to every leaf that requires them.  Saved
intermediates are released as soon as a node's backward has run, which is the
behaviour the paper's memory profiler observes (forward ramps memory up,
backward releases it; Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


def backward(root, grad: Optional[np.ndarray] = None, retain_graph: bool = False) -> None:
    """Run back-propagation from ``root``.

    Parameters
    ----------
    root : Tensor
        The tensor to differentiate (typically a scalar loss).
    grad : ndarray, optional
        Upstream gradient; defaults to ones (required to be omitted only for
        scalars, mirroring PyTorch's behaviour).
    retain_graph : bool
        Keep saved intermediates so backward can be called again.
    """
    if grad is None:
        if root.data.size != 1:
            raise RuntimeError(
                "grad must be specified for non-scalar outputs; got shape "
                f"{root.data.shape}"
            )
        grad = np.ones_like(root.data)
    else:
        grad = np.asarray(grad, dtype=root.data.dtype)

    # Topological order over nodes reachable from the root.
    topo: List = []
    visited = set()
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited or node._ctx is None:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._ctx.parents:
            if parent is not None and parent._ctx is not None and id(parent) not in visited:
                stack.append((parent, False))

    # Gradient accumulation keyed by tensor identity.
    grads: Dict[int, np.ndarray] = {id(root): grad}

    for node in reversed(topo):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        ctx = node._ctx
        input_grads = ctx.backward(node_grad)
        if not isinstance(input_grads, tuple):
            input_grads = (input_grads,)
        for parent, g in zip(ctx.parents, input_grads):
            if parent is None or g is None or not parent.requires_grad:
                continue
            g = np.asarray(g)
            if g.shape != parent.data.shape:
                g = g.reshape(parent.data.shape)
            if parent._ctx is None or parent._retain_grad:
                # Leaf (or explicitly retained): accumulate into .grad.
                if parent.grad is None:
                    parent.grad = g.copy() if g.base is not None else g
                else:
                    parent.grad = parent.grad + g
            if parent._ctx is not None:
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + g
                else:
                    grads[key] = g
        if not retain_graph:
            ctx.release_saved()

    # Handle the degenerate case where the root itself is a leaf.
    if root._ctx is None and root.requires_grad:
        if root.grad is None:
            root.grad = grad.copy()
        else:
            root.grad = root.grad + grad
