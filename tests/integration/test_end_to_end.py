"""Integration tests: cross-module workflows mirroring the paper's claims.

These are slower than unit tests but still sized for CPU seconds.  Each test
exercises a complete path through the library (data → model → training →
metric, or model → auto-builder → profiler) and checks a *relative* claim the
paper makes rather than an absolute number.
"""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor, randn
from repro.builder import AutoBuilder, QuadraticModelConfig
from repro.data import TensorDataset
from repro.data.synthetic import SyntheticImageClassification, circle_dataset, xor_dataset
from repro.models import FirstOrderMLP, QuadraticMLP, SmallConvNet
from repro.profiler import estimate_training_memory, profile_model
from repro.training import evaluate_classifier, train_classifier
from repro.utils import load_checkpoint, save_checkpoint, seed_everything


class TestQuadraticAdvantageOnToyTasks:
    """Single quadratic neurons solve what single linear neurons cannot (paper Sec. 2)."""

    def test_xor_quadratic_beats_linear(self):
        x, y = xor_dataset(400, seed=1)
        dataset = TensorDataset(x, y)

        quadratic = QuadraticMLP([2, 4, 2], neuron_type="OURS")
        linear = FirstOrderMLP([2, 2], activation=False)

        hist_quadratic = train_classifier(quadratic, dataset, epochs=15, batch_size=64, lr=0.05)
        hist_linear = train_classifier(linear, dataset, epochs=15, batch_size=64, lr=0.05)

        assert hist_quadratic.final_train_accuracy > 0.9
        assert hist_linear.final_train_accuracy < 0.7
        assert hist_quadratic.final_train_accuracy > hist_linear.final_train_accuracy + 0.2

    def test_circle_boundary_single_quadratic_layer(self):
        x, y = circle_dataset(400, seed=2)
        dataset = TensorDataset(x, y)
        model = QuadraticMLP([2, 4, 2], neuron_type="T2_4")
        history = train_classifier(model, dataset, epochs=15, batch_size=64, lr=0.05)
        assert history.final_train_accuracy > 0.85


class TestImageClassificationPipeline:
    def test_quadratic_convnet_learns_synthetic_cifar(self):
        train = SyntheticImageClassification(num_samples=192, num_classes=4, image_size=16,
                                             seed=0)
        test = SyntheticImageClassification(num_samples=96, num_classes=4, image_size=16,
                                            seed=0, split_seed=1)
        model = SmallConvNet(num_classes=4, image_size=16,
                             config=QuadraticModelConfig(neuron_type="OURS",
                                                         width_multiplier=0.5))
        history = train_classifier(model, train, test, epochs=4, batch_size=32, lr=0.05)
        assert history.final_train_accuracy > 0.6
        assert history.best_test_accuracy > 0.4  # far above the 0.25 chance level

    def test_hybrid_bp_model_trains_equivalently(self):
        """Hybrid BP is a memory optimisation: same accuracy trajectory."""
        train = SyntheticImageClassification(num_samples=128, num_classes=4, image_size=16,
                                             seed=0)
        seed_everything(5)
        composed = SmallConvNet(num_classes=4, image_size=16,
                                config=QuadraticModelConfig(neuron_type="OURS",
                                                            width_multiplier=0.5))
        seed_everything(5)
        hybrid = SmallConvNet(num_classes=4, image_size=16,
                              config=QuadraticModelConfig(neuron_type="OURS", hybrid_bp=True,
                                                          width_multiplier=0.5))
        h_composed = train_classifier(composed, train, epochs=2, batch_size=32, lr=0.05, seed=2)
        h_hybrid = train_classifier(hybrid, train, epochs=2, batch_size=32, lr=0.05, seed=2)
        assert abs(h_composed.final_train_accuracy - h_hybrid.final_train_accuracy) < 0.15


class TestAutoBuilderWorkflow:
    def test_convert_profile_and_train(self):
        train = SyntheticImageClassification(num_samples=96, num_classes=4, image_size=16,
                                             seed=0)
        model = SmallConvNet(num_classes=4, image_size=16,
                             config=QuadraticModelConfig(neuron_type="first_order",
                                                         width_multiplier=0.5))
        params_before = profile_model(model, (3, 16, 16)).total_parameters

        report = AutoBuilder(neuron_type="OURS").convert(model)
        assert report.converted_layers == 3

        params_after = profile_model(model, (3, 16, 16)).total_parameters
        assert params_after > params_before

        history = train_classifier(model, train, epochs=2, batch_size=32, lr=0.05)
        assert np.isfinite(history.train_loss[-1])
        assert history.final_train_accuracy > 0.3

    def test_memory_ordering_first_order_vs_quadratic_vs_hybrid(self):
        """Fig. 5 + Fig. 8 combined: naive quadratic > first-order, hybrid < naive."""
        def build(neuron_type, hybrid=False):
            return SmallConvNet(num_classes=4, image_size=16,
                                config=QuadraticModelConfig(neuron_type=neuron_type,
                                                            hybrid_bp=hybrid,
                                                            width_multiplier=0.5))

        est_first = estimate_training_memory(build("first_order"), (3, 16, 16), num_classes=4)
        est_quad = estimate_training_memory(build("OURS"), (3, 16, 16), num_classes=4)
        est_hybrid = estimate_training_memory(build("OURS", hybrid=True), (3, 16, 16),
                                              num_classes=4)
        batch = 128
        assert est_quad.total_bytes(batch) > est_first.total_bytes(batch)
        assert est_hybrid.total_bytes(batch) < est_quad.total_bytes(batch)


class TestSerialization:
    def test_save_load_checkpoint_roundtrip(self, tmp_path):
        model = SmallConvNet(num_classes=4, image_size=16,
                             config=QuadraticModelConfig(neuron_type="OURS",
                                                         width_multiplier=0.5))
        x = randn(2, 3, 16, 16)
        model.eval()
        expected = model(x).data.copy()
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)

        restored = SmallConvNet(num_classes=4, image_size=16,
                                config=QuadraticModelConfig(neuron_type="OURS",
                                                            width_multiplier=0.5))
        load_checkpoint(restored, path)
        restored.eval()
        assert np.allclose(restored(x).data, expected, atol=1e-6)

    def test_results_json_roundtrip(self, tmp_path):
        from repro.utils import load_results, save_results

        path = str(tmp_path / "results.json")
        save_results({"accuracy": np.float32(0.5), "per_class": np.array([1, 2, 3])}, path)
        loaded = load_results(path)
        assert loaded["accuracy"] == pytest.approx(0.5)
        assert loaded["per_class"] == [1, 2, 3]

    def test_trained_model_evaluation_reproducible_after_reload(self, tmp_path):
        train = SyntheticImageClassification(num_samples=64, num_classes=4, image_size=16)
        model = SmallConvNet(num_classes=4, image_size=16,
                             config=QuadraticModelConfig(width_multiplier=0.5))
        train_classifier(model, train, epochs=1, batch_size=32)
        from repro.data import DataLoader

        loader = DataLoader(train, batch_size=32)
        acc_before = evaluate_classifier(model, loader)
        path = str(tmp_path / "trained.npz")
        save_checkpoint(model, path)
        restored = SmallConvNet(num_classes=4, image_size=16,
                                config=QuadraticModelConfig(width_multiplier=0.5))
        load_checkpoint(restored, path)
        assert evaluate_classifier(restored, loader) == pytest.approx(acc_before, abs=1e-6)


class TestPaperCodeExample:
    """The construction-function code snippet from Sec. 4.2 must work verbatim-ish."""

    def test_construction_function_pattern(self):
        from repro import quadratic as qua

        cfg = [8, 16]
        layers = []
        in_channels = 3
        for v in cfg:
            layers += [qua.type2(in_channels, v, kernel_size=3, padding=1), nn.ReLU()]
            in_channels = v
        model = nn.Sequential(*layers)
        assert model(randn(1, 3, 8, 8)).shape == (1, 16, 8, 8)

    def test_quadratic_layer_interchangeable_with_first_order(self):
        """A quadratic layer can replace any first-order conv in a given model (P4)."""
        from repro.quadratic import QuadraticConv2d

        model = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1), nn.ReLU(),
                              nn.Conv2d(8, 4, 3, padding=1))
        model.register_module("0", QuadraticConv2d(3, 8, kernel_size=3, padding=1))
        out = model(randn(2, 3, 8, 8))
        assert out.shape == (2, 4, 8, 8)
        out.sum().backward()
