"""Table 6 — SSD object detection: first-order vs. quadratic backbone, ± pre-training.

The paper trains SSD with a VGG-16 backbone on PASCAL VOC in four settings —
{first-order, QuadraNN} × {Kaiming init, ImageNet pre-trained} — and reports
per-class AP and total mAP.  Headline findings: the quadratic backbone helps
substantially when training from scratch, and still edges out the first-order
backbone when both are pre-trained.

The scaled reproduction uses the synthetic detection dataset and a compact
SSD.  Checks are structural: training reduces the multibox loss, mAP is a
valid number for all four rows, and the pre-training pipeline actually copies
backbone weights.
"""

import numpy as np
import pytest

from common import fresh_seed, save_experiment
from repro.builder import QuadraticModelConfig
from repro.data.synthetic import SyntheticDetectionDataset, SyntheticImageClassification
from repro.models import build_ssd
from repro.training import evaluate_detector, load_pretrained_backbone, pretrain_backbone, train_detector
from repro.utils import print_table

IMAGE = 64
NUM_CLASSES = 4
WIDTH = 0.25
EPOCHS = 2
TRAIN_IMAGES = 48
TEST_IMAGES = 24


def _pretrained_state(neuron_type: str):
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=WIDTH)
    pretrain_data = SyntheticImageClassification(num_samples=96, num_classes=6, image_size=32,
                                                 seed=6)
    state, _ = pretrain_backbone(config, pretrain_data, epochs=1, batch_size=16,
                                 max_batches_per_epoch=4, seed=6)
    return state


def test_table6_detection(benchmark):
    fresh_seed(60)
    train_set = SyntheticDetectionDataset(num_samples=TRAIN_IMAGES, image_size=IMAGE,
                                          num_classes=NUM_CLASSES, seed=1)
    test_set = SyntheticDetectionDataset(num_samples=TEST_IMAGES, image_size=IMAGE,
                                         num_classes=NUM_CLASSES, seed=2)
    class_names = train_set.class_names

    settings = [
        ("1st order", "first_order", False),
        ("QuadraNN", "OURS", False),
        ("1st order (pre-trained)", "first_order", True),
        ("QuadraNN (pre-trained)", "OURS", True),
    ]

    pretrained_cache = {}
    rows, results = [], {}
    for index, (name, neuron_type, pretrained) in enumerate(settings):
        fresh_seed(61 + index)
        detector = build_ssd(num_classes=NUM_CLASSES, image_size=IMAGE,
                             neuron_type=neuron_type, width_multiplier=WIDTH)
        copied = 0
        if pretrained:
            if neuron_type not in pretrained_cache:
                pretrained_cache[neuron_type] = _pretrained_state(neuron_type)
            copied = load_pretrained_backbone(detector, pretrained_cache[neuron_type])

        history = train_detector(detector, train_set, epochs=EPOCHS, batch_size=8, lr=5e-3,
                                 max_batches_per_epoch=4, seed=17)
        evaluation = evaluate_detector(detector, test_set, batch_size=8, score_threshold=0.2)
        per_class = evaluation["per_class_ap"]
        rows.append([name, "yes" if pretrained else "no"]
                    + [round(float(ap), 2) if np.isfinite(ap) else "-" for ap in per_class]
                    + [round(evaluation["map"], 3)])
        results[name] = {
            "pretrained": pretrained,
            "copied_tensors": copied,
            "final_loss": history.final_loss,
            "initial_loss": history.loss[0],
            "map": evaluation["map"],
            "per_class_ap": [float(ap) for ap in per_class],
        }

    print()
    print_table(["Model", "Pre-trained"] + list(class_names) + ["Total mAP"], rows,
                title="Table 6 (reproduced, scaled): SSD detection on synthetic VOC stand-in")
    save_experiment("table6_detection", results)

    for name, entry in results.items():
        # Multibox training made progress and produced a valid mAP.
        assert np.isfinite(entry["final_loss"])
        assert entry["final_loss"] <= entry["initial_loss"] * 1.5
        assert 0.0 <= entry["map"] <= 1.0
    # Pre-training actually copied backbone tensors.
    assert results["QuadraNN (pre-trained)"]["copied_tensors"] > 0
    assert results["1st order (pre-trained)"]["copied_tensors"] > 0

    # Timed kernel: one SSD inference pass with the quadratic backbone.
    detector = build_ssd(num_classes=NUM_CLASSES, image_size=IMAGE, neuron_type="OURS",
                         width_multiplier=WIDTH)
    images = np.stack([test_set[i][0] for i in range(4)])
    from repro.autodiff import Tensor

    benchmark(lambda: detector.detect(Tensor(images), score_threshold=0.3))
