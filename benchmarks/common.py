"""Shared configuration and helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at a *scaled*
workload (synthetic data, reduced widths/epochs) so that the full suite runs
on a CPU in minutes.  The scaling constants live here so a user with more
time can raise them in one place; the relative comparisons the paper makes
(who wins, by roughly what factor) are preserved at any scale.

Each benchmark

* trains/evaluates the models of the corresponding experiment,
* prints the paper-style table via :func:`repro.utils.print_table`,
* saves the raw numbers to ``benchmarks/results/<experiment>.json``, and
* uses the ``benchmark`` fixture on a representative kernel (one training or
  inference step) so ``pytest --benchmark-only`` also reports timing.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.data.synthetic import SyntheticImageClassification
from repro.utils import save_results, seed_everything

# --------------------------------------------------------------------------- #
# Global scale knobs (raise these for a higher-fidelity reproduction)
# --------------------------------------------------------------------------- #

#: width multiplier applied to every backbone (paper uses 1.0)
WIDTH = 0.25
#: samples in the synthetic training sets (paper: 50k CIFAR images)
TRAIN_SAMPLES = 192
#: samples in the synthetic test sets (paper: 10k CIFAR images)
TEST_SAMPLES = 96
#: training epochs per model (paper: 200)
EPOCHS = 3
#: batches per epoch cap
MAX_BATCHES = 6
#: mini-batch size (paper: 256 / 128)
BATCH_SIZE = 16
#: image resolution for the classification benchmarks (paper: 32 / 64)
IMAGE_SIZE = 16
#: number of classes for the CIFAR-10 stand-in
NUM_CLASSES = 6

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def classification_data(num_classes: int = NUM_CLASSES, image_size: int = IMAGE_SIZE,
                        seed: int = 0):
    """Train/test synthetic classification datasets sharing class recipes."""
    train = SyntheticImageClassification(num_samples=TRAIN_SAMPLES, num_classes=num_classes,
                                         image_size=image_size, seed=seed, split_seed=0)
    test = SyntheticImageClassification(num_samples=TEST_SAMPLES, num_classes=num_classes,
                                        image_size=image_size, seed=seed, split_seed=1)
    return train, test


def save_experiment(name: str, results: Dict) -> str:
    """Persist an experiment's numbers under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    save_results(results, path)
    return path


def append_trajectory(name: str, record: Dict) -> str:
    """Append one run's headline numbers to ``results/trajectory.jsonl``.

    One JSON object per line: ``{"benchmark", "timestamp", **record}``.
    The per-benchmark ``<name>.json`` snapshot is overwritten on every run;
    this file is the append-only history — the trend line a perf PR points
    at to show the before/after, and what :func:`load_trajectory` reads to
    compare a run against the previous one.
    """
    import json
    import time

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "trajectory.jsonl")
    entry = {"benchmark": str(name), "timestamp": time.time(), **record}
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_trajectory(name: str = None) -> list:
    """Trajectory records oldest-first, optionally one benchmark's only.

    Tolerates a truncated final line (a run killed mid-append) by skipping
    anything that does not parse.
    """
    import json

    path = os.path.join(RESULTS_DIR, "trajectory.jsonl")
    if not os.path.exists(path):
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if name is None or entry.get("benchmark") == name:
                records.append(entry)
    return records


def fresh_seed(offset: int = 0) -> None:
    """Deterministic seeding per benchmark."""
    seed_everything(1234 + offset)


def quick_mode(argv=None) -> bool:
    """True when a benchmark runs as the CI regression gate.

    Enabled by the ``--quick`` flag or the ``REPRO_BENCH_QUICK`` env var
    (any value but ``""``/``"0"``).  Quick mode shrinks measurement budgets
    but keeps every assertion — one shared detector so the CI gates cannot
    drift apart on what "quick" means.
    """
    import sys

    argv = sys.argv[1:] if argv is None else argv
    return "--quick" in argv or os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def mb(nbytes: float) -> float:
    """Bytes → mebibytes."""
    return float(nbytes) / (1024 ** 2)


def gib(nbytes: float) -> float:
    """Bytes → gibibytes."""
    return float(nbytes) / (1024 ** 3)
