"""CLI surfaces of the compute-backend registry (drift-proofed).

Same discipline as the ``repro list`` families: every flag default, help
string, error message and table that mentions backends is *generated from*
:data:`repro.backends.BACKENDS`, so registering a fourth engine updates all
of them at once.  These tests pin that property — they iterate the registry,
never a hard-coded name list.
"""

from __future__ import annotations

import json

import pytest

from repro.backends import backend_description, backend_names
from repro.cli import build_parser, main
from repro.cli.main import BACKEND_CHOICES, LIST_CHOICES


def run(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


def subcommand_help(capsys, command: str) -> str:
    with pytest.raises(SystemExit):
        build_parser().parse_args([command, "--help"])
    return capsys.readouterr().out


# --------------------------------------------------------------------------- #
# Registry-regenerated surfaces
# --------------------------------------------------------------------------- #

def test_backend_choices_are_generated_from_the_registry():
    assert BACKEND_CHOICES == backend_names()
    assert "backends" in LIST_CHOICES


def test_list_backends_prints_every_registered_engine(capsys):
    out = run(["list", "backends"], capsys)
    for name in backend_names():
        assert name in out
        assert backend_description(name) in out
    assert "yes" in out and "no" in out  # the exactness column is honest


@pytest.mark.parametrize("command", ["infer", "serve", "profile"])
def test_backend_flag_help_names_every_engine(capsys, command):
    help_text = subcommand_help(capsys, command)
    assert "--backend" in help_text
    for name in backend_names():
        assert name in help_text, f"'repro {command} --help' omits backend '{name}'"


def test_infer_error_names_every_engine(capsys):
    assert main(["infer", "smoke", "--backend", "cuda"]) == 2
    err = capsys.readouterr().err
    assert "cuda" in err
    for name in backend_names():
        assert name in err


def test_serve_error_names_every_engine(capsys):
    assert main(["serve", "smoke", "--backend", "tpu"]) == 2
    err = capsys.readouterr().err
    for name in backend_names():
        assert name in err


def test_profile_error_names_every_engine(capsys):
    assert main(["profile", "--model", "lenet", "--num-classes", "4",
                 "--compiled", "--backend", "cuda"]) == 2
    err = capsys.readouterr().err
    for name in backend_names():
        assert name in err


# --------------------------------------------------------------------------- #
# End-to-end flag behavior
# --------------------------------------------------------------------------- #

def test_infer_reports_backend_and_optimizer(capsys):
    out = run(["infer", "smoke", "--samples", "4", "--repeats", "1",
               "--backend", "threaded", "--json"], capsys)
    payload = json.loads(out)
    assert payload["backend"] == "threaded"
    assert payload["optimization"]["level"] == "default"
    assert payload["max_abs_diff"] <= 1e-6


def test_infer_optimize_none_disables_rewrites(capsys):
    out = run(["infer", "smoke", "--samples", "4", "--repeats", "1",
               "--optimize", "none", "--json"], capsys)
    payload = json.loads(out)
    assert payload["optimization"]["level"] == "none"
    assert sum(value for key, value in payload["optimization"].items()
               if key != "level") == 0
    assert payload["max_abs_diff"] <= 1e-6


def test_infer_rejects_unknown_optimize_level(capsys):
    assert main(["infer", "smoke", "--optimize", "O3"]) == 2
    assert "none, default, full" in capsys.readouterr().err


def test_infer_table_shows_backend(capsys):
    out = run(["infer", "smoke", "--samples", "4", "--repeats", "1",
               "--backend", "int8"], capsys)
    assert "int8" in out
    assert "optimizer rewrites" in out


def test_profile_compiled_latency_reports_backend(capsys):
    out = run(["profile", "--model", "lenet", "--image-size", "32",
               "--num-classes", "4", "--latency", "--latency-repeats", "1",
               "--batch-size", "4", "--compiled", "--backend", "threaded"], capsys)
    assert "compiled latency / batch (threaded)" in out
