"""``repro.builder`` — configuration-driven construction and the QDNN auto-builder."""

from .auto_builder import (
    AutoBuilder,
    ConversionReport,
    quadratize_module,
    reduce_mobilenet_cfg,
    reduce_resnet_blocks,
    reduce_vgg_cfg,
)
from .config import (
    MOBILENET_CFGS,
    RESNET_BLOCKS,
    VGG_CFGS,
    QuadraticModelConfig,
    conv_layer_count,
    scale_vgg_cfg,
)
from .constructors import (
    build_classifier_head,
    build_mlp,
    build_plain_convnet,
    conv_block,
    make_conv,
    make_linear,
)
from .indicator import LayerIndicator, compute_layer_indicators, measure_accuracy_drop, removal_order

__all__ = [
    "QuadraticModelConfig",
    "VGG_CFGS",
    "RESNET_BLOCKS",
    "MOBILENET_CFGS",
    "scale_vgg_cfg",
    "conv_layer_count",
    "make_conv",
    "make_linear",
    "conv_block",
    "build_plain_convnet",
    "build_classifier_head",
    "build_mlp",
    "AutoBuilder",
    "ConversionReport",
    "quadratize_module",
    "reduce_vgg_cfg",
    "reduce_resnet_blocks",
    "reduce_mobilenet_cfg",
    "LayerIndicator",
    "compute_layer_indicators",
    "measure_accuracy_drop",
    "removal_order",
]
