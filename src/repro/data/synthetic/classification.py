"""Synthetic image-classification workloads (CIFAR / Tiny-ImageNet stand-ins).

The paper evaluates on CIFAR-10, CIFAR-100 and Tiny-ImageNet, which are not
available offline.  These generators produce procedurally generated images
with the same tensor shapes and configurable class counts, designed so that

* classification requires genuinely non-linear feature extraction
  (each class is characterised by a *product* of two oriented gratings —
  an interference pattern — plus a class-specific blob), and
* the relative comparison between first-order and quadratic networks remains
  meaningful: more expressive neurons separate the multiplicative structure
  with fewer layers, mirroring the paper's argument.

Images are generated eagerly at construction time (they are small) so that
``__getitem__`` is cheap and the DataLoader timing numbers measure the model,
not the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..dataset import Dataset


@dataclass
class ClassRecipe:
    """Latent parameters describing how images of one class are generated."""

    freq_a: float
    theta_a: float
    freq_b: float
    theta_b: float
    blob_center: Tuple[float, float]
    blob_radius: float
    color: np.ndarray  # (3,) channel mixing weights


def _make_recipes(num_classes: int, rng: np.random.Generator) -> list[ClassRecipe]:
    recipes = []
    for c in range(num_classes):
        recipes.append(
            ClassRecipe(
                freq_a=float(rng.uniform(1.5, 6.0)),
                theta_a=float(rng.uniform(0, np.pi)),
                freq_b=float(rng.uniform(1.5, 6.0)),
                theta_b=float(rng.uniform(0, np.pi)),
                blob_center=(float(rng.uniform(0.25, 0.75)), float(rng.uniform(0.25, 0.75))),
                blob_radius=float(rng.uniform(0.12, 0.3)),
                color=rng.dirichlet(np.ones(3)).astype(np.float32),
            )
        )
    return recipes


def _grating(grid_x: np.ndarray, grid_y: np.ndarray, freq: float, theta: float,
             phase: float) -> np.ndarray:
    direction = grid_x * np.cos(theta) + grid_y * np.sin(theta)
    return np.sin(2 * np.pi * freq * direction + phase)


class SyntheticImageClassification(Dataset):
    """Procedural image-classification dataset.

    Parameters
    ----------
    num_samples : int
        Number of images.
    num_classes : int
        Number of classes (10 for the CIFAR-10 stand-in, 100 for CIFAR-100,
        200 for Tiny-ImageNet).
    image_size : int
        Spatial resolution (32 for CIFAR, 64 for Tiny-ImageNet).
    noise : float
        Standard deviation of the additive pixel noise.
    seed : int
        Seed controlling both the class recipes and the per-sample jitter.
        Datasets created with the same seed and class count share recipes, so
        train/test splits generated with different ``split_seed`` values are
        drawn from the same underlying distribution.
    split_seed : int
        Extra seed for per-sample randomness, letting callers build i.i.d.
        train and test sets.
    transform : callable, optional
        Per-sample transform applied on access.
    """

    def __init__(self, num_samples: int = 1024, num_classes: int = 10, image_size: int = 32,
                 channels: int = 3, noise: float = 0.08, seed: int = 0, split_seed: int = 0,
                 transform: Optional[Callable[[np.ndarray], np.ndarray]] = None) -> None:
        if num_classes < 2:
            raise ValueError(f"need at least two classes, got {num_classes}")
        self.num_classes = int(num_classes)
        self.image_size = int(image_size)
        self.channels = int(channels)
        self.transform = transform

        recipe_rng = np.random.default_rng(seed)
        sample_rng = np.random.default_rng((seed + 1) * 7919 + split_seed)
        self.recipes = _make_recipes(num_classes, recipe_rng)

        ys, xs = np.meshgrid(np.linspace(0, 1, image_size), np.linspace(0, 1, image_size),
                             indexing="ij")
        labels = sample_rng.integers(0, num_classes, size=num_samples)
        images = np.empty((num_samples, channels, image_size, image_size), dtype=np.float32)

        for i in range(num_samples):
            recipe = self.recipes[int(labels[i])]
            phase_a = sample_rng.uniform(0, 2 * np.pi)
            phase_b = sample_rng.uniform(0, 2 * np.pi)
            amp = sample_rng.uniform(0.7, 1.3)
            # Interference pattern: the *product* of two class-specific gratings.
            pattern = amp * (
                _grating(xs, ys, recipe.freq_a, recipe.theta_a, phase_a)
                * _grating(xs, ys, recipe.freq_b, recipe.theta_b, phase_b)
            )
            # Class-specific blob at a jittered position.
            cx = recipe.blob_center[0] + sample_rng.uniform(-0.08, 0.08)
            cy = recipe.blob_center[1] + sample_rng.uniform(-0.08, 0.08)
            dist2 = (xs - cx) ** 2 + (ys - cy) ** 2
            blob = np.exp(-dist2 / (2 * recipe.blob_radius ** 2))
            gray = 0.6 * pattern + 0.8 * blob
            img = recipe.color[:channels, None, None] * gray[None, :, :]
            img += sample_rng.normal(0.0, noise, size=img.shape)
            images[i] = img.astype(np.float32)

        self.images = images
        self.labels = labels.astype(np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        image = self.images[index]
        if self.transform is not None:
            image = self.transform(image)
        return image, int(self.labels[index])

    @property
    def class_counts(self) -> np.ndarray:
        """Number of samples per class (used by the sanity tests)."""
        return np.bincount(self.labels, minlength=self.num_classes)


def synthetic_cifar10(num_samples: int = 1024, seed: int = 0, split: str = "train",
                      transform=None) -> SyntheticImageClassification:
    """CIFAR-10 stand-in: 3×32×32 images, 10 classes."""
    return SyntheticImageClassification(
        num_samples=num_samples, num_classes=10, image_size=32, seed=seed,
        split_seed=0 if split == "train" else 1, transform=transform,
    )


def synthetic_cifar100(num_samples: int = 1024, seed: int = 0, split: str = "train",
                       transform=None) -> SyntheticImageClassification:
    """CIFAR-100 stand-in: 3×32×32 images, 100 classes."""
    return SyntheticImageClassification(
        num_samples=num_samples, num_classes=100, image_size=32, seed=seed,
        split_seed=0 if split == "train" else 1, transform=transform,
    )


def synthetic_tiny_imagenet(num_samples: int = 1024, seed: int = 0, split: str = "train",
                            num_classes: int = 200, image_size: int = 64,
                            transform=None) -> SyntheticImageClassification:
    """Tiny-ImageNet stand-in: 3×64×64 images, 200 classes by default."""
    return SyntheticImageClassification(
        num_samples=num_samples, num_classes=num_classes, image_size=image_size, seed=seed,
        split_seed=0 if split == "train" else 1, transform=transform,
    )


def synthetic_ilsvrc(num_samples: int = 2048, seed: int = 7, split: str = "train",
                     num_classes: int = 50, image_size: int = 32,
                     transform=None) -> SyntheticImageClassification:
    """ILSVRC-2012 stand-in used only to *pre-train* detector backbones (Table 6)."""
    return SyntheticImageClassification(
        num_samples=num_samples, num_classes=num_classes, image_size=image_size, seed=seed,
        split_seed=0 if split == "train" else 1, transform=transform,
    )
