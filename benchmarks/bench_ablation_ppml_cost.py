"""Ablation A3 — PPML online-cost savings from ReLU → quadratic conversion.

The paper's introduction motivates quadratic layers as a way to cut the cost
of privacy-preserving inference: hybrid protocols (Delphi, Gazelle) evaluate
every ReLU with a garbled circuit, and HE-only protocols (CryptoNets) cannot
evaluate ReLU at all.  This ablation quantifies both effects on a VGG-8
backbone:

* the online communication / latency of the original ReLU model vs. its
  square-activation and quadratic-no-ReLU conversions under each protocol, and
* that the converted models still train on the synthetic classification task
  (the conversions do not destroy the model).

Ported to the unified experiment API: the analysis backbone is the registry
model ``vgg8`` built from a :class:`~repro.experiment.ModelSpec`, and the
training sanity check runs each conversion through one
:class:`~repro.experiment.Experiment` whose ``ppml``/``fit`` steps replace
the previous hand-wiring.
"""

import numpy as np
import pytest

from common import (
    BATCH_SIZE,
    IMAGE_SIZE,
    MAX_BATCHES,
    NUM_CLASSES,
    WIDTH,
    classification_data,
    fresh_seed,
    save_experiment,
)
from repro import ppml
from repro.experiment import DataSpec, Experiment, ExperimentSpec, ModelSpec, PPMLSpec, TrainSpec
from repro.utils import print_table

#: Analysis uses the full-size VGG-8 at the paper's 32×32 CIFAR resolution; the
#: cost model is analytical, so there is no reason to scale it down.
ANALYSIS_INPUT = (3, 32, 32)
#: Training sanity check uses the benchmark-scaled configuration.
TRAIN_GENOME = {"stage_depths": [1, 1], "stage_widths": [16, 32],
                "neuron_type": "first_order"}
EPOCHS = 2
CHANCE = 1.0 / NUM_CLASSES

#: The analysis backbone as a declarative spec: the zoo VGG-8, first-order.
ANALYSIS_SPEC = ModelSpec(name="vgg8", neuron_type="first_order", num_classes=10)


def _analysis_model():
    return ANALYSIS_SPEC.build()


def _variants():
    """(name, model) pairs: the ReLU baseline and its PPML conversions."""
    baseline = _analysis_model()
    square, square_report = ppml.to_ppml_friendly(_analysis_model(), strategy="square",
                                                  inplace=False)
    quadratic, quad_report = ppml.to_ppml_friendly(_analysis_model(),
                                                   strategy="quadratic_no_relu", inplace=False)
    return [
        ("First-order (ReLU)", baseline, None),
        ("Square activations (CryptoNets recipe)", square, square_report),
        ("QuadraNN, no ReLU (this paper)", quadratic, quad_report),
    ]


def test_ablation_ppml_cost(benchmark):
    fresh_seed(90)
    variants = _variants()

    rows, results = [], {}
    reports = {}
    for name, model, conversion in variants:
        per_protocol = ppml.compare_protocols(model, ANALYSIS_INPUT)
        reports[name] = per_protocol
        delphi = per_protocol["delphi"]
        cryptonets = per_protocol["cryptonets"]
        rows.append([
            name,
            delphi.relu_count,
            delphi.mult_count,
            round(delphi.total.megabytes, 2),
            round(delphi.total.milliseconds, 2),
            "yes" if cryptonets.runnable else "no",
        ])
        results[name] = {
            "relu_ops": delphi.relu_count,
            "secure_mults": delphi.mult_count,
            "delphi_comm_mb": delphi.total.megabytes,
            "delphi_latency_ms": delphi.total.milliseconds,
            "delphi_relu_share": delphi.relu_share(),
            "cryptonets_runnable": cryptonets.runnable,
            "parameters": model.num_parameters(),
            "conversion": None if conversion is None else {
                "activations_replaced": conversion.activations_replaced,
                "layers_quadratized": conversion.layers_quadratized,
                "maxpools_replaced": conversion.maxpools_replaced,
            },
        }

    print()
    print_table(
        ["Model", "ReLU ops", "Secure mults", "Delphi comm (MB)", "Delphi latency (ms)",
         "CryptoNets runnable"],
        rows,
        title="Ablation A3 (PPML): online cost of ReLU vs. quadratic models, VGG-8 at 32x32",
    )

    # --- The paper's PPML claims -------------------------------------------------
    baseline = reports["First-order (ReLU)"]["delphi"]
    quadratic = reports["QuadraNN, no ReLU (this paper)"]["delphi"]
    square = reports["Square activations (CryptoNets recipe)"]["delphi"]
    # ReLU evaluation dominates the baseline's online cost.
    assert baseline.relu_share() > 0.9
    # Both conversions remove every garbled-circuit operation and are cheaper online.
    assert quadratic.relu_count == 0 and square.relu_count == 0
    assert quadratic.total.microseconds < baseline.total.microseconds
    assert square.total.microseconds < baseline.total.microseconds
    # Only the converted models can run under the HE-only protocol at all.
    assert not reports["First-order (ReLU)"]["cryptonets"].runnable
    assert reports["Square activations (CryptoNets recipe)"]["cryptonets"].runnable
    assert reports["QuadraNN, no ReLU (this paper)"]["cryptonets"].runnable

    # --- Conversions keep the model trainable ------------------------------------
    # One Experiment per conversion strategy: build the first-order backbone
    # from its genome spec, convert via the ppml step, then train the result.
    datasets = classification_data()
    accuracies = {}
    for index, strategy in enumerate(("square", "quadratic_no_relu")):
        spec = ExperimentSpec(
            seed=1234 + 91 + index,  # fresh_seed()-compatible model-init seeding
            model=ModelSpec(genome=dict(TRAIN_GENOME), num_classes=NUM_CLASSES,
                            width_multiplier=WIDTH),
            data=DataSpec(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE),
            train=TrainSpec(epochs=EPOCHS, batch_size=BATCH_SIZE, lr=0.05,
                            max_batches_per_epoch=MAX_BATCHES, seed=42),
            ppml=PPMLSpec(strategy=strategy, protocol="delphi"),
            steps=["build", "ppml"],
        )
        experiment = Experiment(spec, datasets=datasets)
        experiment.build()
        converted, _ = experiment.to_ppml()
        # The ppml step converts a copy; to *train* the converted model, feed
        # it back into the facade explicitly.
        trained = Experiment(spec, model=converted, datasets=datasets)
        history = trained.fit()
        accuracies[strategy] = history.final_train_accuracy
        assert history.final_train_accuracy > CHANCE
    results["train_accuracy_after_conversion"] = accuracies

    save_experiment("ablation_ppml_cost", results)

    # Timed kernel: the analytical cost model itself (count + estimate).
    model = _analysis_model()
    benchmark(lambda: ppml.analyse_model(model, ANALYSIS_INPUT, protocol="delphi"))
