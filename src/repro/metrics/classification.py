"""Classification metrics: top-k accuracy and confusion matrices."""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..autodiff.tensor import Tensor


def _to_array(values: Union[Tensor, np.ndarray]) -> np.ndarray:
    return values.data if isinstance(values, Tensor) else np.asarray(values)


def accuracy(logits: Union[Tensor, np.ndarray], targets: Union[Tensor, np.ndarray]) -> float:
    """Top-1 accuracy of class logits (or probabilities) against integer labels."""
    logits = _to_array(logits)
    targets = _to_array(targets).astype(np.int64)
    predictions = logits.argmax(axis=-1)
    return float((predictions == targets).mean())


def top_k_accuracy(logits: Union[Tensor, np.ndarray], targets: Union[Tensor, np.ndarray],
                   k: int = 5) -> float:
    """Top-k accuracy."""
    logits = _to_array(logits)
    targets = _to_array(targets).astype(np.int64)
    k = min(k, logits.shape[-1])
    top_k = np.argsort(logits, axis=-1)[:, -k:]
    return float(np.any(top_k == targets[:, None], axis=1).mean())


def confusion_matrix(logits: Union[Tensor, np.ndarray], targets: Union[Tensor, np.ndarray],
                     num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) matrix with true classes on rows."""
    logits = _to_array(logits)
    targets = _to_array(targets).astype(np.int64)
    predictions = logits.argmax(axis=-1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def per_class_accuracy(logits: Union[Tensor, np.ndarray], targets: Union[Tensor, np.ndarray],
                       num_classes: int) -> np.ndarray:
    """Accuracy restricted to each true class (nan for absent classes)."""
    matrix = confusion_matrix(logits, targets, num_classes)
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)
