"""Table 2 — convergence of quadratic neuron designs on deep plain/residual nets.

The paper's Table 2 trains T2 / T3 / T4 / T4+Identity / Ours inside VGG-8,
VGG-16 and ResNet-32 on CIFAR-10 and reports train/test accuracy.  The
finding: the designs without a linear/identity path stop converging once the
plain network gets deep (VGG-16 collapses to 10% = chance), while the
identity and linear-term designs keep training; residual structures save all
designs.

This benchmark reproduces the same contrast at reduced scale: a shallow plain
QDNN, a deep plain QDNN and a small residual QDNN trained on the synthetic
CIFAR-10 stand-in.  The structural claim checked is the *relative* one —
designs with a linear path must beat the pure second-order designs on the
deep plain network by a wide margin, and the deep plain network must not be a
problem for our design.
"""

import numpy as np
import pytest

from common import BATCH_SIZE, IMAGE_SIZE, MAX_BATCHES, NUM_CLASSES, WIDTH, classification_data, fresh_seed, save_experiment
from repro import nn
from repro.builder import QuadraticModelConfig
from repro.builder.constructors import conv_block
from repro.models import ResNet, vgg_from_cfg
from repro.training import train_classifier
from repro.utils import print_table

DESIGNS = ["T2", "T3", "T4", "T4_ID", "OURS"]

# Scaled structures standing in for VGG-8 / VGG-16 / ResNet-32.
SHALLOW_CFG = [16, "M", 32, "M"]                                  # "VGG-8"
DEEP_CFG = [16, 16, "M", 32, 32, 32, "M", 32, 32, 32, "M"]        # "VGG-16"
RESNET_BLOCKS = [1, 1, 1]                                         # "ResNet-32"

EPOCHS = 4
CHANCE = 1.0 / NUM_CLASSES


def _train(model, train_set, test_set, seed):
    # Table 2 is the convergence-at-depth experiment, so it gets a slightly
    # larger budget than the other benches: every batch of the synthetic
    # training set, four epochs.
    return train_classifier(model, train_set, test_set, epochs=EPOCHS, batch_size=BATCH_SIZE,
                            lr=0.05, max_batches_per_epoch=None, seed=seed)


def _build_plain(cfg, design):
    if design != "T4_ID":
        config = QuadraticModelConfig(neuron_type=design, width_multiplier=WIDTH,
                                      use_batchnorm=True, use_activation=True)
        return vgg_from_cfg(cfg, num_classes=NUM_CLASSES, config=config)

    # T4+Identity needs matching input/output channels, so channel-changing
    # layers (the stem and stage transitions) use plain T4 while every
    # same-width layer adds the identity mapping — the closest faithful
    # rendering of the Table 2 baseline inside a VGG-style config.
    id_config = QuadraticModelConfig(neuron_type="T4_ID", width_multiplier=WIDTH)
    t4_config = QuadraticModelConfig(neuron_type="T4", width_multiplier=WIDTH)
    layers = []
    channels = 3
    for item in cfg:
        if item == "M":
            layers.append(nn.MaxPool2d(2))
            continue
        width = id_config.scaled(int(item))
        config = id_config if width == channels else t4_config
        layers.extend(conv_block(config, channels, width))
        channels = width
    features = nn.Sequential(*layers)
    head = nn.Sequential(nn.GlobalAvgPool2d(), nn.Linear(channels, NUM_CLASSES))
    return nn.Sequential(features, head)


def _build_resnet(design):
    config = QuadraticModelConfig(neuron_type=design, width_multiplier=WIDTH)
    if design == "T4_ID":
        # Residual blocks change channel counts; fall back to T4 inside blocks,
        # the residual connection itself provides the identity path (as in the paper).
        config = QuadraticModelConfig(neuron_type="T4", width_multiplier=WIDTH)
    return ResNet(RESNET_BLOCKS, num_classes=NUM_CLASSES, config=config)


def test_table2_convergence_of_neuron_designs(benchmark):
    fresh_seed(2)
    train_set, test_set = classification_data()

    results = {}
    rows = []
    for design_index, design in enumerate(DESIGNS):
        row = [design]
        entry = {}
        for structure_index, (structure, builder) in enumerate((
            ("VGG-8 (shallow plain)", lambda d=design: _build_plain(SHALLOW_CFG, d)),
            ("VGG-16 (deep plain)", lambda d=design: _build_plain(DEEP_CFG, d)),
            ("ResNet-32 (residual)", lambda d=design: _build_resnet(d)),
        )):
            fresh_seed(100 * design_index + structure_index)
            history = _train(builder(), train_set, test_set, seed=3)
            train_acc = history.final_train_accuracy
            test_acc = history.final_test_accuracy
            row.extend([round(train_acc, 3), round(test_acc, 3)])
            entry[structure] = {"train": train_acc, "test": test_acc}
        rows.append(row)
        results[design] = entry

    print()
    print_table(
        ["Design", "VGG8 train", "VGG8 test", "VGG16 train", "VGG16 test",
         "ResNet32 train", "ResNet32 test"],
        rows,
        title="Table 2 (reproduced, scaled): convergence of quadratic neuron designs",
    )
    save_experiment("table2_convergence", results)

    deep = "VGG-16 (deep plain)"
    # Our design must train the deep plain network above chance (at the paper's
    # scale the pure second-order designs collapse to exact chance here; at the
    # reduced CPU budget the contrast is narrower, so the margin is small)...
    assert results["OURS"][deep]["train"] > CHANCE
    # ...and must not collapse below the pure second-order designs on it.
    best_pure = max(results[d][deep]["train"] for d in ("T2", "T3", "T4"))
    assert results["OURS"][deep]["train"] >= best_pure - 0.15
    # Every design trains the shallow plain network above chance (paper row 1).
    for design in DESIGNS:
        assert results[design]["VGG-8 (shallow plain)"]["train"] > CHANCE + 0.05

    # Timed kernel: one training step of the deep plain QDNN with our neuron.
    model = _build_plain(DEEP_CFG, "OURS")
    from repro.autodiff import Tensor
    from repro.nn.losses import CrossEntropyLoss

    images = np.stack([train_set[i][0] for i in range(8)])
    labels = np.array([train_set[i][1] for i in range(8)])
    loss_fn = CrossEntropyLoss()

    def step():
        model.zero_grad()
        loss = loss_fn(model(Tensor(images)), labels)
        loss.backward()
        return loss.item()

    benchmark(step)
