"""Reusable output buffers for the compiled inference path.

Eager evaluation allocates a fresh array for every intermediate result of
every layer, every call.  At serving time the intermediate *shapes* are
stable — the same model sees the same input resolution and a small set of
micro-batch sizes — so the compiled path rents its scratch space from a
:class:`BufferPool` instead: one persistent array per (step, role, shape)
triple, written through NumPy ``out=`` arguments.  After the first call with
a given batch size a compiled forward performs close to zero element-wise
allocations.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np


class BufferPool:
    """A keyed pool of NumPy scratch arrays.

    Buffers are identified by an arbitrary hashable ``key`` (the compiler
    uses ``(step_index, role)``) plus the requested shape and dtype, so the
    same step can serve several batch sizes without aliasing.  Contents are
    never zeroed — callers must fully overwrite what they rent.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[Hashable, Tuple[int, ...], np.dtype], np.ndarray] = {}
        #: buffers handed out since creation (cache hits + misses); for tests
        self.requests = 0
        #: buffers actually allocated (cache misses)
        self.allocations = 0

    def get(self, key: Hashable, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Rent the buffer for ``key`` at ``shape``; allocated once, then reused."""
        full_key = (key, tuple(int(s) for s in shape), np.dtype(dtype))
        self.requests += 1
        buffer = self._buffers.get(full_key)
        if buffer is None:
            buffer = np.empty(full_key[1], dtype=full_key[2])
            self._buffers[full_key] = buffer
            self.allocations += 1
        return buffer

    def clear(self) -> None:
        """Drop every cached buffer (e.g. after an input-resolution change)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:
        return f"BufferPool({len(self)} buffers, {self.nbytes / 1024 ** 2:.2f} MiB)"
