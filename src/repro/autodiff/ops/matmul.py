"""Matrix-multiplication primitives (2-D and batched)."""

from __future__ import annotations

import numpy as np

from ..function import Context, Function, unbroadcast


class MatMul(Function):
    """``out = a @ b`` supporting 1-D, 2-D and batched operands (NumPy semantics)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        ctx.save_for_backward(a, b)
        return a @ b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved_tensors
        grad = np.asarray(grad)
        ga = gb = None

        if ctx.needs_input_grad[0]:
            if a.ndim == 1 and b.ndim == 1:
                ga = grad * b
            elif b.ndim == 1:
                # (..., n) @ (n,) -> (...,): each row's grad scales b.
                ga = np.expand_dims(grad, -1) * b
            elif a.ndim == 1:
                # (n,) @ (..., n, m) -> (..., m): sum over batch and columns.
                ga = unbroadcast(grad[..., None, :] @ np.swapaxes(b, -1, -2), (1, a.shape[0]))
                ga = ga.reshape(a.shape)
            else:
                ga = unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)

        if ctx.needs_input_grad[1]:
            if a.ndim == 1 and b.ndim == 1:
                gb = grad * a
            elif a.ndim == 1:
                # out[..., j] = sum_i a_i b[..., i, j]  =>  gb[..., i, j] = a_i grad[..., j]
                gb = a[:, None] * grad[..., None, :]
                gb = unbroadcast(gb, b.shape)
            elif b.ndim == 1:
                # out[...] = sum_j a[..., j] b_j  =>  gb_j = sum grad[...] a[..., j]
                gb = np.tensordot(grad, a, axes=(tuple(range(grad.ndim)),
                                                 tuple(range(a.ndim - 1))))
            else:
                gb = unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)

        return ga, gb


class Einsum(Function):
    """Differentiable ``einsum`` limited to two operands.

    The backward pass re-uses ``einsum`` by swapping the output subscript with
    the operand subscript being differentiated, which is valid whenever every
    index appearing in an operand also appears in either the other operand or
    the output (no internal sums hidden from the gradient).  That covers every
    contraction used inside this library (bilinear T1 neurons, attention-style
    reductions in the analysis tools).
    """

    @staticmethod
    def forward(ctx: Context, subscripts: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        ctx.subscripts = subscripts
        ctx.save_for_backward(a, b)
        return np.einsum(subscripts, a, b)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved_tensors
        in_spec, out_spec = ctx.subscripts.split("->")
        a_spec, b_spec = in_spec.split(",")
        ga = gb = None
        if ctx.needs_input_grad[1]:
            ga = np.einsum(f"{out_spec},{b_spec}->{a_spec}", grad, b)
        if ctx.needs_input_grad[2]:
            gb = np.einsum(f"{out_spec},{a_spec}->{b_spec}", grad, a)
        return None, ga, gb
