"""Image transforms for NCHW float arrays (CHW per sample).

Only the transforms the paper's training recipes rely on are provided:
normalisation, random crop with padding, horizontal flip, and composition.
All transforms operate on single-sample ``(C, H, W)`` float32 arrays so they
can run inside ``Dataset.__getitem__``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np


class _StatefulTransform:
    """Mixin for transforms drawing from an RNG stream.

    Exposing the stream's state lets training checkpoints capture augmentation
    position, so a resumed run draws the exact crops/flips/noise an
    uninterrupted run would have (bit-identical resume).
    """

    _rng: np.random.Generator

    def rng_state(self) -> dict:
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]) -> None:
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image

    # ------------------------------------------------------------- persistence
    def rng_state(self) -> list:
        """Per-transform RNG states (``None`` for stateless members)."""
        return [transform.rng_state() if hasattr(transform, "rng_state") else None
                for transform in self.transforms]

    def set_rng_state(self, states: Sequence) -> None:
        for transform, state in zip(self.transforms, states):
            if state is not None and hasattr(transform, "set_rng_state"):
                transform.set_rng_state(state)


class Normalize:
    """Channel-wise standardisation ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return (image - self.mean) / self.std


class RandomHorizontalFlip(_StatefulTransform):
    """Flip the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        self.p = float(p)
        self._rng = np.random.default_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class RandomCrop(_StatefulTransform):
    """Pad by ``padding`` pixels then crop back to the original size."""

    def __init__(self, size: int, padding: int = 4, seed: int = 0) -> None:
        self.size = int(size)
        self.padding = int(padding)
        self._rng = np.random.default_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        c, h, w = image.shape
        padded = np.pad(image, ((0, 0), (self.padding, self.padding),
                                (self.padding, self.padding)), mode="constant")
        top = int(self._rng.integers(0, 2 * self.padding + 1))
        left = int(self._rng.integers(0, 2 * self.padding + 1))
        return padded[:, top:top + self.size, left:left + self.size].copy()


class GaussianNoise(_StatefulTransform):
    """Add i.i.d. Gaussian noise (simple data augmentation / robustness probe)."""

    def __init__(self, std: float = 0.01, seed: int = 0) -> None:
        self.std = float(std)
        self._rng = np.random.default_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return image + self._rng.normal(0.0, self.std, size=image.shape).astype(np.float32)


class ToFloat:
    """Ensure the sample is float32 (images generated as uint8 pass through here)."""

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.dtype == np.uint8:
            return image.astype(np.float32) / 255.0
        return image.astype(np.float32)
