"""Object-detection metrics: VOC-style average precision and mAP (Table 6)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..models.detection_utils import iou_matrix


def average_precision(recall: np.ndarray, precision: np.ndarray,
                      use_11_point: bool = False) -> float:
    """Area under the precision–recall curve.

    ``use_11_point=True`` reproduces the original VOC2007 11-point
    interpolation; the default is the all-point interpolation used by later
    VOC releases (both are reported by the benchmark for completeness).
    """
    if len(recall) == 0:
        return 0.0
    if use_11_point:
        ap = 0.0
        for threshold in np.linspace(0, 1, 11):
            mask = recall >= threshold
            ap += (precision[mask].max() if mask.any() else 0.0) / 11.0
        return float(ap)
    # All-point interpolation: make precision monotonically decreasing.
    mrec = np.concatenate([[0.0], recall, [1.0]])
    mpre = np.concatenate([[0.0], precision, [0.0]])
    for i in range(len(mpre) - 2, -1, -1):
        mpre[i] = max(mpre[i], mpre[i + 1])
    changes = np.where(mrec[1:] != mrec[:-1])[0]
    return float(np.sum((mrec[changes + 1] - mrec[changes]) * mpre[changes + 1]))


def evaluate_detections(predictions: Sequence[Dict[str, np.ndarray]],
                        ground_truths: Sequence[Dict[str, np.ndarray]],
                        num_classes: int, iou_threshold: float = 0.5,
                        use_11_point: bool = False) -> Dict[str, object]:
    """Compute per-class AP and mAP over a dataset.

    Parameters
    ----------
    predictions : list of dicts with ``boxes`` (M, 4), ``scores`` (M,), ``labels`` (M,)
    ground_truths : list of dicts with ``boxes`` (G, 4), ``labels`` (G,)
    num_classes : int
    iou_threshold : float
        Minimum IoU for a detection to count as a true positive.

    Returns
    -------
    dict with keys ``per_class_ap`` (array of length num_classes) and ``map``.
    """
    if len(predictions) != len(ground_truths):
        raise ValueError("predictions and ground_truths must have the same length")

    per_class_ap = np.zeros(num_classes, dtype=np.float64)
    for cls in range(num_classes):
        # Gather all detections of this class across images, sorted by score.
        records: List[Tuple[float, int, np.ndarray]] = []
        total_gt = 0
        gt_boxes_per_image: List[np.ndarray] = []
        for image_index, gt in enumerate(ground_truths):
            mask = gt["labels"] == cls
            gt_boxes_per_image.append(gt["boxes"][mask])
            total_gt += int(mask.sum())
        for image_index, pred in enumerate(predictions):
            mask = pred["labels"] == cls
            for box, score in zip(pred["boxes"][mask], pred["scores"][mask]):
                records.append((float(score), image_index, box))
        if total_gt == 0:
            per_class_ap[cls] = np.nan
            continue
        if not records:
            per_class_ap[cls] = 0.0
            continue
        records.sort(key=lambda item: item[0], reverse=True)

        matched = [np.zeros(len(boxes), dtype=bool) for boxes in gt_boxes_per_image]
        tp = np.zeros(len(records))
        fp = np.zeros(len(records))
        for i, (_, image_index, box) in enumerate(records):
            gt_boxes = gt_boxes_per_image[image_index]
            if len(gt_boxes) == 0:
                fp[i] = 1
                continue
            ious = iou_matrix(box[None, :], gt_boxes)[0]
            best = int(ious.argmax())
            if ious[best] >= iou_threshold and not matched[image_index][best]:
                tp[i] = 1
                matched[image_index][best] = True
            else:
                fp[i] = 1
        cum_tp = np.cumsum(tp)
        cum_fp = np.cumsum(fp)
        recall = cum_tp / total_gt
        precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-9)
        per_class_ap[cls] = average_precision(recall, precision, use_11_point=use_11_point)

    valid = ~np.isnan(per_class_ap)
    return {
        "per_class_ap": per_class_ap,
        "map": float(per_class_ap[valid].mean()) if valid.any() else 0.0,
    }
