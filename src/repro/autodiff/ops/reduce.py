"""Reduction primitives: sum, mean, max, min, variance helpers."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..function import Context, Function

Axis = Optional[Union[int, Tuple[int, ...]]]


def _normalize_axis(axis: Axis, ndim: int) -> Optional[Tuple[int, ...]]:
    """Convert any accepted ``axis`` argument into a tuple of positive ints."""
    if axis is None:
        return None
    if isinstance(axis, (int, np.integer)):
        axis = (int(axis),)
    return tuple(a % ndim for a in axis)


def _expand_reduced(grad: np.ndarray, shape: Tuple[int, ...], axis: Optional[Tuple[int, ...]],
                    keepdims: bool) -> np.ndarray:
    """Re-insert reduced axes so ``grad`` broadcasts against the input shape."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    if not keepdims:
        for a in sorted(axis):
            grad = np.expand_dims(grad, a)
    return np.broadcast_to(grad, shape)


class Sum(Function):
    """``out = a.sum(axis, keepdims)``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: Axis = None, keepdims: bool = False) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.axis = _normalize_axis(axis, a.ndim)
        ctx.keepdims = keepdims
        return a.sum(axis=ctx.axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        g = _expand_reduced(np.asarray(grad), ctx.a_shape, ctx.axis, ctx.keepdims)
        return (np.ascontiguousarray(g), None, None)


class Mean(Function):
    """``out = a.mean(axis, keepdims)``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: Axis = None, keepdims: bool = False) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.axis = _normalize_axis(axis, a.ndim)
        ctx.keepdims = keepdims
        if ctx.axis is None:
            ctx.count = a.size
        else:
            ctx.count = int(np.prod([a.shape[i] for i in ctx.axis]))
        return a.mean(axis=ctx.axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        g = _expand_reduced(np.asarray(grad), ctx.a_shape, ctx.axis, ctx.keepdims)
        return (np.ascontiguousarray(g) / ctx.count, None, None)


class Max(Function):
    """``out = a.max(axis, keepdims)``; gradient routed to (all) argmax entries."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: Axis = None, keepdims: bool = False) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.axis = _normalize_axis(axis, a.ndim)
        ctx.keepdims = keepdims
        out = a.max(axis=ctx.axis, keepdims=True) if ctx.axis is not None else a.max()
        mask = (a == out).astype(a.dtype)
        mask /= mask.sum(axis=ctx.axis, keepdims=True)
        ctx.save_for_backward(mask)
        if ctx.axis is None:
            return np.asarray(out)
        return out if keepdims else np.squeeze(out, axis=ctx.axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved_tensors
        g = _expand_reduced(np.asarray(grad), ctx.a_shape, ctx.axis, ctx.keepdims)
        return (g * mask, None, None)


class Min(Function):
    """``out = a.min(axis, keepdims)``; gradient routed to (all) argmin entries."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: Axis = None, keepdims: bool = False) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.axis = _normalize_axis(axis, a.ndim)
        ctx.keepdims = keepdims
        out = a.min(axis=ctx.axis, keepdims=True) if ctx.axis is not None else a.min()
        mask = (a == out).astype(a.dtype)
        mask /= mask.sum(axis=ctx.axis, keepdims=True)
        ctx.save_for_backward(mask)
        if ctx.axis is None:
            return np.asarray(out)
        return out if keepdims else np.squeeze(out, axis=ctx.axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved_tensors
        g = _expand_reduced(np.asarray(grad), ctx.a_shape, ctx.axis, ctx.keepdims)
        return (g * mask, None, None)


class LogSumExp(Function):
    """Numerically stable ``log(sum(exp(a), axis))`` used by the softmax losses."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: int = -1, keepdims: bool = False) -> np.ndarray:
        ctx.axis = axis if axis >= 0 else a.ndim + axis
        ctx.keepdims = keepdims
        ctx.a_shape = a.shape
        m = a.max(axis=ctx.axis, keepdims=True)
        shifted = a - m
        sumexp = np.exp(shifted).sum(axis=ctx.axis, keepdims=True)
        out = m + np.log(sumexp)
        ctx.save_for_backward(np.exp(shifted) / sumexp)  # softmax along axis
        return out if keepdims else np.squeeze(out, axis=ctx.axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (softmax,) = ctx.saved_tensors
        g = np.asarray(grad)
        if not ctx.keepdims:
            g = np.expand_dims(g, ctx.axis)
        return (g * softmax, None, None)
