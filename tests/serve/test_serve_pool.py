"""WorkerPool behaviour: dispatch, bit-identity, crashes, backpressure, drain."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve import (
    PoolClosed,
    PoolSaturated,
    ServeConfig,
    WorkerCrashed,
    WorkerPool,
)


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def pool(smoke):
    """One 2-worker pool shared by the happy-path tests (startup is ~2 s)."""
    config = ServeConfig(workers=2, startup_timeout=120.0)
    with WorkerPool(smoke.spec, state=smoke.state, config=config) as running:
        yield running


class TestPoolServing:
    def test_outputs_are_bit_identical_to_the_single_process_predictor(self, pool, smoke):
        for sample, expected in zip(smoke.samples, smoke.expected):
            out = pool.predict(sample, timeout=60.0)
            assert out.dtype == expected.dtype
            assert np.array_equal(out, expected)

    def test_submit_returns_futures_that_resolve(self, pool, smoke):
        futures = [pool.submit(sample) for sample in smoke.samples]
        outputs = [future.result(timeout=60.0) for future in futures]
        # Concurrent submissions get coalesced into worker micro-batches, so
        # (as documented on BatchedPredictor) the answers may differ from the
        # batch-of-1 reference by BLAS float associativity — not bit-exact,
        # but tight.  Sequential requests (the test above) stay bit-identical.
        for out, expected in zip(outputs, smoke.expected):
            np.testing.assert_allclose(out, expected, rtol=1e-5)
        assert all(future.done() for future in futures)

    def test_dispatch_spreads_across_workers(self, pool, smoke):
        for _ in range(3):
            for sample in smoke.samples:
                pool.predict(sample, timeout=60.0)
        served = [worker["served"] for worker in pool.stats()["workers"]]
        # Least-loaded + round-robin tie-breaking: nobody is starved.
        assert all(count > 0 for count in served), served

    def test_stats_counters_are_consistent(self, pool, smoke):
        stats = pool.stats()
        assert stats["completed"] + stats["failed"] + stats["in_flight"] \
            == stats["submitted"]
        assert stats["accepting"] is True
        assert len(stats["workers"]) == 2

    def test_submit_before_start_raises(self, smoke):
        unstarted = WorkerPool(smoke.spec, state=smoke.state,
                               config=ServeConfig(workers=1))
        with pytest.raises(PoolClosed, match="not started"):
            unstarted.submit(smoke.samples[0])


class TestPoolFailureModes:
    def test_idle_worker_crash_is_respawned_and_serving_continues(self, smoke):
        config = ServeConfig(workers=1, startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            first = pool.predict(smoke.samples[0], timeout=60.0)
            pool._workers[0].process.kill()
            assert wait_until(lambda: pool.stats()["respawns"] >= 1), pool.stats()
            assert wait_until(lambda: pool.alive_workers() == 1)
            again = pool.predict(smoke.samples[0], timeout=60.0)
            assert np.array_equal(first, again)
            generations = [w["generation"] for w in pool.stats()["workers"]]
            assert generations == [1]

    def test_in_flight_request_is_retried_on_the_respawned_worker(self, smoke):
        config = ServeConfig(workers=1, max_retries=1, startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            future = pool.submit(smoke.samples[0])
            victim = pool._workers[0]
            assert future in [r.future for r in victim.in_flight.values()] or future.done()
            victim.process.kill()
            # The dispatcher must respawn the worker and replay the request —
            # the caller sees a normal (bit-identical) answer, just later.
            out = future.result(timeout=90.0)
            assert np.array_equal(out, smoke.expected[0])
            stats = pool.stats()
            assert stats["respawns"] >= 1
            # retried may be 0 in the rare case the answer raced the kill.
            assert stats["retried"] in (0, 1)

    def test_crash_without_retries_surfaces_worker_crashed(self, smoke):
        config = ServeConfig(workers=1, max_retries=0, startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            future = pool.submit_sleep(30.0)     # parked on the worker
            pool._workers[0].process.kill()
            with pytest.raises(WorkerCrashed, match="died with this request"):
                future.result(timeout=60.0)
            assert pool.stats()["failed"] >= 1

    def test_saturated_pool_sheds_load_at_the_watermark(self, smoke):
        config = ServeConfig(workers=1, watermark=2, startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            blocker = pool.submit_sleep(1.0)         # occupies the lone worker
            queued = pool.submit(smoke.samples[0])   # waits behind it
            with pytest.raises(PoolSaturated, match="watermark"):
                pool.submit(smoke.samples[1])        # third: over the watermark
            assert pool.stats()["rejected_saturated"] == 1
            # Shedding is temporary: the backlog drains and service resumes.
            assert blocker.result(timeout=60.0) is None
            assert np.array_equal(queued.result(timeout=60.0), smoke.expected[0])
            assert np.array_equal(pool.predict(smoke.samples[1], timeout=60.0),
                                  smoke.expected[1])

    def test_drain_stops_admissions_but_finishes_in_flight_work(self, smoke):
        config = ServeConfig(workers=1, startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            future = pool.submit(smoke.samples[0])
            assert pool.drain(timeout=60.0) is True
            assert future.done()
            with pytest.raises(PoolClosed, match="draining"):
                pool.submit(smoke.samples[1])

    def test_deterministic_startup_crash_does_not_spawn_storm(self, smoke):
        # A worker that can never come up (here: unknown model name) must be
        # given up on after MAX_EARLY_CRASHES respawns, and start() must fail
        # with a readable error instead of burning the whole startup timeout.
        from repro.serve.pool import MAX_EARLY_CRASHES

        broken = smoke.spec.to_dict()
        broken["model"] = dict(broken["model"], name="definitely_not_a_model")
        pool = WorkerPool(broken, config=ServeConfig(workers=1, startup_timeout=120.0))
        with pytest.raises(RuntimeError, match="keeps crashing during startup"):
            pool.start()
        assert pool._early_crashes[0] >= MAX_EARLY_CRASHES
        assert pool.respawns <= MAX_EARLY_CRASHES     # bounded, not a storm
        pool.close()

    def test_close_is_idempotent_and_rejects_stragglers(self, smoke):
        config = ServeConfig(workers=1, startup_timeout=120.0)
        pool = WorkerPool(smoke.spec, state=smoke.state, config=config).start()
        pool.predict(smoke.samples[0], timeout=60.0)
        pool.close()
        pool.close()
        with pytest.raises(PoolClosed):
            pool.submit(smoke.samples[0])
