"""Unit tests for element-wise differentiable primitives."""

import numpy as np
import pytest

from repro.autodiff import Tensor, randn, tensor, where


class TestArithmetic:
    def test_add_forward(self):
        a = tensor([1.0, 2.0])
        b = tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_backward(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_add_scalar(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        out = a + 5.0
        assert np.allclose(out.data, [6.0, 7.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_radd(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        out = 5.0 + a
        assert np.allclose(out.data, [6.0, 7.0])

    def test_sub_backward(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 4.0], requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [-1.0, -1.0])

    def test_rsub(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        out = 10.0 - a
        assert np.allclose(out.data, [9.0, 8.0])
        out.sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_mul_backward(self):
        a = tensor([2.0, 3.0], requires_grad=True)
        b = tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = tensor([6.0], requires_grad=True)
        b = tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_rtruediv(self):
        a = tensor([2.0], requires_grad=True)
        out = 1.0 / a
        assert np.allclose(out.data, [0.5])
        out.backward()
        assert np.allclose(a.grad, [-0.25])

    def test_neg(self):
        a = tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_pow_square(self):
        a = tensor([3.0, -2.0], requires_grad=True)
        (a ** 2).sum().backward()
        assert np.allclose(a.grad, [6.0, -4.0])

    def test_square_helper_matches_pow(self):
        a = randn(5, requires_grad=True)
        assert np.allclose(a.square().data, (a ** 2).data)


class TestBroadcasting:
    def test_row_plus_column(self):
        a = randn(3, 1, requires_grad=True)
        b = randn(1, 4, requires_grad=True)
        out = a + b
        assert out.shape == (3, 4)
        out.sum().backward()
        assert a.grad.shape == (3, 1)
        assert b.grad.shape == (1, 4)
        assert np.allclose(a.grad, 4.0)
        assert np.allclose(b.grad, 3.0)

    def test_mul_broadcast_gradients(self):
        a = randn(2, 3, requires_grad=True)
        b = randn(3, requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, a.data.sum(axis=0), atol=1e-5)

    def test_scalar_broadcast(self):
        a = randn(4, 4, requires_grad=True)
        (a * 3.0).sum().backward()
        assert np.allclose(a.grad, 3.0)


class TestPointwiseFunctions:
    def test_exp_grad(self):
        a = tensor([0.0, 1.0], requires_grad=True)
        a.exp().sum().backward()
        assert np.allclose(a.grad, np.exp([0.0, 1.0]), atol=1e-5)

    def test_log_grad(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        a.log().sum().backward()
        assert np.allclose(a.grad, [1.0, 0.5], atol=1e-6)

    def test_sqrt_grad(self):
        a = tensor([4.0, 9.0], requires_grad=True)
        a.sqrt().sum().backward()
        assert np.allclose(a.grad, [0.25, 1.0 / 6.0], atol=1e-5)

    def test_abs_grad(self):
        a = tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])

    def test_relu_forward_and_grad(self):
        a = tensor([-1.0, 0.5, 2.0], requires_grad=True)
        out = a.relu()
        assert np.allclose(out.data, [0.0, 0.5, 2.0])
        out.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 1.0])

    def test_sigmoid_range_and_grad(self):
        a = randn(10, requires_grad=True)
        out = a.sigmoid()
        assert np.all(out.data > 0) and np.all(out.data < 1)
        out.sum().backward()
        expected = out.data * (1 - out.data)
        assert np.allclose(a.grad, expected, atol=1e-6)

    def test_tanh_grad(self):
        a = tensor([0.5], requires_grad=True)
        a.tanh().backward()
        assert np.allclose(a.grad, 1 - np.tanh(0.5) ** 2, atol=1e-6)

    def test_clip_grad_masks_outside(self):
        a = tensor([-2.0, 0.5, 3.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_maximum(self):
        a = tensor([1.0, 5.0], requires_grad=True)
        b = tensor([3.0, 2.0], requires_grad=True)
        out = a.maximum(b)
        assert np.allclose(out.data, [3.0, 5.0])
        out.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_minimum(self):
        a = tensor([1.0, 5.0], requires_grad=True)
        b = tensor([3.0, 2.0], requires_grad=True)
        out = a.minimum(b)
        assert np.allclose(out.data, [1.0, 2.0])

    def test_where_selects_and_routes_grads(self):
        cond = np.array([True, False, True])
        a = tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(cond, a, b)
        assert np.allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])


class TestNumericGradients:
    @pytest.mark.parametrize("op", ["exp", "sigmoid", "tanh", "sqrt"])
    def test_pointwise_numeric(self, op, numgrad):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=5)).astype(np.float32) + 0.5,
                   requires_grad=True)

        def run():
            return float(getattr(Tensor(a.data, requires_grad=False), op)().sum().data)

        getattr(a, op)().sum().backward()
        expected = numgrad(run, a.data)
        assert np.allclose(a.grad, expected, atol=2e-2)

    def test_composed_expression_numeric(self, numgrad):
        a = Tensor(np.random.default_rng(1).normal(size=(3, 3)).astype(np.float32),
                   requires_grad=True)

        def run():
            t = Tensor(a.data)
            return float(((t * t + t.relu()).sigmoid()).sum().data)

        ((a * a + a.relu()).sigmoid()).sum().backward()
        expected = numgrad(run, a.data)
        assert np.allclose(a.grad, expected, atol=2e-2)
