"""Object detection with a quadratic SSD backbone (paper Sec. 5.4 / Table 6).

Run with::

    python examples/object_detection.py

Trains two compact SSD detectors — one with a first-order backbone, one with
the quadratic (QuadraNN) backbone — on the synthetic detection dataset and
reports per-class AP and mAP, optionally initialising the backbone from a
classification pre-training run (the paper's "pre-trained" setting).
"""

import numpy as np

from repro.builder import QuadraticModelConfig
from repro.data.synthetic import SyntheticDetectionDataset, SyntheticImageClassification
from repro.models import build_ssd
from repro.training import (
    evaluate_detector,
    load_pretrained_backbone,
    pretrain_backbone,
    train_detector,
)
from repro.utils import print_table, seed_everything

IMAGE = 64
NUM_CLASSES = 4
EPOCHS = 3


def main() -> None:
    seed_everything(0)
    train_set = SyntheticDetectionDataset(num_samples=64, image_size=IMAGE,
                                          num_classes=NUM_CLASSES, seed=1)
    test_set = SyntheticDetectionDataset(num_samples=32, image_size=IMAGE,
                                         num_classes=NUM_CLASSES, seed=2)

    print("Pre-training a quadratic backbone on the synthetic classification task...")
    pretrain_data = SyntheticImageClassification(num_samples=128, num_classes=6, image_size=32)
    config = QuadraticModelConfig(neuron_type="OURS", width_multiplier=0.25)
    backbone_state, _ = pretrain_backbone(config, pretrain_data, epochs=1, batch_size=16)

    rows = []
    for name, neuron_type, pretrained in (("1st-order SSD", "first_order", False),
                                          ("QuadraNN SSD", "OURS", False),
                                          ("QuadraNN SSD (pre-trained)", "OURS", True)):
        seed_everything(3)
        detector = build_ssd(num_classes=NUM_CLASSES, image_size=IMAGE,
                             neuron_type=neuron_type, width_multiplier=0.25)
        if pretrained:
            copied = load_pretrained_backbone(detector, backbone_state)
            print(f"{name}: copied {copied} backbone tensors from the classification run")
        print(f"Training {name}...")
        history = train_detector(detector, train_set, epochs=EPOCHS, batch_size=8, lr=5e-3)
        result = evaluate_detector(detector, test_set, score_threshold=0.2)
        per_class = ["-" if np.isnan(ap) else f"{ap:.2f}" for ap in result["per_class_ap"]]
        rows.append([name, f"{history.final_loss:.2f}"] + per_class + [f"{result['map']:.3f}"])

    print()
    print_table(["Detector", "Final loss"] + list(train_set.class_names) + ["mAP"], rows,
                title="Table 6-style comparison on the synthetic VOC stand-in")


if __name__ == "__main__":
    main()
