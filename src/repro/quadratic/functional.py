"""Functional forms of the quadratic neuron computations.

Each function maps first-order responses (already computed with standard
linear/conv primitives) into the quadratic neuron output of a given type.
Keeping the *combination* step separate from the *projection* step is what
makes the paper's implementation-feasibility point concrete (P4): every
quadratic design except T1 can be assembled from first-order layers plus
element-wise operations that any DNN library already provides.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..autodiff.tensor import Tensor


def combine_t2(square_response: Tensor) -> Tensor:
    """T2: the projection of the squared input, ``Wa X²`` (already projected)."""
    return square_response


def combine_t3(response_a: Tensor) -> Tensor:
    """T3: square of a first-order response, ``(Wa X)²``."""
    return response_a * response_a


def combine_t4(response_a: Tensor, response_b: Tensor) -> Tensor:
    """T4: Hadamard product of two first-order responses, ``(Wa X) ∘ (Wb X)``."""
    return response_a * response_b


def combine_t4_identity(response_a: Tensor, response_b: Tensor, identity: Tensor) -> Tensor:
    """T4 + identity mapping, ``(Wa X) ∘ (Wb X) + X`` (Table 2 baseline)."""
    return response_a * response_b + identity


def combine_t2_4(response_a: Tensor, response_b: Tensor, square_response: Tensor) -> Tensor:
    """Fan et al. (2018): ``(Wa X) ∘ (Wb X) + Wc X²``."""
    return response_a * response_b + square_response


def combine_ours(response_a: Tensor, response_b: Tensor, linear_response: Tensor) -> Tensor:
    """The paper's neuron (Eq. 2): ``(Wa X) ∘ (Wb X) + Wc X``.

    The linear term both adds approximation capability (extra polynomial
    orders, Sec. 3.2 Eq. 3) and acts as an identity-style path that keeps
    gradients alive in deep plain networks (Sec. 3.2 Eq. 4).
    """
    return response_a * response_b + linear_response


def combine_t1(bilinear_response: Tensor, linear_response: Optional[Tensor] = None) -> Tensor:
    """T1: bilinear term ``Xᵀ Wa X`` plus an optional linear term ``Wb X``."""
    if linear_response is None:
        return bilinear_response
    return bilinear_response + linear_response


def combine_t1_2(bilinear_response: Tensor, square_response: Tensor) -> Tensor:
    """Milenkovic et al. (1996): ``Xᵀ Wa X + Wb X²``."""
    return bilinear_response + square_response


#: Which first-order responses each neuron type needs.  Keys are canonical
#: type names; values are the projection kinds, in the order the ``combine_*``
#: function expects them.  ``"a"``/``"b"``/``"c"`` are plain projections of X,
#: ``"sq"`` is a projection of X², ``"bilinear"`` is the full-rank Xᵀ W X term
#: and ``"id"`` is the un-projected input.
REQUIRED_RESPONSES: Dict[str, tuple] = {
    "T1": ("bilinear", "b"),
    "T1_PURE": ("bilinear",),
    "T2": ("sq",),
    "T3": ("a",),
    "T4": ("a", "b"),
    "T4_ID": ("a", "b", "id"),
    "T1_2": ("bilinear", "sq"),
    "T2_4": ("a", "b", "sq"),
    "OURS": ("a", "b", "c"),
}

#: Combination function per canonical type name.
COMBINERS: Dict[str, Callable[..., Tensor]] = {
    "T1": combine_t1,
    "T1_PURE": combine_t1,
    "T2": combine_t2,
    "T3": combine_t3,
    "T4": combine_t4,
    "T4_ID": combine_t4_identity,
    "T1_2": combine_t1_2,
    "T2_4": combine_t2_4,
    "OURS": combine_ours,
}
