"""Bundled experiment specs (``python -m repro run <preset>``).

Presets are ordinary :class:`ExperimentSpec` values expressed in code so the
CLI and the integration tests have known-fast, known-good starting points.
``repro run smoke`` is wired into CI as the end-to-end canary: if the spec →
build → fit → evaluate → profile → ppml path breaks, that test breaks.
"""

from __future__ import annotations

from typing import Callable, Dict

from .spec import (
    DataSpec,
    ExperimentSpec,
    ModelSpec,
    PPMLSpec,
    ProfileSpec,
    SearchSpec,
    TrainSpec,
)

PRESETS: Dict[str, Callable[[], ExperimentSpec]] = {}


def register_preset(name: str):
    def _add(fn: Callable[[], ExperimentSpec]) -> Callable[[], ExperimentSpec]:
        PRESETS[name] = fn
        return fn
    return _add


def preset_names():
    return sorted(PRESETS)


def get_preset(name: str) -> ExperimentSpec:
    """Instantiate a bundled spec by name (``ValueError`` on unknown names)."""
    if name not in PRESETS:
        raise ValueError(
            f"unknown preset '{name}'; bundled presets: {', '.join(preset_names())}"
        )
    return PRESETS[name]()


@register_preset("smoke")
def smoke_spec() -> ExperimentSpec:
    """A quadratic VGG-8 on CIFAR-shaped synthetic data, a few batches only.

    Small enough for a CI smoke test, yet it exercises the full pipeline:
    registry model build, training, evaluation, analytical profiling and the
    PPML cost comparison.  Two (tiny) epochs, so the CI resume smoke can stop
    after epoch 1 and ``repro train --resume`` has real work left.
    """
    return ExperimentSpec(
        name="smoke",
        seed=0,
        model=ModelSpec(name="vgg8", neuron_type="OURS", num_classes=4,
                        width_multiplier=0.125),
        data=DataSpec(name="synthetic_classification", num_samples=32, test_samples=16,
                      num_classes=4, image_size=32),
        train=TrainSpec(epochs=2, batch_size=16, lr=0.05, max_batches_per_epoch=2),
        profile=ProfileSpec(batch_size=32),
        ppml=PPMLSpec(strategy="quadratic_no_relu", protocol="delphi"),
        steps=["build", "fit", "evaluate", "profile", "ppml"],
    )


@register_preset("vgg8-quadratic")
def vgg8_quadratic_spec() -> ExperimentSpec:
    """The paper's shallow QDNN workflow at CIFAR-10 scale (slower than smoke)."""
    return ExperimentSpec(
        name="vgg8-quadratic",
        seed=0,
        model=ModelSpec(name="vgg8", neuron_type="OURS", num_classes=10,
                        width_multiplier=0.5),
        data=DataSpec(name="synthetic_classification", num_samples=256, test_samples=128,
                      num_classes=10, image_size=32),
        train=TrainSpec(epochs=2, batch_size=32, lr=0.05),
        profile=ProfileSpec(batch_size=128, latency=True, latency_repeats=2),
        ppml=PPMLSpec(strategy="quadratic_no_relu", protocol="delphi"),
        steps=["build", "fit", "evaluate", "profile", "ppml"],
    )


@register_preset("autobuild-resnet")
def autobuild_resnet_spec() -> ExperimentSpec:
    """Auto-builder workflow: first-order ResNet-20 converted to the paper's neuron."""
    return ExperimentSpec(
        name="autobuild-resnet",
        seed=0,
        model=ModelSpec(name="resnet20", neuron_type="OURS", num_classes=10,
                        width_multiplier=0.25, auto_build=True),
        data=DataSpec(num_samples=128, test_samples=64, num_classes=10, image_size=32),
        train=TrainSpec(epochs=1, batch_size=16, max_batches_per_epoch=4),
        steps=["build", "fit", "evaluate", "profile"],
    )


@register_preset("explore-small")
def explore_small_spec() -> ExperimentSpec:
    """Tiny random design exploration over plain QDNN structures."""
    return ExperimentSpec(
        name="explore-small",
        seed=0,
        model=ModelSpec(width_multiplier=0.25),
        data=DataSpec(num_samples=32, test_samples=16, num_classes=4, image_size=16),
        search=SearchSpec(strategy="random", budget=3, top=3,
                          space={"min_stages": 2, "max_stages": 3,
                                 "min_convs_per_stage": 1, "max_convs_per_stage": 2,
                                 "width_choices": [16, 32],
                                 "neuron_types": ["first_order", "OURS"]}),
        steps=["search"],
    )
