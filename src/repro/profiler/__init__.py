"""``repro.profiler`` — training-memory, latency and FLOPs/parameter profilers."""

from .flops import LayerProfile, ModelProfile, count_parameters, profile_model
from .latency import LatencyReport, profile_latency
from .memory import (
    GPU_MEMORY_BUDGETS,
    MemoryEstimate,
    MemoryTracker,
    estimate_training_memory,
)

__all__ = [
    "MemoryTracker",
    "MemoryEstimate",
    "estimate_training_memory",
    "GPU_MEMORY_BUDGETS",
    "LatencyReport",
    "profile_latency",
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "count_parameters",
]
