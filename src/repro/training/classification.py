"""Classification training (the recipe of paper Sec. 5.2, scaled down).

The paper trains with SGD + CosineAnnealing, initial learning rate 0.1,
200 epochs, batch 256/128.  The loop itself now lives in the unified
training engine (:mod:`repro.engine`) as :class:`ClassificationAdapter`;
this module keeps the public surface — :class:`TrainingHistory`,
:func:`evaluate_classifier` and the (deprecated) :func:`train_classifier`
signature — bit-for-bit compatible with the pre-engine loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..data.dataloader import DataLoader
from ..data.dataset import Dataset
from ..nn.module import Module
from ..utils.deprecation import warn_deprecated


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected by the classification trainer."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    seconds_per_batch: List[float] = field(default_factory=list)
    gradient_norms: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def final_train_accuracy(self) -> float:
        return self.train_accuracy[-1] if self.train_accuracy else float("nan")

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else float("nan")

    @property
    def mean_seconds_per_batch(self) -> float:
        return float(np.mean(self.seconds_per_batch)) if self.seconds_per_batch else float("nan")

    def diverged(self, floor: float) -> bool:
        """True if training never exceeded chance-level ``floor`` accuracy."""
        return self.final_train_accuracy <= floor

    # ------------------------------------------------------------ persistence
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view so specs, benchmarks and the CLI can persist runs."""
        return {
            "train_loss": [float(v) for v in self.train_loss],
            "train_accuracy": [float(v) for v in self.train_accuracy],
            "test_accuracy": [float(v) for v in self.test_accuracy],
            "seconds_per_batch": [float(v) for v in self.seconds_per_batch],
            "gradient_norms": {name: [float(v) for v in values]
                               for name, values in self.gradient_norms.items()},
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "TrainingHistory":
        """Inverse of :meth:`to_dict`, tolerant of older/partial JSON.

        Unknown keys are ignored (forward compat); missing or ``None``-valued
        optional fields fall back to empty (backward compat), so histories
        written before a field existed — or by a newer library with extra
        fields — always load.
        """
        data = data or {}

        def _floats(key: str) -> List[float]:
            return [float(v) for v in (data.get(key) or [])]

        return cls(
            train_loss=_floats("train_loss"),
            train_accuracy=_floats("train_accuracy"),
            test_accuracy=_floats("test_accuracy"),
            seconds_per_batch=_floats("seconds_per_batch"),
            gradient_norms={str(name): [float(v) for v in (values or [])]
                            for name, values in (data.get("gradient_norms") or {}).items()},
        )


def evaluate_classifier(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy of ``model`` over a data loader."""
    was_training = model.training
    model.train(False)
    correct, total = 0, 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(np.asarray(images, dtype=np.float32)))
            correct += int((logits.data.argmax(axis=-1) == labels).sum())
            total += len(labels)
    model.train(was_training)
    return correct / max(total, 1)


def train_classifier(model: Module, train_dataset: Dataset, test_dataset: Optional[Dataset] = None,
                     epochs: int = 5, batch_size: int = 64, lr: float = 0.1,
                     momentum: float = 0.9, weight_decay: float = 5e-4,
                     scheduler: str = "cosine", label_smoothing: float = 0.0,
                     grad_probe_layers: Optional[Sequence[str]] = None,
                     max_batches_per_epoch: Optional[int] = None,
                     seed: int = 0) -> TrainingHistory:
    """Deprecated direct-call trainer; see :class:`repro.experiment.Experiment`.

    The recipe is unchanged (it still trains exactly as before, now through
    the shared :mod:`repro.engine` loop); new code should declare the recipe
    in a :class:`repro.experiment.TrainSpec` and call
    ``Experiment(spec).fit()`` so the run is serializable and reproducible.
    """
    from ..engine import run_classification

    warn_deprecated(
        "repro.training.train_classifier(model, dataset, ...)",
        "repro.experiment.Experiment(spec).fit() with a TrainSpec",
    )
    return run_classification(model, train_dataset, test_dataset, epochs=epochs,
                              batch_size=batch_size, lr=lr, momentum=momentum,
                              weight_decay=weight_decay, scheduler=scheduler,
                              label_smoothing=label_smoothing,
                              grad_probe_layers=grad_probe_layers,
                              max_batches_per_epoch=max_batches_per_epoch, seed=seed)


def __getattr__(name: str):
    """Deprecation shims for the pre-engine loop internals.

    The loop body that used to live here moved to
    :class:`repro.engine.ClassificationAdapter`; importing the old private
    implementation keeps working behind a single :class:`DeprecationWarning`.
    """
    if name == "_train_classifier_impl":
        from ..engine import run_classification

        warn_deprecated(
            "repro.training.classification._train_classifier_impl",
            "repro.engine.run_classification (the unified training engine)",
        )
        return run_classification
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
