"""``repro.cli`` — command-line interface to the QuadraLib reproduction.

The CLI is a shell over :mod:`repro.experiment`: a single declarative JSON
spec drives build → fit → evaluate → profile → ppml, and the component
registries are browsable by name::

    python -m repro run spec.json --out results.json   # execute a spec
    python -m repro run smoke                          # bundled preset
    python -m repro list models                        # registry listings
    python -m repro list neurons
    python -m repro list datasets
    python -m repro profile --model vgg16 --neuron-type OURS
    python -m repro neurons                            # Table-1 view

The pre-redesign workflow subcommands (``train`` / ``convert`` / ``ppml`` /
``explore``) keep working as deprecation shims that assemble the equivalent
spec internally and emit one ``DeprecationWarning`` naming the new entry
point.  Every subcommand prints fixed-width tables (the same renderer the
benchmark harness uses) and exits with status 0 on success.
"""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
