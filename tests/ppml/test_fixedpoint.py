"""Property tests for the fixed-point arithmetic of the secure runtime.

The load-bearing bound: one fixed-point multiplication — product at scale
``2f``, truncated back to ``f`` — introduces strictly less than ``2^-f`` of
error relative to the exact product of the (already encoded) operands, in
both truncation modes.  Everything the runtime guarantees about numerical
drift composes from this per-multiplication bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ppml import (
    FixedPointFormat,
    TRUNCATION_MODES,
    decode,
    encode,
    fixed_mul,
    truncate,
)

FRAC_BIT_CHOICES = (6, 8, 12, 16)


# --------------------------------------------------------------------------- #
# Format validation
# --------------------------------------------------------------------------- #

def test_format_exposes_scale_and_resolution():
    fmt = FixedPointFormat(frac_bits=12)
    assert fmt.scale == 4096
    assert fmt.resolution == 2.0 ** -12
    assert fmt.truncation == "nearest"


@pytest.mark.parametrize("frac_bits", [0, -1, 17, 64])
def test_format_rejects_out_of_range_frac_bits(frac_bits):
    with pytest.raises(ValueError, match="frac_bits"):
        FixedPointFormat(frac_bits=frac_bits)


def test_format_rejects_unknown_truncation():
    with pytest.raises(ValueError, match="truncation"):
        FixedPointFormat(truncation="floor")


def test_truncate_rejects_unknown_mode_and_missing_rng():
    q = np.array([1 << 24], dtype=np.int64)
    with pytest.raises(ValueError, match="truncation"):
        truncate(q, 12, mode="floor")
    with pytest.raises(ValueError, match="random generator"):
        truncate(q, 12, mode="stochastic")


# --------------------------------------------------------------------------- #
# Encoding round trip
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("frac_bits", FRAC_BIT_CHOICES)
def test_encode_decode_round_trip_error_is_half_resolution(frac_bits):
    rng = np.random.default_rng(0)
    x = rng.uniform(-100.0, 100.0, size=4096).astype(np.float32)
    error = np.abs(decode(encode(x, frac_bits), frac_bits).astype(np.float64)
                   - x.astype(np.float64))
    # Round-to-nearest encoding: at most half a representable step.
    assert error.max() <= 2.0 ** -(frac_bits + 1) + 1e-12


def test_encoded_values_are_exact_at_the_grid():
    # Values already on the fixed-point grid survive the round trip exactly.
    frac_bits = 10
    grid = np.arange(-2048, 2048, dtype=np.int64)
    assert np.array_equal(encode(decode(grid, frac_bits), frac_bits), grid)


# --------------------------------------------------------------------------- #
# The per-multiplication bound (the issue's property)
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("frac_bits", FRAC_BIT_CHOICES)
@pytest.mark.parametrize("mode", TRUNCATION_MODES)
def test_multiplication_error_is_bounded_by_resolution(frac_bits, mode):
    """One secure multiplication loses strictly less than ``2**-frac_bits``.

    Operands are taken *on* the fixed-point grid (their encoding is exact),
    so the measured error is purely the truncation's — the quantity the bound
    speaks about.
    """
    rng = np.random.default_rng(1)
    a = decode(encode(rng.uniform(-8, 8, size=20000), frac_bits), frac_bits)
    b = decode(encode(rng.uniform(-8, 8, size=20000), frac_bits), frac_bits)
    product = fixed_mul(encode(a, frac_bits), encode(b, frac_bits), frac_bits,
                        mode=mode, rng=np.random.default_rng(2))
    exact = a.astype(np.float64) * b.astype(np.float64)
    error = np.abs(decode(product, frac_bits).astype(np.float64) - exact)
    assert error.max() < 2.0 ** -frac_bits + 1e-12, (
        f"multiplication error {error.max():.3e} exceeds 2^-{frac_bits}")


@pytest.mark.parametrize("frac_bits", (8, 12))
def test_nearest_truncation_is_deterministic_and_half_bounded(frac_bits):
    rng = np.random.default_rng(3)
    q = rng.integers(-(1 << 40), 1 << 40, size=10000, dtype=np.int64)
    once = truncate(q.copy(), frac_bits, mode="nearest")
    twice = truncate(q.copy(), frac_bits, mode="nearest")
    assert np.array_equal(once, twice)
    exact = q.astype(np.float64) / (1 << frac_bits)
    assert np.abs(once.astype(np.float64) - exact).max() <= 0.5


def test_stochastic_truncation_is_unbiased():
    frac_bits = 8
    value = np.full(200_000, 1000, dtype=np.int64)     # 1000/256 = 3.90625
    rng = np.random.default_rng(4)
    truncated = truncate(value, frac_bits, mode="stochastic", rng=rng)
    # Each draw is floor or ceil; the mean converges to the exact quotient.
    assert set(np.unique(truncated)) <= {3, 4}
    assert abs(truncated.mean() - 1000 / 256) < 0.01


def test_truncation_restores_the_scale_after_a_square():
    frac_bits = 12
    x = np.float32(1.5)
    q = encode(x, frac_bits)
    squared = truncate(q * q, frac_bits, mode="nearest")
    assert decode(squared, frac_bits) == pytest.approx(2.25, abs=2.0 ** -frac_bits)
