"""Tests of the SNGAN pair, detection utilities and the SSD detector."""

import numpy as np
import pytest

from repro.autodiff import Tensor, randn
from repro.models import SNGANDiscriminator, SNGANGenerator, build_ssd, sngan_pair
from repro.models.detection_utils import (
    box_area,
    center_to_corner,
    corner_to_center,
    decode_boxes,
    encode_boxes,
    generate_anchors,
    iou_matrix,
    match_anchors,
    nms,
)
from repro.quadratic import QuadraticConv2d


class TestSNGAN:
    def test_generator_output_shape_and_range(self):
        gen = SNGANGenerator(latent_dim=16, base_channels=8, image_size=32)
        z = Tensor(gen.sample_latent(4))
        out = gen(z)
        assert out.shape == (4, 3, 32, 32)
        assert np.all(out.data <= 1.0) and np.all(out.data >= -1.0)  # tanh output

    def test_discriminator_scalar_output(self):
        disc = SNGANDiscriminator(base_channels=8)
        assert disc(randn(4, 3, 32, 32)).shape == (4, 1)

    def test_quadratic_generator_conversion(self):
        gen, _ = sngan_pair(latent_dim=16, base_channels=8, neuron_type="OURS")
        assert any(isinstance(m, QuadraticConv2d) for m in gen.modules())

    def test_pair_trains_one_adversarial_step(self):
        from repro.nn import functional as F
        from repro.optim import Adam

        gen, disc = sngan_pair(latent_dim=8, base_channels=8)
        opt_d = Adam(disc.parameters(), lr=1e-3)
        real = randn(4, 3, 32, 32)
        fake = gen(Tensor(gen.sample_latent(4)))
        loss = F.hinge_loss_discriminator(disc(real), disc(Tensor(fake.data)))
        loss.backward()
        opt_d.step()
        assert np.isfinite(loss.item())

    def test_latent_sampling_deterministic_with_rng(self):
        gen = SNGANGenerator(latent_dim=8, base_channels=8)
        z1 = gen.sample_latent(3, rng=np.random.default_rng(0))
        z2 = gen.sample_latent(3, rng=np.random.default_rng(0))
        assert np.allclose(z1, z2)


class TestBoxUtils:
    def test_iou_identity(self):
        boxes = np.array([[0.1, 0.1, 0.5, 0.5]], dtype=np.float32)
        assert iou_matrix(boxes, boxes)[0, 0] == pytest.approx(1.0)

    def test_iou_disjoint(self):
        a = np.array([[0.0, 0.0, 0.2, 0.2]], dtype=np.float32)
        b = np.array([[0.5, 0.5, 0.9, 0.9]], dtype=np.float32)
        assert iou_matrix(a, b)[0, 0] == pytest.approx(0.0)

    def test_iou_half_overlap(self):
        a = np.array([[0.0, 0.0, 0.2, 0.2]], dtype=np.float32)
        b = np.array([[0.1, 0.0, 0.3, 0.2]], dtype=np.float32)
        assert iou_matrix(a, b)[0, 0] == pytest.approx(1.0 / 3.0, abs=1e-5)

    def test_iou_empty_inputs(self):
        assert iou_matrix(np.zeros((0, 4)), np.zeros((3, 4))).shape == (0, 3)

    def test_corner_center_roundtrip(self):
        boxes = np.array([[0.1, 0.2, 0.5, 0.8]], dtype=np.float32)
        assert np.allclose(center_to_corner(corner_to_center(boxes)), boxes, atol=1e-6)

    def test_encode_decode_roundtrip(self):
        anchors = generate_anchors([4], [0.3])
        gt = np.tile(np.array([[0.2, 0.2, 0.6, 0.6]], dtype=np.float32), (len(anchors), 1))
        offsets = encode_boxes(gt, anchors)
        decoded = decode_boxes(offsets, anchors)
        assert np.allclose(decoded, gt, atol=1e-3)

    def test_anchor_count_and_range(self):
        anchors = generate_anchors([8, 4], [0.25, 0.5], aspect_ratios=(1.0, 2.0, 0.5))
        assert len(anchors) == (64 + 16) * 3
        assert np.all(anchors >= 0) and np.all(anchors <= 1)

    def test_anchor_mismatched_args_raise(self):
        with pytest.raises(ValueError):
            generate_anchors([8, 4], [0.25])

    def test_match_anchors_force_matches_every_gt(self):
        anchors = generate_anchors([8], [0.25])
        gt_boxes = np.array([[0.1, 0.1, 0.3, 0.3], [0.6, 0.6, 0.9, 0.9]], dtype=np.float32)
        gt_labels = np.array([2, 4])
        labels, boxes = match_anchors(anchors, gt_boxes, gt_labels)
        assert set(np.unique(labels)) >= {0, 3, 5}  # background + both classes (+1 shift)
        assert (labels > 0).sum() >= 2

    def test_match_anchors_empty_gt(self):
        anchors = generate_anchors([4], [0.3])
        labels, boxes = match_anchors(anchors, np.zeros((0, 4), dtype=np.float32),
                                      np.zeros(0, dtype=np.int64))
        assert (labels == 0).all()

    def test_nms_removes_overlapping(self):
        boxes = np.array([
            [0.1, 0.1, 0.5, 0.5],
            [0.12, 0.12, 0.52, 0.52],   # heavy overlap with the first
            [0.6, 0.6, 0.9, 0.9],
        ], dtype=np.float32)
        scores = np.array([0.9, 0.8, 0.7], dtype=np.float32)
        keep = nms(boxes, scores, iou_threshold=0.5)
        assert 0 in keep and 2 in keep and 1 not in keep

    def test_nms_empty(self):
        assert len(nms(np.zeros((0, 4)), np.zeros(0))) == 0

    def test_box_area(self):
        assert box_area(np.array([[0.0, 0.0, 0.5, 0.5]]))[0] == pytest.approx(0.25)


class TestSSD:
    def _model(self, neuron_type="first_order"):
        return build_ssd(num_classes=5, image_size=64, neuron_type=neuron_type,
                         width_multiplier=0.25)

    def test_head_shapes_match_anchors(self):
        model = self._model()
        cls, loc = model(randn(2, 3, 64, 64))
        assert cls.shape == (2, len(model.anchors), model.num_classes + 1)
        assert loc.shape == (2, len(model.anchors), 4)

    def test_quadratic_backbone(self):
        model = self._model("OURS")
        assert any(isinstance(m, QuadraticConv2d) for m in model.backbone.modules())
        cls, loc = model(randn(1, 3, 64, 64))
        assert np.isfinite(cls.data).all()

    def test_multibox_loss_finite_and_backprops(self):
        model = self._model()
        cls, loc = model(randn(2, 3, 64, 64))
        targets = [
            {"boxes": np.array([[0.1, 0.1, 0.4, 0.4]], dtype=np.float32),
             "labels": np.array([1])},
            {"boxes": np.array([[0.5, 0.5, 0.9, 0.9]], dtype=np.float32),
             "labels": np.array([3])},
        ]
        loss = model.multibox_loss(cls, loc, targets)
        assert np.isfinite(loss.item()) and loss.item() > 0
        loss.backward()
        assert model.cls_head1.weight.grad is not None

    def test_multibox_loss_no_objects(self):
        model = self._model()
        cls, loc = model(randn(1, 3, 64, 64))
        targets = [{"boxes": np.zeros((0, 4), dtype=np.float32),
                    "labels": np.zeros(0, dtype=np.int64)}]
        loss = model.multibox_loss(cls, loc, targets)
        assert np.isfinite(loss.item())

    def test_detect_output_format(self):
        model = self._model()
        detections = model.detect(randn(2, 3, 64, 64), score_threshold=0.05)
        assert len(detections) == 2
        for det in detections:
            assert set(det) == {"boxes", "scores", "labels"}
            assert det["boxes"].shape[1] == 4 if len(det["boxes"]) else True
            if len(det["labels"]):
                assert det["labels"].max() < model.num_classes

    def test_backbone_pretraining_copy(self):
        from repro.builder import QuadraticModelConfig
        from repro.training.pretrain import BackbonePretrainNet

        config = QuadraticModelConfig(neuron_type="first_order", width_multiplier=0.25)
        classifier = BackbonePretrainNet(num_classes=10, config=config)
        model = self._model()
        state = classifier.backbone.state_dict()
        missing = model.backbone.load_state_dict(state, strict=False)
        # All backbone weights should be copied (no missing keys from the source).
        assert not any(key in state for key in missing)
        first_conv = next(p for _, p in model.backbone.named_parameters())
        src_first = next(p for _, p in classifier.backbone.named_parameters())
        assert np.allclose(first_conv.data, src_first.data)
