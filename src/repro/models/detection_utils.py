"""Box utilities for the SSD detector: anchors, IoU, encoding, NMS.

All functions operate on plain NumPy arrays with boxes in normalised corner
format ``(x_min, y_min, x_max, y_max)`` unless stated otherwise.  They are
deliberately kept outside the autodiff graph — only the *offsets* predicted by
the network are differentiable; matching and decoding are bookkeeping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def generate_anchors(feature_sizes: Sequence[int], scales: Sequence[float],
                     aspect_ratios: Sequence[float] = (1.0, 2.0, 0.5)) -> np.ndarray:
    """Generate SSD-style anchors for a set of square feature maps.

    Parameters
    ----------
    feature_sizes : list of int
        Spatial size of each prediction feature map (e.g. ``[8, 4]``).
    scales : list of float
        Anchor scale (relative to image size) per feature map; must match
        ``feature_sizes`` in length.
    aspect_ratios : list of float
        Width/height ratios applied at every location.

    Returns
    -------
    (A, 4) array of anchors in corner format, clipped to [0, 1].
    """
    if len(feature_sizes) != len(scales):
        raise ValueError("feature_sizes and scales must have the same length")
    anchors: List[np.ndarray] = []
    for size, scale in zip(feature_sizes, scales):
        step = 1.0 / size
        centers = (np.arange(size) + 0.5) * step
        cx, cy = np.meshgrid(centers, centers, indexing="xy")
        for ratio in aspect_ratios:
            w = scale * np.sqrt(ratio)
            h = scale / np.sqrt(ratio)
            boxes = np.stack([
                cx.ravel() - w / 2, cy.ravel() - h / 2,
                cx.ravel() + w / 2, cy.ravel() + h / 2,
            ], axis=1)
            anchors.append(boxes)
    out = np.concatenate(anchors, axis=0).astype(np.float32)
    return np.clip(out, 0.0, 1.0)


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Area of corner-format boxes."""
    return np.clip(boxes[:, 2] - boxes[:, 0], 0, None) * np.clip(boxes[:, 3] - boxes[:, 1], 0, None)


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise intersection-over-union between two sets of corner boxes."""
    if len(boxes_a) == 0 or len(boxes_b) == 0:
        return np.zeros((len(boxes_a), len(boxes_b)), dtype=np.float32)
    lt = np.maximum(boxes_a[:, None, :2], boxes_b[None, :, :2])
    rb = np.minimum(boxes_a[:, None, 2:], boxes_b[None, :, 2:])
    wh = np.clip(rb - lt, 0, None)
    inter = wh[..., 0] * wh[..., 1]
    union = box_area(boxes_a)[:, None] + box_area(boxes_b)[None, :] - inter
    return (inter / np.maximum(union, 1e-9)).astype(np.float32)


def corner_to_center(boxes: np.ndarray) -> np.ndarray:
    """Convert corner boxes to (cx, cy, w, h)."""
    cx = (boxes[:, 0] + boxes[:, 2]) / 2
    cy = (boxes[:, 1] + boxes[:, 3]) / 2
    w = boxes[:, 2] - boxes[:, 0]
    h = boxes[:, 3] - boxes[:, 1]
    return np.stack([cx, cy, w, h], axis=1)


def center_to_corner(boxes: np.ndarray) -> np.ndarray:
    """Convert (cx, cy, w, h) boxes to corner format."""
    x0 = boxes[:, 0] - boxes[:, 2] / 2
    y0 = boxes[:, 1] - boxes[:, 3] / 2
    x1 = boxes[:, 0] + boxes[:, 2] / 2
    y1 = boxes[:, 1] + boxes[:, 3] / 2
    return np.stack([x0, y0, x1, y1], axis=1)


def encode_boxes(matched_gt: np.ndarray, anchors: np.ndarray,
                 variances: Tuple[float, float] = (0.1, 0.2)) -> np.ndarray:
    """Encode ground-truth boxes as offsets relative to anchors (SSD convention)."""
    gt = corner_to_center(matched_gt)
    an = corner_to_center(anchors)
    eps = 1e-9
    d_xy = (gt[:, :2] - an[:, :2]) / (an[:, 2:] * variances[0] + eps)
    d_wh = np.log(np.maximum(gt[:, 2:] / np.maximum(an[:, 2:], eps), eps)) / variances[1]
    return np.concatenate([d_xy, d_wh], axis=1).astype(np.float32)


def decode_boxes(offsets: np.ndarray, anchors: np.ndarray,
                 variances: Tuple[float, float] = (0.1, 0.2)) -> np.ndarray:
    """Invert :func:`encode_boxes`: predicted offsets → corner boxes."""
    an = corner_to_center(anchors)
    cxcy = offsets[:, :2] * variances[0] * an[:, 2:] + an[:, :2]
    wh = np.exp(np.clip(offsets[:, 2:] * variances[1], -10, 10)) * an[:, 2:]
    return np.clip(center_to_corner(np.concatenate([cxcy, wh], axis=1)), 0.0, 1.0)


def match_anchors(anchors: np.ndarray, gt_boxes: np.ndarray, gt_labels: np.ndarray,
                  iou_threshold: float = 0.5) -> Tuple[np.ndarray, np.ndarray]:
    """Assign a ground-truth box (or background) to every anchor.

    Returns ``(matched_labels, matched_boxes)`` where label 0 is background
    and object classes are shifted by +1.  Every ground-truth box is force-
    matched to its best anchor so no object is unrepresented.
    """
    num_anchors = len(anchors)
    matched_labels = np.zeros(num_anchors, dtype=np.int64)
    matched_boxes = np.zeros((num_anchors, 4), dtype=np.float32)
    if len(gt_boxes) == 0:
        return matched_labels, matched_boxes

    ious = iou_matrix(anchors, gt_boxes)          # (A, G)
    best_gt = ious.argmax(axis=1)
    best_iou = ious.max(axis=1)

    positive = best_iou >= iou_threshold
    # Force-match: each ground truth claims its best anchor.
    best_anchor_per_gt = ious.argmax(axis=0)
    positive[best_anchor_per_gt] = True
    best_gt[best_anchor_per_gt] = np.arange(len(gt_boxes))

    matched_labels[positive] = gt_labels[best_gt[positive]] + 1
    matched_boxes[positive] = gt_boxes[best_gt[positive]]
    return matched_labels, matched_boxes


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.45,
        top_k: int = 50) -> np.ndarray:
    """Greedy non-maximum suppression; returns indices of kept boxes."""
    if len(boxes) == 0:
        return np.empty(0, dtype=np.int64)
    order = scores.argsort()[::-1][:top_k * 4]
    keep: List[int] = []
    while len(order) > 0 and len(keep) < top_k:
        current = int(order[0])
        keep.append(current)
        if len(order) == 1:
            break
        rest = order[1:]
        ious = iou_matrix(boxes[current:current + 1], boxes[rest])[0]
        order = rest[ious <= iou_threshold]
    return np.asarray(keep, dtype=np.int64)
