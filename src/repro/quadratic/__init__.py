"""``repro.quadratic`` — the paper's core contribution.

Quadratic neuron taxonomy (Table 1), quadratic dense/convolution layers for
every design, the new ``(Wa X) ∘ (Wb X) + Wc X`` neuron, hybrid
back-propagation layers with symbolic backward, the analytical complexity
model and gradient-flow analysis utilities.

Typical usage mirrors the paper's ``import QuadraNeuron as qua`` example::

    from repro import quadratic as qua
    layer = qua.typenew(64, 128, kernel_size=3, padding=1)   # our neuron
    legacy = qua.type2(64, 128, kernel_size=3, padding=1)     # Goyal et al.
"""

from . import complexity, gradients
from .factory import (
    ours,
    quadratic_layer,
    type1,
    type2,
    type3,
    type4,
    type4_identity,
    type_fan,
    typenew,
)
from .functional import COMBINERS, REQUIRED_RESPONSES
from .gradients import GradientFlowProbe, theoretical_attenuation, vanishing_depth
from .layers import (
    HybridQuadraticConv2d,
    HybridQuadraticConv2dFan,
    HybridQuadraticConv2dT4,
    HybridQuadraticLinear,
    QuadraticConv2d,
    QuadraticConv2dT1,
    QuadraticLayerBase,
    QuadraticLinear,
)
from .neuron_types import ALIASES, NEURON_TYPES, NeuronSpec, available_types, resolve_type
from .polynomial import PolyConv2d, PolyLinear, polynomial_layer

__all__ = [
    "NeuronSpec",
    "NEURON_TYPES",
    "ALIASES",
    "resolve_type",
    "available_types",
    "QuadraticLayerBase",
    "QuadraticLinear",
    "QuadraticConv2d",
    "QuadraticConv2dT1",
    "HybridQuadraticConv2d",
    "HybridQuadraticConv2dT4",
    "HybridQuadraticConv2dFan",
    "HybridQuadraticLinear",
    "quadratic_layer",
    "type1",
    "type2",
    "type3",
    "type4",
    "type4_identity",
    "type_fan",
    "typenew",
    "ours",
    "PolyLinear",
    "PolyConv2d",
    "polynomial_layer",
    "complexity",
    "gradients",
    "GradientFlowProbe",
    "theoretical_attenuation",
    "vanishing_depth",
    "COMBINERS",
    "REQUIRED_RESPONSES",
]
