"""Local (`act`-style) validation of the CI pipeline definition.

CI configuration is code that never runs on a developer's machine, which is
exactly why it rots.  These tests parse ``.github/workflows/ci.yml`` and
check the properties the repo depends on: it is valid YAML with the expected
jobs, every third-party action is pinned to a version, and the tier-1 job
runs *exactly* the ROADMAP's tier-1 verify command, so the gate and the
documentation can never drift apart.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml", reason="workflow validation needs PyYAML")

REPO_ROOT = Path(__file__).resolve().parents[2]
WORKFLOW_PATH = REPO_ROOT / ".github" / "workflows" / "ci.yml"
ROADMAP_PATH = REPO_ROOT / "ROADMAP.md"

EXPECTED_JOBS = {"tests", "lint", "smoke", "bench-gate"}


@pytest.fixture(scope="module")
def workflow() -> dict:
    return yaml.safe_load(WORKFLOW_PATH.read_text())


def roadmap_tier1_command() -> str:
    """The backticked command on the ROADMAP's 'Tier-1 verify' line."""
    match = re.search(r"\*\*Tier-1 verify:\*\*\s*`([^`]+)`", ROADMAP_PATH.read_text())
    assert match, "ROADMAP.md no longer declares a tier-1 verify line"
    return match.group(1)


def all_steps(workflow: dict):
    for job_name, job in workflow["jobs"].items():
        for step in job["steps"]:
            yield job_name, step


def test_workflow_parses_and_declares_the_expected_jobs(workflow):
    assert set(workflow["jobs"]) == EXPECTED_JOBS
    # `on:` parses as the YAML boolean key True — both push and PR trigger.
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers and "push" in triggers


def test_every_action_is_version_pinned(workflow):
    uses = [(job, step["uses"]) for job, step in all_steps(workflow) if "uses" in step]
    assert uses, "workflow uses no actions at all?"
    for job_name, action in uses:
        assert re.search(r"@v\d+$", action), (
            f"job '{job_name}' uses unpinned action '{action}'")


def test_tier1_job_runs_the_roadmap_verify_command_verbatim(workflow):
    tier1 = roadmap_tier1_command()
    run_commands = [step.get("run", "") for _, step in all_steps(workflow)]
    assert any(tier1 in command for command in run_commands), (
        f"no CI step runs the ROADMAP tier-1 command: {tier1}")


def test_tests_job_covers_the_supported_python_matrix(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.12"]


def test_smoke_job_runs_pipeline_docs_and_serve(workflow):
    smoke_runs = [step.get("run", "") for job, step in all_steps(workflow)
                  if job == "smoke"]
    joined = " ".join(smoke_runs)
    assert "repro run smoke" in joined
    assert "tests/docs" in joined
    assert "repro serve smoke" in joined and "--self-test" in joined


def test_smoke_job_runs_the_serve_soak_under_a_time_cap(workflow):
    """The zero-copy data plane's soak + fault suite runs on every push.

    A wedged shared-memory ring hangs, it doesn't fail — so the step must
    be wrapped in a hard wall-clock cap, and it must cover both the ring
    property/soak tests and the SIGKILL fault injection.
    """
    smoke_runs = [step.get("run", "") for job, step in all_steps(workflow)
                  if job == "smoke"]
    soak = next((run for run in smoke_runs
                 if "tests/serve/test_shm_faults.py" in run), None)
    assert soak, "no smoke step runs the serve fault-injection suite"
    assert "tests/serve/test_ringbuffer.py" in soak
    assert re.search(r"\btimeout 120\b", soak), \
        "the serve soak must be capped at 120s of wall clock"


def test_bench_gate_comment_documents_the_armed_slo_gate(workflow):
    """The scale-out benchmark step carries the p99 SLO gate; its arming
    condition (>= 3 cores) is a property of the script, but CI must keep
    running it in quick mode where the gate is live."""
    runs = " ".join(step.get("run", "")
                    for job, step in all_steps(workflow) if job == "bench-gate")
    assert "bench_serving_scaleout.py --quick" in runs


def test_smoke_job_exercises_checkpoint_resume(workflow):
    """The interrupt story: stop the smoke run after epoch 1, then resume."""
    smoke_runs = [step.get("run", "") for job, step in all_steps(workflow)
                  if job == "smoke"]
    resume_step = next((run for run in smoke_runs if "--resume" in run), None)
    assert resume_step, "no smoke step resumes from a checkpoint"
    assert "--checkpoint-dir" in resume_step and "--stop-after-epoch 1" in resume_step
    assert "repro train --resume" in resume_step
    # The resume consumes the checkpoint the interrupted run wrote.
    assert "latest.npz" in resume_step


def test_bench_gate_runs_quick_benchmarks_and_uploads_results(workflow):
    steps = workflow["jobs"]["bench-gate"]["steps"]
    runs = " ".join(step.get("run", "") for step in steps)
    assert "bench_inference_throughput.py --quick" in runs
    assert "bench_serving_scaleout.py --quick" in runs
    assert "bench_dataloader_prefetch.py --quick" in runs
    assert "bench_secure_inference.py --quick" in runs
    assert "bench_secure_serving.py --quick" in runs
    upload = next(step for step in steps if "upload-artifact" in step.get("uses", ""))
    assert upload["with"]["path"].startswith("benchmarks/results")


def test_bench_gate_runs_the_trajectory_check_after_the_benches(workflow):
    """The trajectory-relative regression gate runs once, after every bench
    that appends to ``results/trajectory.jsonl`` — so its verdict covers all
    of them and the uploaded artifact matches what was gated."""
    steps = workflow["jobs"]["bench-gate"]["steps"]
    runs = [step.get("run", "") for step in steps]
    check_idx = next((i for i, run in enumerate(runs)
                      if "check_trajectory.py" in run), None)
    assert check_idx is not None, "bench-gate never runs check_trajectory.py"
    for bench in ("bench_serving_scaleout.py", "bench_secure_serving.py"):
        bench_idx = next(i for i, run in enumerate(runs) if bench in run)
        assert bench_idx < check_idx, (
            f"{bench} must run before the trajectory check")


def test_bench_gate_uploads_the_trajectory_history(workflow):
    """The append-only ``trajectory.jsonl`` must ship with the artifact —
    it is the history the regression bands are derived from."""
    steps = workflow["jobs"]["bench-gate"]["steps"]
    upload = next(step for step in steps if "upload-artifact" in step.get("uses", ""))
    assert "benchmarks/results/*.jsonl" in upload["with"]["path"]
    assert "benchmarks/results/*.json" in upload["with"]["path"]


def test_lint_job_compiles_and_ruffs(workflow):
    runs = " ".join(step.get("run", "")
                    for job, step in all_steps(workflow) if job == "lint")
    assert "compileall" in runs
    assert "ruff check" in runs
    # The ruff config the job refers to must actually exist.
    assert "[tool.ruff" in (REPO_ROOT / "pyproject.toml").read_text()


def test_lint_job_checks_doc_links_and_docstrings(workflow):
    """The docs checker added with the ppml runtime PR runs in the lint job."""
    runs = " ".join(step.get("run", "")
                    for job, step in all_steps(workflow) if job == "lint")
    assert "tests/docs/test_doc_links.py" in runs
    assert (REPO_ROOT / "tests" / "docs" / "test_doc_links.py").exists()
