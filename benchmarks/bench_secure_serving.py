"""Secure-serving benchmark: the offline/online split under real serving.

``bench_secure_inference.py`` executes the paper's PPML claim in a single
process; this benchmark pushes it through the deployed path — worker
processes, warm-up-sized Beaver-triple pools, per-request accounting — and
gates on what the *serving* pipeline measured:

1. **Count integrity through the pool** — the per-request protocol totals
   accumulated by the offline phase while serving (``/stats``'s
   ``measured`` section) must equal the static ``ppml.analyse_model``
   counts exactly, requests × per-request budget, for both the ReLU
   baseline (``strategy="none"``) and the ``quadratic_no_relu``
   conversion.  Asserted at **any** core count: accounting does not need
   parallelism headroom.
2. **Triple-pool accounting exactness** — after serving,
   ``produced == available + consumed`` and ``consumed`` equals the number
   of requests served, in every pool.  Also asserted at any core count.
3. **The serving win** — the per-request online cost (warm-up trace priced
   under the protocol: per-op costs + one RTT per communication round) of
   the ``quadratic_no_relu``-converted server must beat the ReLU baseline's by
   ``MIN_ONLINE_RATIO`` (5x; the real gap is orders of magnitude).  The
   ratio gate arms at >= 3 cores — on smaller hosts the producers, the
   dispatcher and the workers all contend for the same core and the
   numbers say nothing about serving — and is printed report-only below.

Measured end-to-end secure QPS of both servers is reported (not gated:
wall-clock throughput on shared CI runners is noise; the cost model is the
paper's claim).

Run with ``PYTHONPATH=src python benchmarks/bench_secure_serving.py``.
``--quick`` / ``REPRO_BENCH_QUICK=1`` is the CI regression-gate mode
(fewer requests, identical assertions, same JSON artifact).
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import append_trajectory, check_against_trajectory, \
    format_trajectory_findings, fresh_seed, quick_mode, save_experiment

from repro import ppml
from repro.experiment import Experiment, get_preset
from repro.serve import ServeConfig, WorkerPool
from repro.utils.logging import format_table

#: fixed-point fractional bits of both secure servers
FRAC_BITS = 12
#: requests served through each secure pool
REQUESTS = 24
QUICK_REQUESTS = 6

#: the ReLU baseline's per-request online cost must exceed the converted
#: server's by at least this factor (same bar as bench_secure_inference)
MIN_ONLINE_RATIO = 5.0

#: declared error band of the capacity planner's secure predictions: the
#: plan's per-request online cost comes from its *own* traced probe forward,
#: which must agree with the serving pool's warm-up trace to within this
#: relative error (the protocol structure — rounds, triples, labels — must
#: match exactly).  Asserted at any core count: it is accounting, not timing.
PLAN_ONLINE_BAND = 0.05

#: trajectory-gate directions: which way is *better* per headline field.
TRAJECTORY_DIRECTIONS = {
    "online_ratio": "higher",
    "baseline_qps": "higher",
    "converted_qps": "higher",
    "converted_online_ms": "lower",
}


def serve_secure(spec, state, strategy: str, samples: np.ndarray) -> dict:
    """Serve ``samples`` through one secure 1-worker pool; return the record.

    One worker keeps the comparison about protocol cost, not parallelism —
    and makes ``consumed == len(samples)`` exact (no speculative batching
    differences between the two runs).
    """
    config = ServeConfig(workers=1, secure=True, strategy=strategy,
                         frac_bits=FRAC_BITS, startup_timeout=120.0)
    with WorkerPool(spec, state=state, config=config) as pool:
        start = time.perf_counter()
        futures = [pool.submit(sample) for sample in samples]
        outputs = [future.result(timeout=300.0) for future in futures]
        elapsed = time.perf_counter() - start
        trace = pool.warmup_trace
        stats = pool.stats()["secure"]
    return {
        "strategy": strategy,
        "outputs": outputs,
        "qps": len(samples) / elapsed,
        "trace": trace,
        "estimate": trace.estimate(),
        "offline": stats["offline"],
    }


def assert_accounting(record: dict, num_requests: int) -> None:
    """Gates 1 and 2: serving-path count integrity and pool exactness."""
    offline = record["offline"]
    measured, budget = offline["measured"], offline["budget"]
    assert measured["requests"] == num_requests
    for field, per_request in (("mult_ops", budget["triples"]),
                               ("relu_ops", budget["labels"]),
                               ("macs", budget["macs"]),
                               ("truncations", budget["truncations"]),
                               ("rounds", budget["rounds"])):
        expected = per_request * num_requests
        assert measured[field] == expected, (
            f"[{record['strategy']}] served {field} accounting drifted: "
            f"{measured[field]} != {num_requests} x {per_request}")
    for key, counters in offline["pools"].items():
        assert counters["produced"] == counters["available"] + counters["consumed"], (
            f"[{record['strategy']}] pool {key} accounting broken: {counters}")
    total_consumed = sum(c["consumed"] for c in offline["pools"].values())
    assert total_consumed == num_requests, (
        f"[{record['strategy']}] consumed {total_consumed} quanta "
        f"for {num_requests} requests")


def assert_static_match(record: dict, model, input_shape) -> None:
    """The warm-up trace (which sized the pools) equals the static counts."""
    static = ppml.analyse_model(model, input_shape, protocol="delphi")
    assert record["trace"].matches_report(static), (
        f"[{record['strategy']}] serving warm-up trace disagrees with the "
        f"static analysis: "
        f"{record['trace'].count_diff([l.operations for l in static.layers])}")


def validate_plan(experiment, baseline: dict, converted: dict) -> dict:
    """Capacity-planner validation against the served secure deployments.

    For each served strategy, asks :meth:`Experiment.plan` (with
    ``secure=True``) for the per-request protocol structure and online cost
    it *predicts* from one traced probe forward, and checks it against what
    the serving pool actually measured:

    * communication rounds, Beaver triples and garbled labels per request
      must match the pool's warm-up budget **exactly** (counts are
      shape-dependent, never timing-dependent), and
    * the predicted online cost must agree with the pool's warm-up estimate
      within ``PLAN_ONLINE_BAND`` (both sides price a trace under the same
      protocol constants, so drift means the planner probed a different
      model than the pool served).

    Wall-clock secure QPS is *reported* alongside the plan's queueing
    ceiling but stays ungated, consistent with this benchmark's convention:
    shared-runner wall time is noise, the cost model is the claim.
    """
    results = {}
    checks = []
    for record in (baseline, converted):
        strategy = record["strategy"]
        plan = experiment.plan(max(record["qps"], 1.0), workers=1,
                               secure=True, strategy=strategy,
                               frac_bits=FRAC_BITS)
        predicted = plan.secure.work
        budget = record["offline"]["budget"]
        measured_ms = record["estimate"].online_milliseconds
        online_err = abs(predicted.online_ms - measured_ms) / measured_ms
        checks.append((strategy, "rounds", predicted.rounds,
                       record["trace"].total_rounds, None))
        checks.append((strategy, "triples/request",
                       predicted.triples_per_request, budget["triples"], None))
        checks.append((strategy, "labels/request",
                       predicted.labels_per_request, budget["labels"], None))
        checks.append((strategy, "online ms/request", predicted.online_ms,
                       measured_ms, online_err))
        results[strategy] = {
            "predicted_online_ms": predicted.online_ms,
            "measured_online_ms": measured_ms,
            "online_rel_error": online_err,
            "predicted_capacity_qps": plan.capacity_rps,
            "measured_qps": record["qps"],
            "rounds_match": predicted.rounds == record["trace"].total_rounds,
            "triples_match": predicted.triples_per_request == budget["triples"],
            "labels_match": predicted.labels_per_request == budget["labels"],
        }

    rows = [[strategy, metric,
             f"{pred:,.3f}" if isinstance(pred, float) else f"{pred:,}",
             f"{meas:,.3f}" if isinstance(meas, float) else f"{meas:,}",
             ("exact" if err is None else f"{err:.1%}")]
            for strategy, metric, pred, meas, err in checks]
    print()
    print(format_table(
        ["Strategy", "Metric", "planned", "served", "error"], rows,
        title=f"Capacity planner vs secure serving — structure exact, online "
              f"cost within ±{PLAN_ONLINE_BAND:.0%} (gated at any core count)"))

    for strategy, metric, pred, meas, err in checks:
        if err is None:
            assert pred == meas, (
                f"capacity-plan drift [{strategy}]: planned {metric} {pred} "
                f"!= served {meas}")
        else:
            assert err <= PLAN_ONLINE_BAND, (
                f"capacity-plan drift [{strategy}]: planned {metric} {pred:.3f} "
                f"is {err:.1%} from served {meas:.3f} "
                f"(declared band: ±{PLAN_ONLINE_BAND:.0%})")
    print(f"capacity-plan gate passed: protocol structure exact, online cost "
          f"within ±{PLAN_ONLINE_BAND:.0%}")
    return results


def main() -> None:
    quick = quick_mode()
    num_requests = QUICK_REQUESTS if quick else REQUESTS
    fresh_seed()

    # The ReLU workload: the smoke spec with first-order layers.  Both
    # servers start from the *same* spec and weights; only the serving
    # strategy differs — exactly the deployment decision the paper costs.
    spec = get_preset("smoke")
    spec = spec.with_(model=spec.model.with_(neuron_type="first_order"))
    experiment = Experiment(spec)
    model = experiment.build()
    model.eval()
    state = model.state_dict()
    input_shape = tuple(spec.data.input_shape)

    rng = np.random.default_rng(5)
    samples = rng.standard_normal(
        (num_requests,) + input_shape).astype(np.float32)

    baseline = serve_secure(spec, state, "none", samples)
    converted = serve_secure(spec, state, "quadratic_no_relu", samples)

    # ---- gates 1 + 2 (any core count): accounting through the pool
    assert_accounting(baseline, num_requests)
    assert_accounting(converted, num_requests)
    assert_static_match(baseline, model, input_shape)
    converted_model, _ = ppml.to_ppml_friendly(model, strategy="quadratic_no_relu",
                                               inplace=False)
    assert_static_match(converted, converted_model, input_shape)
    # The conversion serves garbled-free; the baseline pays GCs per request.
    assert converted["trace"].garbled_free
    assert baseline["offline"]["measured"]["relu_ops"] > 0

    # ---- gate 3 (>= 3 cores): the online-cost win
    ratio = (baseline["estimate"].online_microseconds
             / converted["estimate"].online_microseconds)
    cores = os.cpu_count() or 1
    enforce = cores >= 3
    if enforce:
        assert ratio >= MIN_ONLINE_RATIO, (
            f"per-request online cost of the quadratic_no_relu server "
            f"({converted['estimate'].online_milliseconds:.2f} ms) is not "
            f">= {MIN_ONLINE_RATIO}x cheaper than the ReLU baseline "
            f"({baseline['estimate'].online_milliseconds:.2f} ms)")
        note = f"win gate ENFORCED (>= {MIN_ONLINE_RATIO:.0f}x, {cores} cpus)"
    else:
        note = f"{cores} cpu(s): win ratio reported, not asserted"

    rows = []
    for record in (baseline, converted):
        totals = record["trace"].totals()
        rows.append([
            record["strategy"], f"{record['qps']:.1f}",
            f"{totals['relu_ops']:,}", f"{totals['mult_ops']:,}",
            f"{record['estimate'].online_milliseconds:.2f} ms",
            f"{record['offline']['pools']['delphi/f12']['consumed']}",
        ])
    print(format_table(
        ["Served strategy", "QPS", "GC/req", "mults/req", "online/req",
         "quanta consumed"],
        rows,
        title=f"Secure serving: {num_requests} requests each through two "
              f"1-worker pools — {note}"
              + (" — quick/CI mode" if quick else ""),
    ))
    print()
    print(format_table(
        ["Metric", "Value"],
        [
            ["online-cost win (baseline / converted)",
             f"{ratio:.1f}x (gate: >= {MIN_ONLINE_RATIO:.0f}x at >= 3 cores)"],
            ["serving counts match static analysis", "yes (both servers)"],
            ["triple-pool accounting exact", "yes (both servers)"],
            ["secure QPS (ReLU baseline)", f"{baseline['qps']:.1f}"],
            ["secure QPS (quadratic_no_relu)", f"{converted['qps']:.1f}"],
        ],
        title="Secure serving gates (smoke spec, first-order weights)",
    ))

    plan_validation = validate_plan(experiment, baseline, converted)

    save_experiment("secure_serving", {
        "quick_mode": quick,
        "requests": num_requests,
        "frac_bits": FRAC_BITS,
        "cpus": cores,
        "win_gate_enforced": enforce,
        "online_ratio": ratio,
        "min_online_ratio": MIN_ONLINE_RATIO,
        "baseline": {"strategy": "none", "qps": baseline["qps"],
                     "online_ms": baseline["estimate"].online_milliseconds,
                     "trace": baseline["trace"].to_dict(),
                     "offline": baseline["offline"]},
        "converted": {"strategy": "quadratic_no_relu", "qps": converted["qps"],
                      "online_ms": converted["estimate"].online_milliseconds,
                      "trace": converted["trace"].to_dict(),
                      "offline": converted["offline"]},
        "plan_validation": plan_validation,
    })

    # Trajectory: check this run against its own history (past runs only),
    # then append.  Regressions gate with the same headroom rule as the win
    # ratio — wall-clock fields mean nothing on a time-sliced core.
    headline = {
        "quick_mode": quick,
        "cpus": cores,
        "online_ratio": ratio,
        "baseline_qps": baseline["qps"],
        "converted_qps": converted["qps"],
        "baseline_online_ms": baseline["estimate"].online_milliseconds,
        "converted_online_ms": converted["estimate"].online_milliseconds,
        "plan_online_rel_err":
            plan_validation["quadratic_no_relu"]["online_rel_error"],
    }
    findings = check_against_trajectory("secure_serving", headline,
                                        TRAJECTORY_DIRECTIONS)
    print("\n" + format_trajectory_findings("secure_serving", findings))
    append_trajectory("secure_serving", headline)
    regressions = [f for f in findings if f["status"] == "regression"]
    if enforce:
        assert not regressions, (
            "trajectory regression: "
            + "; ".join(f"{f['field']} = {f['value']:.4g} vs history median "
                        f"{f['median']:.4g} ± {f['tolerance']:.4g}"
                        for f in regressions))
        print("trajectory gate passed: no field outside its history band")
    elif regressions:
        print(f"(trajectory regressions report-only: {cores} cpu(s) leave "
              "no parallelism headroom)")


if __name__ == "__main__":
    main()
