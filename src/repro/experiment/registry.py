"""Named component registries behind the unified experiment API.

QuadraLib's surfaces were historically wired together by hand: model
factories lived in ``repro.models``, structure tables in
``repro.builder.config``, neuron designs in ``repro.quadratic.neuron_types``
and trainers in ``repro.training``.  The registries here give every component
family a single by-name lookup with a uniform error message, which is what
makes :class:`repro.experiment.ExperimentSpec` serializable: a spec only ever
stores registry *names*, never Python objects.

Registries
----------
``MODELS``         ``name -> factory(ModelSpec) -> Module``
``ARCHITECTURES``  named structure configurations (the former ``VGG_CFGS`` /
                   ``RESNET_BLOCKS`` / ``MOBILENET_CFGS`` tables)
``DATASETS``       ``name -> factory(DataSpec, train: bool) -> Dataset``
``NEURONS``        quadratic neuron designs (views of ``NEURON_TYPES``)
``TRAINERS``       ``name -> trainer(model, train_set, test_set, TrainSpec,
                   optimizer_factory=None, callbacks=(), experiment_spec=None)``
                   — ``Experiment.fit`` passes ``callbacks``/``experiment_spec``
                   only to trainers whose signature accepts them, so trainers
                   registered against the older 4+1-argument contract keep
                   working (they just don't see the engine extras)
``OPTIMIZERS``     ``name -> Optimizer class``
``CALLBACKS``      ``name -> repro.engine.Callback subclass``

New components register with the decorator form::

    @MODELS.register("my_model")
    def build_my_model(spec):
        return ...
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..builder.config import MOBILENET_CFGS, RESNET_BLOCKS, VGG_CFGS
from ..quadratic.neuron_types import NEURON_TYPES, is_first_order, resolve_type


_MISSING = object()


class Registry:
    """A named mapping of components with helpful unknown-key errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Any] = {}
        #: canonical (as-registered) spelling per lowercase key, for listings
        self._display: Dict[str, str] = {}

    # ------------------------------------------------------------ registration
    def register(self, name: str, obj: Any = _MISSING):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Lookup is case-insensitive; listings keep the registered spelling.
        """
        key = name.lower()

        def _add(value: Any) -> Any:
            if key in self._entries:
                raise ValueError(f"{self.kind} '{name}' is already registered")
            self._entries[key] = value
            self._display[key] = name
            return value

        if obj is _MISSING:
            return _add
        return _add(obj)

    # ------------------------------------------------------------------ lookup
    def get(self, name: str) -> Any:
        key = str(name).lower()
        if key not in self._entries:
            raise ValueError(
                f"unknown {self.kind} '{name}'; registered {self.kind}s: "
                f"{', '.join(self.names())}"
            )
        return self._entries[key]

    def names(self) -> List[str]:
        return [self._display[key] for key in sorted(self._entries)]

    def items(self) -> List[Tuple[str, Any]]:
        return [(self._display[key], self._entries[key])
                for key in sorted(self._entries)]

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


MODELS = Registry("model")
ARCHITECTURES = Registry("architecture")
DATASETS = Registry("dataset")
NEURONS = Registry("neuron type")
TRAINERS = Registry("trainer")
OPTIMIZERS = Registry("optimizer")
CALLBACKS = Registry("callback")


# --------------------------------------------------------------------------- #
# Architectures: the former VGG_CFGS / RESNET_BLOCKS / MOBILENET_CFGS tables.
# The dicts in ``builder.config`` remain as aliases; the registry is the
# canonical by-name lookup the spec layer and CLI use.
# --------------------------------------------------------------------------- #

for _name, _cfg in VGG_CFGS.items():
    ARCHITECTURES.register(_name, {"family": "vgg", "cfg": list(_cfg)})
for _name, _blocks in RESNET_BLOCKS.items():
    ARCHITECTURES.register(_name, {"family": "resnet", "cfg": list(_blocks)})
for _name, _mcfg in MOBILENET_CFGS.items():
    ARCHITECTURES.register(_name, {"family": "mobilenet",
                                   "cfg": [list(block) for block in _mcfg]})


# --------------------------------------------------------------------------- #
# Neuron designs: views of the Table-1 registry (aliases resolve on lookup).
# --------------------------------------------------------------------------- #

for _name, _spec in NEURON_TYPES.items():
    NEURONS.register(_name, _spec)
NEURONS.register("first_order", None)  # the linear baseline is a valid choice


def neuron_names() -> List[str]:
    """Canonical neuron names, baseline first (for CLI listings)."""
    return ["first_order"] + [n for n in NEURONS.names() if n.lower() != "first_order"]


def check_neuron_type(neuron_type: str) -> str:
    """Canonical name of ``neuron_type``; ``ValueError`` listing known designs."""
    if is_first_order(neuron_type):
        return "first_order"
    try:
        return resolve_type(neuron_type).name
    except KeyError:
        raise ValueError(
            f"unknown neuron type '{neuron_type}'; registered neuron types: "
            f"{', '.join(neuron_names())}"
        ) from None


# --------------------------------------------------------------------------- #
# Models: uniform ``factory(ModelSpec) -> Module`` adapters over the zoo.
# Factories read ``spec.num_classes`` / ``spec.to_config()`` / ``spec.extra``.
# --------------------------------------------------------------------------- #

def _register_zoo_models() -> None:
    from ..models.mobilenet import MobileNetV1
    from ..models.resnet import ResNet
    from ..models.simple import FirstOrderMLP, LeNet, QuadraticMLP, SmallConvNet
    from ..models.vgg import VGG

    def _vgg(arch: str):
        def build(spec):
            return VGG(arch, num_classes=spec.num_classes, config=spec.to_config(),
                       **spec.extra)
        build.__name__ = f"build_{arch.lower()}"
        return build

    def _resnet(arch: str):
        def build(spec):
            return ResNet(arch, num_classes=spec.num_classes, config=spec.to_config(),
                          **spec.extra)
        build.__name__ = f"build_{arch.lower()}"
        return build

    MODELS.register("vgg8", _vgg("VGG8"))
    MODELS.register("vgg11", _vgg("VGG11"))
    MODELS.register("vgg16", _vgg("VGG16"))
    MODELS.register("vgg16_quadra", _vgg("VGG16_QUADRA"))
    MODELS.register("resnet8", _resnet("RESNET8"))
    MODELS.register("resnet20", _resnet("RESNET20"))
    MODELS.register("resnet32", _resnet("RESNET32"))
    MODELS.register("resnet32_quadra", _resnet("RESNET32_QUADRA"))

    @MODELS.register("mobilenet_v1")
    def build_mobilenet_v1(spec):
        cfg = ARCHITECTURES.get("MOBILENET13")["cfg"]
        return MobileNetV1([tuple(b) for b in cfg], num_classes=spec.num_classes,
                           config=spec.to_config(), **spec.extra)

    @MODELS.register("mobilenet_v1_quadra")
    def build_mobilenet_v1_quadra(spec):
        cfg = ARCHITECTURES.get("MOBILENET8")["cfg"]
        return MobileNetV1([tuple(b) for b in cfg], num_classes=spec.num_classes,
                           config=spec.to_config(), **spec.extra)

    @MODELS.register("lenet")
    def build_lenet(spec):
        return LeNet(num_classes=spec.num_classes, config=spec.to_config(), **spec.extra)

    @MODELS.register("small_convnet")
    def build_small_convnet(spec):
        extra = dict(spec.extra)
        if "channels" in extra:
            extra["channels"] = tuple(int(c) for c in extra["channels"])
        return SmallConvNet(num_classes=spec.num_classes, config=spec.to_config(), **extra)

    @MODELS.register("mlp")
    def build_mlp_model(spec):
        extra = dict(spec.extra)
        sizes = [int(s) for s in extra.pop("layer_sizes", (16, 32))]
        layer_sizes = sizes + [spec.num_classes]
        if is_first_order(spec.neuron_type):
            return FirstOrderMLP(layer_sizes, **extra)
        return QuadraticMLP(layer_sizes, neuron_type=spec.neuron_type,
                            hybrid_bp=spec.hybrid_bp, **extra)


_register_zoo_models()


# --------------------------------------------------------------------------- #
# Datasets: ``factory(DataSpec, train) -> Dataset``.
# --------------------------------------------------------------------------- #

def _register_datasets() -> None:
    from ..data.dataset import TensorDataset
    from ..data.synthetic import SyntheticImageClassification
    from ..data.synthetic.toy import circle_dataset, xor_dataset

    @DATASETS.register("synthetic_classification")
    def build_synthetic_classification(spec, train: bool):
        return SyntheticImageClassification(
            num_samples=spec.num_samples if train else spec.test_samples,
            num_classes=spec.num_classes,
            image_size=spec.image_size,
            channels=spec.channels,
            seed=spec.seed,
            split_seed=0 if train else 1,
            **spec.extra,
        )

    def _toy(generator):
        def build(spec, train: bool):
            x, y = generator(spec.num_samples if train else spec.test_samples,
                             seed=spec.seed + (0 if train else 1))
            return TensorDataset(x, y)
        return build

    DATASETS.register("xor", _toy(xor_dataset))
    DATASETS.register("circle", _toy(circle_dataset))


_register_datasets()


# --------------------------------------------------------------------------- #
# Trainers and optimizers.
# --------------------------------------------------------------------------- #

def _register_trainers() -> None:
    from ..engine import run_classification

    @TRAINERS.register("classifier")
    def classifier_trainer(model, train_set, test_set, spec,
                           optimizer_factory: Optional[Callable] = None,
                           callbacks=(), experiment_spec=None):
        """The engine-backed classification trainer.

        ``callbacks`` and ``experiment_spec`` (the full spec dict embedded
        into checkpoints for ``repro train --resume``) come from the
        :class:`Experiment` facade; the checkpoint/prefetch knobs come from
        the ``TrainSpec`` itself.
        """
        return run_classification(
            model, train_set, test_set,
            epochs=spec.epochs, batch_size=spec.batch_size, lr=spec.lr,
            momentum=spec.momentum, weight_decay=spec.weight_decay,
            scheduler=spec.scheduler, label_smoothing=spec.label_smoothing,
            max_batches_per_epoch=spec.max_batches_per_epoch, seed=spec.seed,
            optimizer_factory=optimizer_factory,
            prefetch=spec.prefetch, prefetch_depth=spec.prefetch_depth,
            checkpoint_dir=spec.checkpoint_dir, checkpoint_every=spec.checkpoint_every,
            resume_from=spec.resume_from, stop_after_epoch=spec.stop_after_epoch,
            callbacks=callbacks, spec=experiment_spec,
        )


def _register_callbacks() -> None:
    from ..engine import CheckpointCallback, EarlyStopping, LambdaCallback, ProgressCallback

    CALLBACKS.register("checkpoint", CheckpointCallback)
    CALLBACKS.register("early_stopping", EarlyStopping)
    CALLBACKS.register("progress", ProgressCallback)
    CALLBACKS.register("lambda", LambdaCallback)


def _register_optimizers() -> None:
    from ..optim import SGD, Adagrad, Adam, AdamW, RMSprop

    OPTIMIZERS.register("sgd", SGD)
    OPTIMIZERS.register("adam", Adam)
    OPTIMIZERS.register("adamw", AdamW)
    OPTIMIZERS.register("rmsprop", RMSprop)
    OPTIMIZERS.register("adagrad", Adagrad)


_register_trainers()
_register_optimizers()
_register_callbacks()
