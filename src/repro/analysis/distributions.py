"""Weight / gradient / activation distribution statistics (QuadraLib analysis tools).

The paper's Application Level provides "activation and weight/gradient
distribution visualization".  Offline and headless, the same information is
exposed as summary statistics and fixed-bin histograms that the benchmarks and
examples print as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..nn.module import Module


@dataclass
class DistributionSummary:
    """Five-number summary plus moments of an array."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    fraction_near_zero: float

    @classmethod
    def from_array(cls, name: str, values: np.ndarray, zero_tol: float = 1e-6
                   ) -> "DistributionSummary":
        flat = np.asarray(values).ravel()
        if flat.size == 0:
            return cls(name, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
        return cls(
            name=name,
            mean=float(flat.mean()),
            std=float(flat.std()),
            minimum=float(flat.min()),
            maximum=float(flat.max()),
            fraction_near_zero=float((np.abs(flat) < zero_tol).mean()),
        )


def weight_distributions(model: Module) -> List[DistributionSummary]:
    """Summaries of every parameter tensor in the model."""
    return [DistributionSummary.from_array(name, param.data)
            for name, param in model.named_parameters()]


def gradient_distributions(model: Module) -> List[DistributionSummary]:
    """Summaries of every parameter's gradient (zeros if not yet computed)."""
    summaries = []
    for name, param in model.named_parameters():
        grad = param.grad if param.grad is not None else np.zeros(1, dtype=np.float32)
        summaries.append(DistributionSummary.from_array(name, grad))
    return summaries


def activation_distributions(model: Module, images: np.ndarray,
                             layer_names: Optional[Sequence[str]] = None
                             ) -> Dict[str, DistributionSummary]:
    """Summaries of layer outputs for a probe batch (captured via hooks)."""
    captured: Dict[str, np.ndarray] = {}
    removers = []

    def make_hook(name: str):
        def hook(_module, _inputs, output):
            if isinstance(output, Tensor):
                captured[name] = output.data
        return hook

    for name, module in model.named_modules():
        if not module._modules:  # leaves only
            if layer_names is None or any(f in name for f in layer_names):
                removers.append(module.register_forward_hook(make_hook(name)))

    was_training = model.training
    model.train(False)
    try:
        with no_grad():
            model(Tensor(np.asarray(images, dtype=np.float32)))
    finally:
        for remove in removers:
            remove()
        model.train(was_training)
    return {name: DistributionSummary.from_array(name, values)
            for name, values in captured.items()}


def histogram(values: np.ndarray, bins: int = 20, value_range: Optional[tuple] = None
              ) -> Dict[str, np.ndarray]:
    """Fixed-bin histogram (counts and edges) of an array."""
    counts, edges = np.histogram(np.asarray(values).ravel(), bins=bins, range=value_range)
    return {"counts": counts, "edges": edges}
