"""The prefetching pipeline must match the synchronous loader bit for bit."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    PrefetchDataLoader,
    TensorDataset,
    TransformDataset,
    transforms,
)


def _dataset(n=64, augmented=False, seed=0):
    rng = np.random.default_rng(7)
    x = rng.standard_normal((n, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 4, size=n)
    base = TensorDataset(x, y)
    if not augmented:
        return base
    pipeline = transforms.Compose([
        transforms.RandomCrop(8, padding=2, seed=seed),
        transforms.RandomHorizontalFlip(seed=seed),
        transforms.GaussianNoise(0.05, seed=seed),
    ])
    return TransformDataset(base, pipeline)


def _collect(loader, epochs=1, limit=None):
    batches = []
    for _ in range(epochs):
        for index, (images, labels) in enumerate(loader):
            if limit is not None and index >= limit:
                break
            batches.append((np.array(images), np.array(labels)))
    return batches


def assert_batches_equal(a, b):
    assert len(a) == len(b)
    for (img_a, lab_a), (img_b, lab_b) in zip(a, b):
        assert np.array_equal(img_a, img_b)
        assert np.array_equal(lab_a, lab_b)


class TestPrefetchParity:
    def test_same_batches_and_order_over_multiple_epochs(self):
        sync = DataLoader(_dataset(), batch_size=8, shuffle=True, drop_last=True, seed=3)
        wrapped = PrefetchDataLoader(
            DataLoader(_dataset(), batch_size=8, shuffle=True, drop_last=True, seed=3),
            depth=3)
        # Two epochs: the shuffle RNG must advance identically across epochs.
        assert_batches_equal(_collect(sync, epochs=2), _collect(wrapped, epochs=2))

    def test_stateful_transforms_match_bit_for_bit(self):
        sync = DataLoader(_dataset(augmented=True), batch_size=8, shuffle=True,
                          drop_last=True, seed=3)
        wrapped = PrefetchDataLoader(
            DataLoader(_dataset(augmented=True), batch_size=8, shuffle=True,
                       drop_last=True, seed=3), depth=2)
        assert_batches_equal(_collect(sync, epochs=2), _collect(wrapped, epochs=2))

    def test_max_batches_keeps_transform_rngs_aligned(self):
        """A capped epoch must leave per-sample transform RNGs where a capped
        synchronous epoch leaves them: the training loops pull one batch past
        the cap before breaking, so the worker assembles cap + 1 batches."""
        cap = 2
        sync = DataLoader(_dataset(augmented=True), batch_size=8, shuffle=True,
                          drop_last=True, seed=3)
        wrapped = PrefetchDataLoader(
            DataLoader(_dataset(augmented=True), batch_size=8, shuffle=True,
                       drop_last=True, seed=3),
            depth=2, max_batches=cap + 1)
        # _collect(limit=cap) mirrors the trainer: it pulls batch `cap` and
        # only then breaks, so each epoch advances the transforms cap+1 times.
        sync_batches = _collect(sync, epochs=2, limit=cap)
        prefetch_batches = _collect(wrapped, epochs=2, limit=cap)
        assert len(prefetch_batches) == 2 * cap
        assert_batches_equal(sync_batches, prefetch_batches)


class TestPrefetchBehaviour:
    def test_len_reflects_cap(self):
        loader = DataLoader(_dataset(64), batch_size=8)
        assert len(PrefetchDataLoader(loader)) == 8
        assert len(PrefetchDataLoader(loader, max_batches=3)) == 3
        assert len(PrefetchDataLoader(loader, max_batches=100)) == 8

    def test_delegates_dataset_and_batch_size(self):
        loader = DataLoader(_dataset(64), batch_size=8)
        wrapped = PrefetchDataLoader(loader)
        assert wrapped.dataset is loader.dataset
        assert wrapped.batch_size == 8

    def test_depth_validation(self):
        loader = DataLoader(_dataset(), batch_size=8)
        with pytest.raises(ValueError, match="depth"):
            PrefetchDataLoader(loader, depth=0)
        with pytest.raises(ValueError, match="max_batches"):
            PrefetchDataLoader(loader, max_batches=-1)

    def test_early_break_does_not_hang(self):
        wrapped = PrefetchDataLoader(DataLoader(_dataset(64), batch_size=4), depth=1)
        start = time.perf_counter()
        for _ in range(3):
            for batch in wrapped:
                break  # consumer abandons the epoch immediately
        assert time.perf_counter() - start < 5.0
        # And the loader is reusable afterwards.
        assert len(_collect(wrapped)) == len(wrapped)

    def test_worker_errors_propagate(self):
        class Exploding(TensorDataset):
            def __getitem__(self, index):
                if index >= 8:
                    raise RuntimeError("bad sample")
                return super().__getitem__(index)

        data = Exploding(np.zeros((16, 3, 4, 4), dtype=np.float32),
                         np.zeros(16, dtype=np.int64))
        wrapped = PrefetchDataLoader(DataLoader(data, batch_size=4), depth=1)
        with pytest.raises(RuntimeError, match="bad sample"):
            _collect(wrapped)

    def test_rng_state_round_trips_through_wrapper(self):
        loader = DataLoader(_dataset(), batch_size=8, shuffle=True, seed=1)
        wrapped = PrefetchDataLoader(loader, depth=2)
        state = wrapped.rng_state()
        first = _collect(wrapped)
        wrapped.set_rng_state(state)
        again = _collect(wrapped)
        assert_batches_equal(first, again)
