"""Quadratic fully-connected layers for every neuron type of Table 1."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...autodiff.tensor import einsum as _einsum
from ...autodiff.tensor import Tensor
from ...nn import functional as F
from ...nn import init
from ...nn.parameter import Parameter
from .base import QuadraticLayerBase


class QuadraticLinear(QuadraticLayerBase):
    """Dense quadratic layer ``f(X)`` for any registered neuron type.

    For the paper's design (``OURS``) the layer owns three weight matrices of
    the ordinary ``(out_features, in_features)`` shape — exactly three
    first-order neurons assembled with a Hadamard product and a sum, which is
    the implementation-feasibility argument (P4).  T1-family types own an
    additional full-rank tensor of shape ``(out_features, in, in)`` whose
    quadratic cost is what P2 warns about.

    Parameters
    ----------
    in_features, out_features : int
    neuron_type : str
        Canonical name or alias (``"OURS"``, ``"T2"``, ``"fan"``, …).
    bias : bool
        Learn an additive bias added after the combination step.
    """

    def __init__(self, in_features: int, out_features: int, neuron_type: str = "OURS",
                 bias: bool = True) -> None:
        super().__init__(neuron_type)
        self.in_features = int(in_features)
        self.out_features = int(out_features)

        shape = (out_features, in_features)
        if "a" in self.required:
            self.weight_a = Parameter(init.kaiming_uniform(shape))
        if "b" in self.required:
            self.weight_b = Parameter(init.kaiming_uniform(shape))
        if "c" in self.required:
            # The linear path starts near identity-scale so it behaves like an
            # identity mapping early in training (paper Sec. 3.2).
            self.weight_c = Parameter(init.kaiming_uniform(shape, gain=1.0))
        if "sq" in self.required:
            self.weight_sq = Parameter(init.kaiming_uniform(shape))
        if "bilinear" in self.required:
            self.weight_bilinear = Parameter(
                init.kaiming_uniform((out_features, in_features, in_features),
                                     gain=1.0 / max(in_features, 1) ** 0.5)
            )
        if "id" in self.required and in_features != out_features:
            raise ValueError(
                "T4_ID (identity mapping) requires in_features == out_features; "
                f"got {in_features} != {out_features}. Use neuron_type='OURS' for a "
                "learned linear path instead."
            )
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,))) if bias else None

    # ----------------------------------------------------------- projections
    def project(self, x: Tensor, kind: str) -> Tensor:
        if kind == "a":
            return F.linear(x, self.weight_a)
        if kind == "b":
            return F.linear(x, self.weight_b)
        if kind == "c":
            return F.linear(x, self.weight_c)
        if kind == "sq":
            return F.linear(x * x, self.weight_sq)
        if kind == "id":
            return x
        if kind == "bilinear":
            # Xᵀ Wa X per output unit: contract once with einsum, then with a
            # Hadamard product + sum so only two-operand primitives are needed.
            partial = _einsum("oij,nj->noi", self.weight_bilinear, x)
            return (partial * x.unsqueeze(1)).sum(axis=-1)
        raise KeyError(f"unknown projection kind '{kind}'")

    def post_combine(self, out: Tensor) -> Tensor:
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (f"in_features={self.in_features}, out_features={self.out_features}, "
                f"type={self.neuron_type}, bias={self.bias is not None}")
