"""GAN image generation with a quadratic generator (paper Sec. 5.3 / Table 5).

Run with::

    python examples/gan_generation.py

Trains a small SNGAN (first-order generator) and its QuadraNN variant
(every generator convolution converted to the paper's quadratic layer) on a
synthetic multi-modal image distribution, then scores both with the proxy
Inception Score and FID.
"""

import numpy as np

from repro.data.synthetic import SyntheticGenerationDataset
from repro.metrics import ProxyInception, evaluate_generator
from repro.models import sngan_pair
from repro.training import generate_images, train_sngan
from repro.utils import print_table, seed_everything

IMAGE = 16
STEPS = 40
BATCH = 16
EVAL_IMAGES = 96


def main() -> None:
    seed_everything(0)
    dataset = SyntheticGenerationDataset(num_samples=256, image_size=IMAGE, num_modes=6)
    print("Training the proxy feature network (stands in for Inception-v3)...")
    proxy = ProxyInception(dataset, epochs=3, batch_size=32)
    real_reference = dataset.sample(EVAL_IMAGES, rng=np.random.default_rng(1))

    rows = []
    for name, neuron_type in (("SNGAN (first-order)", "first_order"),
                              ("QuadraNN generator", "OURS")):
        seed_everything(2)
        generator, discriminator = sngan_pair(latent_dim=16, base_channels=8,
                                              image_size=IMAGE, neuron_type=neuron_type)
        print(f"Training {name} for {STEPS} adversarial steps...")
        history = train_sngan(generator, discriminator, dataset, steps=STEPS, batch_size=BATCH)
        samples = generate_images(generator, EVAL_IMAGES)
        scores = evaluate_generator(proxy, samples, real=real_reference)
        rows.append([name, f"{scores.inception_score:.3f} ± {scores.inception_score_std:.3f}",
                     f"{scores.fid:.2f}", f"{history.final_generator_loss:.3f}"])

    real_scores = evaluate_generator(proxy, dataset.sample(EVAL_IMAGES), real=real_reference)
    rows.append(["Real data (upper bound)",
                 f"{real_scores.inception_score:.3f} ± {real_scores.inception_score_std:.3f}",
                 f"{real_scores.fid:.2f}", "-"])

    print()
    print_table(["Generator", "Proxy IS (↑)", "Proxy FID (↓)", "Final G loss"], rows,
                title="Table 5-style comparison on the synthetic image distribution")


if __name__ == "__main__":
    main()
