"""ServeConfig validation and round-tripping."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.workers == 2
        assert config.effective_watermark == config.workers * config.queue_depth

    def test_explicit_watermark_wins(self):
        assert ServeConfig(watermark=5).effective_watermark == 5

    @pytest.mark.parametrize("field, value", [
        ("workers", 0),
        ("max_batch_size", 0),
        ("max_wait", -0.1),
        ("queue_depth", 0),
        ("watermark", -1),
        ("max_retries", -1),
        ("cache_size", -1),
        ("request_timeout", 0),
        ("startup_timeout", -1.0),
        ("drain_timeout", 0),
        ("start_method", "thread"),
    ])
    def test_invalid_values_raise(self, field, value):
        with pytest.raises(ValueError):
            ServeConfig(**{field: value})

    def test_dict_round_trip(self):
        config = ServeConfig(workers=3, watermark=9, cache_size=0, port=0)
        clone = ServeConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServeConfig field"):
            ServeConfig.from_dict({"workres": 2})

    def test_with_returns_modified_copy(self):
        config = ServeConfig()
        changed = config.with_(workers=4)
        assert changed.workers == 4 and config.workers == 2
