"""Ablation A2 — auto-builder: RI-guided layer reduction vs. naive conversion.

The paper's auto-builder first replaces layers and then removes the
highest-RI layers (Eq. 5).  This ablation quantifies both steps on a small
model: parameter counts of (a) the first-order baseline, (b) the naive
full conversion, (c) the RI-reduced conversion, plus the RI ranking itself
and a check that an RI-guided removal hurts accuracy no more than removing
the *lowest*-RI (i.e. most important) layer.
"""

import numpy as np
import pytest

from common import BATCH_SIZE, IMAGE_SIZE, MAX_BATCHES, NUM_CLASSES, classification_data, fresh_seed, save_experiment
from repro import nn
from repro.builder import AutoBuilder, QuadraticModelConfig, compute_layer_indicators
from repro.builder.indicator import _set_submodule
from repro.data import DataLoader
from repro.models import SmallConvNet
from repro.training import evaluate_classifier, train_classifier
from repro.utils import print_table


def _trained_model(train_set):
    fresh_seed(90)
    model = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE,
                         config=QuadraticModelConfig(neuron_type="first_order",
                                                     width_multiplier=0.5))
    train_classifier(model, train_set, epochs=2, batch_size=BATCH_SIZE, lr=0.05,
                     max_batches_per_epoch=MAX_BATCHES, seed=29)
    return model


def test_ablation_autobuilder_ri_reduction(benchmark):
    train_set, test_set = classification_data()
    test_loader = DataLoader(test_set, batch_size=32)

    model = _trained_model(train_set)
    baseline_params = model.num_parameters()
    baseline_acc = evaluate_classifier(model, test_loader)

    def eval_fn(m):
        return evaluate_classifier(m, test_loader)

    # RI ranking over the three feature convolutions of the trained model.
    candidates = [name for name, module in model.named_modules()
                  if type(module).__name__ == "Conv2d" and name.startswith("features")]
    indicators = compute_layer_indicators(model, (3, IMAGE_SIZE, IMAGE_SIZE),
                                          candidate_layers=candidates, eval_fn=eval_fn)
    removable = [item for item in indicators if np.isfinite(item.accuracy_drop) and item.ri > 0]

    rows = [[item.name, round(item.param_ratio, 3), round(item.compute_ratio, 3),
             round(item.accuracy_drop, 3), round(item.ri, 4)] for item in indicators]
    print()
    print_table(["Layer", "P(Mpar)", "P(Tlat)", "ΔAcc", "RI (Eq. 5)"], rows,
                title="Ablation A2: RI layer-performance indicator on the trained model")

    # Conversion step comparison.
    naive = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE,
                         config=QuadraticModelConfig(neuron_type="OURS", width_multiplier=0.5))
    builder = AutoBuilder(neuron_type="OURS")
    converted = _trained_model(train_set)
    builder.convert(converted)
    reduction = builder.reduce_structure(converted, (3, IMAGE_SIZE, IMAGE_SIZE),
                                         max_removals=1)

    summary_rows = [
        ["First-order baseline", baseline_params, round(baseline_acc, 3)],
        ["Naive quadratic conversion", naive.num_parameters(), "-"],
        ["Auto-built (converted + RI-reduced)", converted.num_parameters(),
         round(eval_fn(converted), 3)],
    ]
    print_table(["Model", "#Param", "Test acc"], summary_rows,
                title="Ablation A2: conversion and reduction summary")

    save_experiment("ablation_autobuilder", {
        "baseline_parameters": baseline_params,
        "baseline_accuracy": baseline_acc,
        "naive_parameters": naive.num_parameters(),
        "reduced_parameters": converted.num_parameters(),
        "removed_layers": reduction.removed_layers,
        "ri_ranking": [{"name": i.name, "ri": i.ri, "accuracy_drop": i.accuracy_drop}
                       for i in indicators],
    })

    # The naive conversion costs far more parameters than the baseline.  The
    # converted convolutions triple their weights; the dense classifier head of
    # this small ConvNet stays first-order, so the whole-model ratio lands
    # around 1.9x rather than the full 3x.
    assert naive.num_parameters() > 1.5 * baseline_params
    # The RI ranking is sorted and contains every candidate convolution.
    assert len(indicators) == len(candidates)
    assert all(a.ri >= b.ri for a, b in zip(indicators, indicators[1:]))

    # Timed kernel: computing the RI indicators (cost-only mode).
    benchmark(lambda: compute_layer_indicators(model, (3, IMAGE_SIZE, IMAGE_SIZE),
                                               candidate_layers=candidates))
