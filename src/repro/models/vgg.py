"""VGG-style models (first-order and quadratic).

VGG-16 is the paper's main plain-structure backbone: Table 2 (convergence of
neuron designs), Table 3 (CIFAR accuracy/efficiency), Table 4 (Tiny-ImageNet)
and the SSD detector of Table 6 all use it.  VGG-8 is the shallow variant of
Table 2.  The quadratic versions are produced by the same construction
function with a different neuron type, and the "QuadraNN" variant additionally
uses the reduced 7-convolution configuration chosen by the auto-builder.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .. import nn
from ..builder.config import VGG_CFGS, QuadraticModelConfig, conv_layer_count, scale_vgg_cfg
from ..builder.constructors import build_classifier_head, build_plain_convnet
from ..nn.module import Module


class VGG(Module):
    """Plain convolutional network defined by a VGG channel configuration."""

    def __init__(self, cfg: Union[str, Sequence], num_classes: int = 10,
                 config: Optional[QuadraticModelConfig] = None, in_channels: int = 3,
                 classifier_hidden: Optional[int] = None) -> None:
        super().__init__()
        self.config = config or QuadraticModelConfig(neuron_type="first_order")
        if isinstance(cfg, str):
            cfg = VGG_CFGS[cfg.upper()]
        self.cfg = list(cfg)
        self.num_conv_layers = conv_layer_count(self.cfg)
        self.features, feature_channels = build_plain_convnet(self.cfg, self.config,
                                                              in_channels=in_channels)
        self.classifier = build_classifier_head(feature_channels, num_classes,
                                                hidden=classifier_hidden)
        self.num_classes = num_classes

    def forward(self, x):
        return self.classifier(self.features(x))

    def inference_plan(self):
        """Execution stages for :func:`repro.inference.compile_model`."""
        return (self.features, self.classifier)

    def extra_repr(self) -> str:
        return f"conv_layers={self.num_conv_layers}, type={self.config.neuron_type}"


def vgg8(num_classes: int = 10, neuron_type: str = "first_order",
         width_multiplier: float = 1.0, **kwargs) -> VGG:
    """VGG-8: the shallow plain network of Table 2."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return VGG("VGG8", num_classes=num_classes, config=config)


def vgg16(num_classes: int = 10, neuron_type: str = "first_order",
          width_multiplier: float = 1.0, **kwargs) -> VGG:
    """VGG-16 (13 convolution layers), the paper's first-order baseline."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return VGG("VGG16", num_classes=num_classes, config=config)


def vgg16_quadra(num_classes: int = 10, neuron_type: str = "OURS",
                 width_multiplier: float = 1.0, **kwargs) -> VGG:
    """The auto-built QuadraNN VGG: 7 quadratic convolution layers (Table 3)."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return VGG("VGG16_QUADRA", num_classes=num_classes, config=config)


def vgg_from_cfg(cfg: Sequence, num_classes: int, config: QuadraticModelConfig) -> VGG:
    """Build a VGG from an explicit configuration (used by the auto-builder)."""
    return VGG(cfg, num_classes=num_classes, config=config)
