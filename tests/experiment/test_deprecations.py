"""The legacy call signatures keep working behind single deprecation warnings."""

from __future__ import annotations

import warnings

import pytest

from repro.builder import quadratize_module
from repro.data.synthetic import SyntheticImageClassification
from repro.models import SmallConvNet
from repro.nn.layers.conv import Conv2d
from repro.training import train_classifier
from repro.utils import reset_deprecation_warnings


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _tiny_data():
    return SyntheticImageClassification(num_samples=16, num_classes=3, image_size=8,
                                        split_seed=0)


class TestTrainerShim:
    def test_old_signature_warns_and_still_trains(self):
        model = SmallConvNet(num_classes=3, image_size=8)
        with pytest.warns(DeprecationWarning, match="Experiment"):
            history = train_classifier(model, _tiny_data(), epochs=1, batch_size=8,
                                       max_batches_per_epoch=1)
        # The shim delegates to the unchanged loop: one epoch of real training.
        assert len(history.train_loss) == 1
        assert history.train_loss[0] == history.train_loss[0]  # not NaN by accident

    def test_warning_fires_exactly_once(self):
        model = SmallConvNet(num_classes=3, image_size=8)
        data = _tiny_data()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            train_classifier(model, data, epochs=1, batch_size=8, max_batches_per_epoch=1)
            train_classifier(model, data, epochs=1, batch_size=8, max_batches_per_epoch=1)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "Experiment" in str(deprecations[0].message)


class TestBuilderShim:
    def test_old_signature_warns_and_still_converts(self):
        model = SmallConvNet(num_classes=3, image_size=8)
        convs_before = sum(1 for _, m in model.named_modules() if isinstance(m, Conv2d))
        with pytest.warns(DeprecationWarning, match="auto_build"):
            converted = quadratize_module(model, neuron_type="OURS")
        assert converted == convs_before > 0

    def test_warning_fires_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            quadratize_module(SmallConvNet(num_classes=3, image_size=8))
            quadratize_module(SmallConvNet(num_classes=3, image_size=8))
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1


class TestCliShims:
    def test_legacy_train_subcommand_warns_and_trains(self, capsys):
        from repro.cli import main

        with pytest.warns(DeprecationWarning, match="repro run"):
            assert main(["train", "--model", "lenet", "--width-multiplier", "0.25",
                         "--image-size", "16", "--num-classes", "3", "--samples", "16",
                         "--epochs", "1", "--batch-size", "8", "--max-batches", "1"]) == 0
        assert "Train acc" in capsys.readouterr().out
