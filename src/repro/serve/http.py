"""Stdlib-only HTTP front door over the worker pool.

Three endpoints, all JSON:

* ``POST /predict`` — body ``{"input": <nested list>}`` shaped like the
  spec's ``data.input_shape``.  Answers ``{"output": [...], "cached": bool}``.
  Malformed JSON or a wrong shape is ``400``; a saturated pool or a draining
  server is ``503`` (load shedding); a worker failure that exhausted its
  retries is ``500``.
* ``GET /healthz`` — ``200 {"status": "ok"}`` while serving, ``503`` with
  ``"draining"``/``"unhealthy"`` while shutting down or with dead workers.
* ``GET /stats`` — cache, per-endpoint latency and pool counters.

The server is a :class:`http.server.ThreadingHTTPServer` (one thread per
connection) whose handlers do no inference themselves — they parse, consult
the LRU cache, and block on a :class:`~repro.serve.pool.PoolFuture`, so many
connections can wait on the pool concurrently.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .cache import LRUCache, input_digest
from .config import ServeConfig
from .metrics import ServingMetrics
from .pool import PoolClosed, PoolSaturated, WorkerCrashed, WorkerPool


class ServingApp:
    """Transport-free request handling: parse → cache → pool → JSON.

    Separated from the HTTP plumbing so tests (and in-process callers like
    ``ServingServer.predict``) can drive the exact request path without a
    socket.
    """

    def __init__(self, pool: WorkerPool, input_shape: Tuple[int, ...],
                 config: Optional[ServeConfig] = None) -> None:
        self.pool = pool
        self.input_shape = tuple(input_shape)
        self.config = config or getattr(pool, "config", ServeConfig())
        self.cache = LRUCache(self.config.cache_size)
        self.metrics = ServingMetrics()
        self.draining = False

    # ----------------------------------------------------------------- /predict
    def predict_array(self, sample: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Answer one sample through cache + pool; returns (output, cached)."""
        sample = np.asarray(sample, dtype=np.float32)
        key = input_digest(sample)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        output = np.asarray(self.pool.predict(sample))
        # The same array is handed to the caller and kept by the cache, so
        # freeze it — a caller mutating its result would otherwise silently
        # corrupt every future cache hit for this input.
        output.setflags(write=False)
        self.cache.put(key, output)
        return output, False

    def predict_payload(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """The full ``POST /predict`` semantics; returns (status, body)."""
        if self.draining:
            return 503, {"error": "server is draining; no new requests accepted"}
        if not isinstance(payload, dict) or "input" not in payload:
            return 400, {"error": 'request body must be a JSON object {"input": [...]}'}
        try:
            sample = np.asarray(payload["input"], dtype=np.float32)
        except (TypeError, ValueError) as error:
            return 400, {"error": f"could not parse 'input' as a float array: {error}"}
        if sample.shape != self.input_shape:
            return 400, {"error": f"'input' has shape {list(sample.shape)}; this model "
                                  f"serves shape {list(self.input_shape)}"}
        try:
            output, was_cached = self.predict_array(sample)
        except PoolSaturated as error:
            return 503, {"error": f"overloaded: {error}"}
        except PoolClosed as error:
            return 503, {"error": f"shutting down: {error}"}
        except (WorkerCrashed, TimeoutError, RuntimeError) as error:
            return 500, {"error": f"{type(error).__name__}: {error}"}
        return 200, {"output": np.asarray(output).tolist(), "cached": was_cached}

    # ----------------------------------------------------------------- /healthz
    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        alive = self.pool.alive_workers()
        total = self.config.workers
        if self.draining:
            return 503, {"status": "draining", "workers_alive": alive,
                         "workers_total": total}
        if alive == 0 or not self.pool.accepting:
            return 503, {"status": "unhealthy", "workers_alive": alive,
                         "workers_total": total}
        return 200, {"status": "ok", "workers_alive": alive, "workers_total": total}

    # ------------------------------------------------------------------- /stats
    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "serving": self.metrics.to_dict(),
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "draining": self.draining,
        }


class _ServingHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the :class:`ServingApp` and records latency."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    @property
    def app(self) -> ServingApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging would swamp the benchmark/test output

    def _answer(self, endpoint: str, status: int, body: Dict[str, Any],
                started: float, shed: bool = False) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        latency_ms = (time.perf_counter() - started) * 1000.0
        self.app.metrics.endpoint(endpoint).record(latency_ms, status, shed=shed)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        started = time.perf_counter()
        if self.path == "/healthz":
            status, body = self.app.healthz()
            self._answer("/healthz", status, body, started)
        elif self.path == "/stats":
            status, body = self.app.stats()
            self._answer("/stats", status, body, started)
        else:
            # Metrics-bucket unknown paths under one key: per-path entries
            # would let a fuzzer grow the counter map without bound.
            self._answer("other", 404, {"error": f"no such endpoint: {self.path}"},
                         started)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        started = time.perf_counter()
        if self.path != "/predict":
            self._answer("other", 404, {"error": f"no such endpoint: {self.path}"},
                         started)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"")
        except (TypeError, ValueError) as error:
            self._answer("/predict", 400,
                         {"error": f"request body is not valid JSON: {error}"}, started)
            return
        status, body = self.app.predict_payload(payload)
        self._answer("/predict", status, body, started, shed=status == 503)


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`ServingApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServingApp) -> None:
        super().__init__(address, _ServingHandler)
        self.app = app


class ServingServer:
    """The deployable unit: worker pool + HTTP front door, one lifecycle.

    Built by :meth:`repro.experiment.Experiment.serve` and the ``repro
    serve`` CLI.  Construction is cheap; :meth:`start` spawns the workers,
    waits until they are ready, and binds the HTTP socket.

    Example
    -------
    >>> server = experiment.serve(workers=2, port=0)   # port 0: OS-assigned
    >>> with server:                                   # start() ... close()
    ...     print(server.url)                          # http://127.0.0.1:PORT
    ...     out = server.predict(sample)               # in-process request path
    """

    def __init__(self, spec, state: Optional[Dict[str, np.ndarray]] = None,
                 config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.pool = WorkerPool(spec, state=state, config=self.config)
        self.app: Optional[ServingApp] = None
        self._httpd: Optional[ServingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._input_shape = self._infer_input_shape(self.pool.spec_dict)
        self._closed = False

    @staticmethod
    def _infer_input_shape(spec_dict: Dict[str, Any]) -> Tuple[int, ...]:
        from ..experiment import ExperimentSpec

        return tuple(ExperimentSpec.from_dict(spec_dict).data.input_shape)

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "ServingServer":
        """Start workers, then bind and serve HTTP in a background thread."""
        if self._closed:
            raise RuntimeError("this server has been closed; build a new one")
        if self._httpd is not None:
            return self
        self.pool.start()
        try:
            self.app = ServingApp(self.pool, self._input_shape, self.config)
            self._httpd = ServingHTTPServer((self.config.host, self.config.port), self.app)
        except BaseException:
            # e.g. EADDRINUSE — the already-running workers must not leak.
            self.pool.close(timeout=5.0)
            raise
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True,
                                        name="repro-serve-http")
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful once started; resolves ``port=0``)."""
        if self._httpd is None:
            return self.config.port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def predict(self, sample: np.ndarray) -> np.ndarray:
        """In-process request through the exact cache + pool path HTTP uses."""
        if self.app is None:
            raise RuntimeError("server not started; call start() first")
        output, _ = self.app.predict_array(sample)
        return output

    def drain(self, wait: bool = True, timeout: Optional[float] = None) -> bool:
        """Flip /healthz to draining, stop admissions, optionally wait empty."""
        if self.app is not None:
            self.app.draining = True
        if not wait:
            self.pool.stop_accepting()
            return False
        return self.pool.drain(timeout=timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Drain, stop the HTTP listener, shut the pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.drain(wait=True, timeout=min(timeout, self.config.drain_timeout))
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self.pool.close(timeout=timeout)

    def __enter__(self) -> "ServingServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("serving" if self._httpd else "new")
        return f"ServingServer({self.url}, workers={self.config.workers}, {state})"
