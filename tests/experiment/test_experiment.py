"""Tests for the Experiment facade (build / fit / evaluate / profile / ppml / search)."""

from __future__ import annotations

import json

import pytest

from repro.experiment import (
    DataSpec,
    Experiment,
    ExperimentSpec,
    ModelSpec,
    PPMLSpec,
    ProfileSpec,
    SearchSpec,
    TrainSpec,
    get_preset,
    preset_names,
)
from repro.models import SmallConvNet
from repro.training.classification import TrainingHistory


def _tiny_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="tiny",
        model=ModelSpec(name="small_convnet", neuron_type="OURS", num_classes=4,
                        width_multiplier=0.25, extra={"image_size": 16}),
        data=DataSpec(num_samples=32, test_samples=16, num_classes=4, image_size=16),
        train=TrainSpec(epochs=1, batch_size=8, max_batches_per_epoch=2),
        profile=ProfileSpec(batch_size=8),
        ppml=PPMLSpec(),
    )
    return spec.with_(**overrides) if overrides else spec


class TestExperimentSteps:
    def test_build_returns_model_and_records_parameters(self):
        experiment = Experiment(_tiny_spec())
        model = experiment.build()
        assert model.num_parameters() > 0
        assert experiment.results["build"]["parameters"] == model.num_parameters()
        assert experiment.results["build"]["neuron_type"] == "OURS"

    def test_build_is_reproducible_from_the_spec(self):
        first = Experiment(_tiny_spec()).build()
        second = Experiment(_tiny_spec()).build()
        for (name_a, param_a), (name_b, param_b) in zip(first.named_parameters(),
                                                        second.named_parameters()):
            assert name_a == name_b
            assert (param_a.data == param_b.data).all()

    def test_fit_returns_history_and_serializable_results(self):
        experiment = Experiment(_tiny_spec())
        history = experiment.fit()
        assert isinstance(history, TrainingHistory)
        assert len(history.train_loss) == 1
        # The whole summary must be JSON-serializable.
        text = json.dumps(experiment.summary(), default=float)
        assert "train_loss" in text

    def test_fit_honours_the_optimizer_registry(self):
        experiment = Experiment(_tiny_spec(train=TrainSpec(optimizer="adam", epochs=1,
                                                           batch_size=8,
                                                           max_batches_per_epoch=2)))
        history = experiment.fit()
        assert len(history.train_loss) == 1

    def test_evaluate_returns_accuracy_in_unit_interval(self):
        experiment = Experiment(_tiny_spec())
        accuracy = experiment.evaluate()
        assert 0.0 <= accuracy <= 1.0

    def test_profile_reports_parameters_macs_memory(self):
        experiment = Experiment(_tiny_spec(profile=ProfileSpec(batch_size=8, per_layer=True)))
        profile = experiment.profile()
        assert profile["parameters"] > 0
        assert profile["macs"] > 0
        assert profile["training_memory_bytes"] > 0
        assert len(profile["layers"]) > 0

    def test_to_ppml_reports_savings(self):
        experiment = Experiment(_tiny_spec(
            model=ModelSpec(name="small_convnet", neuron_type="first_order", num_classes=4,
                            width_multiplier=0.25, extra={"image_size": 16})))
        converted, result = experiment.to_ppml()
        assert result["activations_replaced"] > 0
        assert result["online_latency_ms_after"] < result["online_latency_ms_before"]

    def test_search_step(self):
        spec = _tiny_spec(
            search=SearchSpec(strategy="random", budget=2, top=2,
                              space={"min_stages": 2, "max_stages": 2,
                                     "min_convs_per_stage": 1, "max_convs_per_stage": 1,
                                     "width_choices": [16],
                                     "neuron_types": ["first_order", "OURS"]}),
            steps=["search"],
        )
        experiment = Experiment(spec)
        result = experiment.search()
        assert result.evaluations_used >= 1
        assert experiment.results["search"]["top"]

    def test_run_executes_requested_steps_in_order(self):
        experiment = Experiment(_tiny_spec())
        summary = experiment.run()
        assert list(summary["results"]) == ["build", "fit", "evaluate", "profile", "ppml"]
        assert summary["spec"]["name"] == "tiny"

    def test_run_honours_a_non_canonical_step_order(self):
        experiment = Experiment(_tiny_spec(steps=["build", "profile", "fit"]))
        summary = experiment.run()
        assert list(summary["results"]) == ["build", "profile", "fit"]

    def test_run_rejects_unknown_steps(self):
        with pytest.raises(ValueError, match="unknown pipeline step"):
            Experiment(_tiny_spec()).run(steps=("deploy",))

    def test_save_results_round_trips_through_json(self, tmp_path):
        experiment = Experiment(_tiny_spec(steps=["build", "profile"]))
        experiment.run()
        path = experiment.save_results(str(tmp_path / "out.json"))
        data = json.loads(open(path).read())
        assert data["results"]["profile"]["parameters"] > 0
        # A spec reloaded from the results file rebuilds the same experiment.
        restored = ExperimentSpec.from_dict(data["spec"])
        assert restored == experiment.spec


class TestExperimentInjection:
    def test_injected_model_skips_spec_build(self):
        model = SmallConvNet(num_classes=4, image_size=16)
        experiment = Experiment(_tiny_spec(), model=model)
        assert experiment.build() is model

    def test_injected_datasets_are_used(self):
        spec = _tiny_spec()
        train_set = spec.data.build(train=True)
        test_set = spec.data.build(train=False)
        experiment = Experiment(spec, datasets=(train_set, test_set))
        assert experiment.datasets() == (train_set, test_set)

    def test_dict_spec_accepted(self):
        experiment = Experiment(_tiny_spec().to_dict())
        assert experiment.spec.name == "tiny"

    def test_invalid_spec_type_rejected(self):
        with pytest.raises(TypeError):
            Experiment(42)


class TestPresets:
    def test_presets_are_listed_and_valid(self):
        assert "smoke" in preset_names()
        for name in preset_names():
            get_preset(name).validate()

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="bundled presets"):
            get_preset("nope")
